"""Crowd-judged NBA skyline: who is on the stat-line Pareto frontier?

Points, rebounds and assists are machine-known; overall "impact" is a
crowd judgment. A dynamic-voting noisy crowd answers pairwise questions
("who impacted games more?") and CrowdSky keeps only the players nobody
beats across the board.

Run with::

    python examples/nba_allstars.py
"""

from repro import (
    DynamicVoting,
    SimulatedCrowd,
    WorkerPool,
    crowdsky,
    precision_recall,
)
from repro.data.nba import nba_dataset
from repro.metrics.accuracy import ak_skyline
from repro.skyline.dominance import dominance_matrix
from repro.skyline.dominating import FrequencyOracle


def main() -> None:
    players = nba_dataset()
    frequency = FrequencyOracle(dominance_matrix(players.known_matrix()))
    crowd = SimulatedCrowd(
        players,
        pool=WorkerPool.uniform(accuracy=0.9),
        voting=DynamicVoting.from_frequency(frequency, omega=5),
        seed=23,
    )
    result = crowdsky(players, crowd=crowd)
    report = precision_recall(result.skyline, players)

    print(
        f"{result.stats.questions} questions, "
        f"cost ${result.stats.hit_cost():.2f}, "
        f"precision={report.precision:.2f} recall={report.recall:.2f}\n"
    )
    machine = ak_skyline(players)
    print(f"{'player':22} {'pts':>5} {'reb':>5} {'ast':>5}  in AK skyline?")
    for i in sorted(result.skyline, key=players.label):
        points, rebounds, assists = players[i].known
        marker = "yes" if i in machine else "crowd-confirmed"
        print(
            f"{players.label(i):22} {points:5.1f} {rebounds:5.1f} "
            f"{assists:5.1f}  {marker}"
        )


if __name__ == "__main__":
    main()

"""Query Q1: which rotated rectangles are largest? (paper §6.2)

Rotation obscures the recorded bounding boxes, so the true area is a
crowd attribute ("which rectangle is larger?" — the classic perceptual
micro-task of Marcus et al.). The difficulty-aware worker model makes
near-ties genuinely hard while far-apart areas are judged almost
perfectly — and majority voting still recovers the exact skyline.

Run with::

    python examples/rectangles_crowd.py
"""

from repro import SimulatedCrowd, StaticVoting, WorkerPool, crowdsky
from repro.crowd.workers import DifficultyAwareWorker
from repro.data.rectangles import rectangles_dataset, true_size
from repro.metrics.accuracy import precision_recall


def main() -> None:
    rectangles = rectangles_dataset()
    pool = WorkerPool([DifficultyAwareWorker(easiness_scale=0.02)] * 50)
    crowd = SimulatedCrowd(
        rectangles, pool=pool, voting=StaticVoting(5), seed=3
    )
    result = crowdsky(rectangles, crowd=crowd)
    report = precision_recall(result.skyline, rectangles)

    print(
        f"{result.stats.questions} questions, {result.stats.rounds} "
        f"rounds, cost ${result.stats.hit_cost():.2f}"
    )
    print(f"precision={report.precision:.2f} recall={report.recall:.2f}\n")
    print("skyline rectangles (true sizes):")
    for i in sorted(result.skyline):
        index = int(rectangles.label(i).replace("rect", ""))
        w0, h0 = true_size(index)
        width, height = rectangles[i].known
        print(
            f"  {rectangles.label(i):7} true {w0:3d}x{h0:3d} "
            f"(area {w0 * h0:6d}), rotated bbox "
            f"{width:6.1f}x{height:6.1f}"
        )


if __name__ == "__main__":
    main()

"""Ablation walk-through: what each pruning method and scheduler buys.

Reproduces, on one anti-correlated dataset, the pruning ladder of
Figures 6-7 (questions) and the scheduler ladder of Figures 8-9
(rounds), plus the voting comparison of Figure 10 on a noisy crowd.

Run with::

    python examples/ablation_study.py
"""

from repro import (
    CrowdSkyConfig,
    Distribution,
    PruningLevel,
    baseline_skyline,
    crowdsky,
    generate_synthetic,
    parallel_dset,
    parallel_sl,
)
from repro.experiments.accuracy_runs import voting_accuracy


def fresh():
    return generate_synthetic(
        400, 2, 1, Distribution.ANTI_CORRELATED, seed=12
    )


def main() -> None:
    print("== monetary cost: the pruning ladder (ANT, n=400) ==")
    print(f"  {'variant':12} questions")
    baseline = baseline_skyline(fresh())
    print(f"  {'Baseline':12} {baseline.stats.questions:9d}")
    for level in PruningLevel:
        result = crowdsky(fresh(), config=CrowdSkyConfig(pruning=level))
        print(f"  {level.value:12} {result.stats.questions:9d}")

    print("\n== latency: the scheduler ladder ==")
    print(f"  {'scheduler':14} rounds")
    for name, algorithm in (
        ("Serial", crowdsky),
        ("ParallelDSet", parallel_dset),
        ("ParallelSL", parallel_sl),
    ):
        result = algorithm(fresh())
        print(f"  {name:14} {result.stats.rounds:6d}")

    # The voting comparison uses the paper's Figure 10 setting: IND
    # distribution with |AK| = 4, several datasets, noisy workers.
    print("\n== accuracy: static vs dynamic voting (p=0.8, omega=5) ==")
    print("   (IND, n=200, averaged over 8 noisy-crowd runs)")
    rows = voting_accuracy(cardinalities=(200,), num_seeds=8)
    row = rows[0]
    for name in ("StaticVoting", "DynamicVoting"):
        print(
            f"  {name:14} precision={row[f'{name} precision']:.3f} "
            f"recall={row[f'{name} recall']:.3f}"
        )


if __name__ == "__main__":
    main()

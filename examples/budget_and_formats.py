"""Extension features: fixed budgets, m-ary questions, bitonic rounds.

Three features beyond the paper's core algorithm, each motivated by its
text:

* a *fixed-budget* mode (the setting of the prior work [12] that the
  paper contrasts with) — the skyline estimate tightens monotonically as
  the budget grows,
* *m-ary questions* (§2.1: the pairwise format "can be extended to an
  m-ary format") — probing a dominating set with 4-way questions needs a
  third of the micro-tasks,
* the *bitonic* crowd sort (§3 names it next to tournament sort) — an
  oblivious network whose stages parallelize, trading extra questions
  for two orders of magnitude fewer rounds than the serial tournament.

Run with::

    python examples/budget_and_formats.py
"""

from repro import (
    CrowdSkyConfig,
    Distribution,
    baseline_skyline,
    crowdsky,
    crowdsky_budgeted,
    generate_synthetic,
    ground_truth_skyline,
    precision_recall,
)


def fresh():
    return generate_synthetic(
        300, 3, 1, Distribution.INDEPENDENT, seed=21
    )


def main() -> None:
    truth = ground_truth_skyline(fresh())
    full = crowdsky(fresh())
    print(f"complete run: {full.stats.questions} questions, "
          f"|skyline| = {len(truth)}\n")

    print("== fixed budgets (the [12] setting) ==")
    print(f"  {'budget':>7} {'|skyline|':>9} {'precision':>9} {'recall':>7}")
    for budget in (0, 50, 150, 250, full.stats.questions):
        relation = fresh()
        result = crowdsky_budgeted(relation, budget)
        report = precision_recall(result.skyline, relation)
        print(
            f"  {budget:7d} {len(result.skyline):9d} "
            f"{report.precision:9.3f} {report.recall:7.3f}"
        )

    print("\n== m-ary probing (§2.1 extension) ==")
    relation = generate_synthetic(
        300, 2, 1, Distribution.ANTI_CORRELATED, seed=22
    )
    for k in (2, 4):
        relation = generate_synthetic(
            300, 2, 1, Distribution.ANTI_CORRELATED, seed=22
        )
        result = crowdsky(relation, config=CrowdSkyConfig(multiway=k))
        label = "pairwise" if k == 2 else f"{k}-ary"
        print(f"  {label:9} probing: {result.stats.questions} questions")

    print("\n== baseline sorts: tournament vs bitonic ==")
    for sort in ("tournament", "bitonic"):
        relation = fresh()
        result = baseline_skyline(relation, sort=sort)
        print(
            f"  {sort:11} {result.stats.questions:6d} questions in "
            f"{result.stats.rounds:5d} rounds"
        )


if __name__ == "__main__":
    main()

"""Quickstart: compute a crowdsourced skyline on synthetic data.

Generates the paper's default workload (independent distribution,
``|AK| = 4`` known attributes, one crowd attribute), runs all three
CrowdSky schedulers against a simulated crowd, and compares cost/latency
with the tournament-sort Baseline.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Distribution,
    FaultPlan,
    RetryPolicy,
    SimulatedCrowd,
    baseline_skyline,
    crowdsky,
    generate_synthetic,
    ground_truth_skyline,
    observe,
    parallel_dset,
    parallel_sl,
    summarize_trace,
)


def main() -> None:
    relation = generate_synthetic(
        500,
        num_known=4,
        num_crowd=1,
        distribution=Distribution.INDEPENDENT,
        seed=0,
    )
    truth = ground_truth_skyline(relation)
    print(f"dataset: n={len(relation)}, |AK|=4, |AC|=1 (IND)")
    print(f"latent ground-truth skyline size: {len(truth)}\n")

    algorithms = (
        ("Baseline (tournament sort)", baseline_skyline),
        ("CrowdSky (serial)", crowdsky),
        ("ParallelDSet", parallel_dset),
        ("ParallelSL", parallel_sl),
    )
    print(f"{'algorithm':30} {'questions':>9} {'rounds':>7} "
          f"{'cost':>8} {'exact?':>7}")
    for name, algorithm in algorithms:
        # A fresh relation handle per run keeps crowds independent.
        data = generate_synthetic(
            500, 4, 1, Distribution.INDEPENDENT, seed=0
        )
        result = algorithm(data)
        exact = result.skyline == truth
        print(
            f"{name:30} {result.stats.questions:9d} "
            f"{result.stats.rounds:7d} "
            f"${result.stats.hit_cost():7.2f} {str(exact):>7}"
        )

    print(
        "\nWith a perfect crowd every algorithm is exact; CrowdSky asks a "
        "fraction of the Baseline's questions, and ParallelSL needs only "
        "a few dozen rounds."
    )

    # Fault tolerance: the same run with an unreliable platform — 20% of
    # assignments abandoned, 10% of HITs expiring — survives via retries
    # and degrades gracefully when a question exhausts its attempts.
    print("\nfault-tolerant run (abandonment 0.2, HIT expiry 0.1):")
    data = generate_synthetic(500, 4, 1, Distribution.INDEPENDENT, seed=0)
    crowd = SimulatedCrowd(
        data,
        seed=0,
        faults=FaultPlan(abandonment_rate=0.2, hit_timeout_rate=0.1, seed=1),
        retry=RetryPolicy(max_attempts=3),
    )
    result = parallel_sl(data, crowd)
    print(result.summary())
    if result.fault_stats is not None:
        print(f"injected faults: {result.fault_stats.as_dict()}")
    print(
        "unresolved pairs are kept conservatively incomparable, so the "
        "degraded skyline never drops a true skyline tuple."
    )

    # Observability: the same run under an active trace. Inside the
    # observe() scope every round, vote, retry and fault becomes a
    # structured event, and the result's summary gains wall-clock time.
    print("\ntraced run (see docs/observability.md):")
    data = generate_synthetic(200, 4, 1, Distribution.INDEPENDENT, seed=0)
    with observe() as observation:
        result = parallel_sl(data)
    print(result.summary())
    print()
    print(summarize_trace(observation.tracer.events))
    print(
        "pass trace_path=/metrics_path= to observe() — or --trace/"
        "--metrics on the CLI — to persist the artifacts."
    )

    # Closure backends: all runs above used the default bitset-backed
    # transitive closure. CrowdSkyConfig(backend="reference") — or
    # REPRO_PREF_BACKEND=reference — selects the original cached-DFS
    # implementation; results are guaranteed identical (see
    # docs/performance.md).


if __name__ == "__main__":
    main()

"""The paper's motivating Example 1: skyline movies via the query language.

Alice wants the most popular and best-rated movies. ``box_office`` and
``release_year`` are stored in the database; ``rating`` is a crowd
attribute — workers are asked pairwise "which movie is better?" questions
and the SKYLINE OF clause dispatches to CrowdSky automatically.

Run with::

    python examples/movie_skyline.py
"""

from repro import SimulatedCrowd, StaticVoting, WorkerPool
from repro.core.parallel import parallel_sl
from repro.data.movies import movies_dataset
from repro.query.executor import execute_query


def noisy_crowd(relation):
    """AMT Masters-grade workers: 97% per-answer accuracy, 5-way voting."""
    return SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(accuracy=0.97),
        voting=StaticVoting(5),
        seed=42,
    )


def main() -> None:
    movies = movies_dataset()

    query = (
        "SELECT * FROM movie_db "
        "WHERE release_year >= 2000 AND release_year <= 2012 "
        "SKYLINE OF box_office MAX, release_year MAX, rating MAX"
    )
    print(query, "\n")

    result = execute_query(
        query,
        {"movie_db": movies},
        crowd_factory=noisy_crowd,
        algorithm=parallel_sl,
    )

    print(f"executed with {result.algorithm}")
    print(
        f"{result.stats.questions} questions in {result.stats.rounds} "
        f"rounds, cost ${result.stats.hit_cost():.2f}\n"
    )
    print("skyline movies:")
    for row in result.rows:
        print(
            f"  {row['label']:55} "
            f"${row['box_office']:7.1f}M  ({row['release_year']:.0f})"
        )


if __name__ == "__main__":
    main()

"""Latency study: what rounds mean in wall-clock hours (paper §6.2).

The paper measures latency in rounds; what makes that number bite is
the per-HIT working time AMT workers actually need (Q1 22 s, Q2 49 s,
Q3 93 s). This example attaches a HIT ledger to every scheduler run on
the three real-life queries and prints the estimated wall-clock time —
the difference between "come back after coffee" and "come back
tomorrow".

Run with::

    python examples/latency_study.py
"""

from repro import baseline_skyline, parallel_dset, parallel_sl
from repro.crowd.hits import HitLedger
from repro.crowd.latency import (
    SECONDS_PER_HIT_Q1,
    SECONDS_PER_HIT_Q2,
    SECONDS_PER_HIT_Q3,
    LatencyEstimate,
)
from repro.crowd.platform import SimulatedCrowd
from repro.data.mlb import mlb_dataset
from repro.data.movies import movies_dataset
from repro.data.rectangles import rectangles_dataset

QUERIES = (
    ("Q1 rectangles", rectangles_dataset, SECONDS_PER_HIT_Q1),
    ("Q2 movies", movies_dataset, SECONDS_PER_HIT_Q2),
    ("Q3 pitchers", mlb_dataset, SECONDS_PER_HIT_Q3),
)

ALGORITHMS = (
    ("Baseline", baseline_skyline),
    ("ParallelDSet", parallel_dset),
    ("ParallelSL", parallel_sl),
)


def main() -> None:
    print(f"{'query':14} {'algorithm':13} {'rounds':>6} {'HITs':>5} "
          f"{'est. wall-clock':>15}")
    for query_name, dataset, seconds_per_hit in QUERIES:
        for algorithm_name, algorithm in ALGORITHMS:
            relation = dataset()
            ledger = HitLedger(seconds_per_hit=seconds_per_hit, seed=5)
            crowd = SimulatedCrowd(relation, ledger=ledger)
            result = algorithm(relation, crowd=crowd)
            estimate = LatencyEstimate(
                rounds=result.stats.rounds,
                seconds=ledger.wall_clock_seconds(),
            )
            print(
                f"{query_name:14} {algorithm_name:13} "
                f"{result.stats.rounds:6d} {ledger.num_hits:5d} "
                f"{str(estimate):>15}"
            )
        print()


if __name__ == "__main__":
    main()

"""The comparator system [12]: budgeted probabilistic skylines.

CrowdSky completes the skyline by asking pairwise questions inside
dominating sets. The prior work it contrasts with — Lofi et al., EDBT
2013 — instead handles *partially* incomplete data: missing cells are
random variables, tuples get a probability of skyline membership, and a
fixed budget of unary questions buys confidence where it matters most.

This example runs both formulations side by side and shows the budget
curve of the probabilistic system under three question-selection
policies.

Run with::

    python examples/probabilistic_skyline.py
"""

import numpy as np

from repro import Distribution, crowdsky, generate_synthetic
from repro.incomplete import (
    IncompleteRelation,
    SelectionPolicy,
    lofi_skyline,
)
from repro.metrics.accuracy import ground_truth_skyline
from repro.skyline.dominance import skyline_mask


def main() -> None:
    truth = generate_synthetic(
        80, 3, 0, Distribution.INDEPENDENT, seed=30
    ).known_matrix()
    expected = set(np.nonzero(skyline_mask(truth))[0].astype(int))
    print(f"dataset: n=80, d=3; true skyline size {len(expected)}\n")

    print("== probabilistic skyline under growing budgets ==")
    print(f"  {'budget':>6}  {'random':>7}  {'uncertainty':>11}  "
          f"{'influence':>9}   (Jaccard vs truth)")
    for budget in (0, 10, 25, 50, 100):
        cells = []
        for policy in SelectionPolicy:
            scores = []
            for seed in range(3):
                relation = IncompleteRelation.mask_random_cells(
                    truth, 0.3, seed=seed
                )
                result = lofi_skyline(
                    relation, budget=budget, policy=policy,
                    worker_sigma=0.05, seed=seed,
                )
                union = result.skyline | expected
                scores.append(
                    len(result.skyline & expected) / len(union)
                    if union else 1.0
                )
            cells.append(sum(scores) / len(scores))
        print(f"  {budget:6d}  {cells[0]:7.3f}  {cells[1]:11.3f}  "
              f"{cells[2]:9.3f}")

    print("\n== the same data in CrowdSky's formulation ==")
    # Hand-off setting: the last attribute becomes a fully-missing crowd
    # column that pairwise questions reconstruct exactly.
    relation = generate_synthetic(
        80, 2, 1, Distribution.INDEPENDENT, seed=30
    )
    result = crowdsky(relation)
    exact = result.skyline == ground_truth_skyline(relation)
    print(
        f"  CrowdSky: {result.stats.questions} pairwise questions, "
        f"complete skyline, exact={exact}"
    )
    print(
        "\nFixed budgets buy probabilistic confidence; CrowdSky spends "
        "exactly what completeness costs."
    )


if __name__ == "__main__":
    main()

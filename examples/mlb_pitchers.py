"""Query Q3: the most valuable MLB pitchers of 2013 (paper §6.2).

``wins``, ``strike_outs`` and ``era`` are machine-known; how *valuable*
each pitcher is lives only in crowd judgment. The paper validates the
crowdsourced skyline against the 2013 Cy Young award candidates.

Run with::

    python examples/mlb_pitchers.py
"""

from repro import SimulatedCrowd, StaticVoting, WorkerPool, crowdsky
from repro.data.mlb import PAPER_Q3_SKYLINE, mlb_dataset
from repro.metrics.accuracy import ak_skyline


def main() -> None:
    pitchers = mlb_dataset()
    crowd = SimulatedCrowd(
        pitchers,
        pool=WorkerPool.uniform(accuracy=0.97),
        voting=StaticVoting(5),
        seed=7,
    )
    result = crowdsky(pitchers, crowd=crowd)

    print("machine skyline over {wins, strike_outs, era}:")
    for i in sorted(ak_skyline(pitchers)):
        row = pitchers[i]
        wins, strikeouts, era = row.known
        print(
            f"  {pitchers.label(i):18} {wins:4.0f} W "
            f"{strikeouts:4.0f} SO  {era:4.2f} ERA"
        )

    print(
        f"\ncrowdsourced skyline ({result.stats.questions} questions, "
        f"{result.stats.rounds} rounds, ${result.stats.hit_cost():.2f}):"
    )
    for label in sorted(result.skyline_labels(pitchers)):
        marker = "*" if label in PAPER_Q3_SKYLINE else " "
        print(f"  {marker} {label}")
    print("\n(* = 2013 Cy Young award candidate, the paper's validation)")


if __name__ == "__main__":
    main()

# Convenience targets for the CrowdSky reproduction.

.PHONY: install test test-robustness bench bench-ci experiments experiments-paper examples lint-clean

# Seeds swept by the fault-injection suite (space-separated, override
# with `make test-robustness REPRO_FAULT_SEEDS="0 1 2 3 4 5"`).
REPRO_FAULT_SEEDS ?= 0 1 2 7 42

install:
	pip install -e '.[dev]'

test:
	pytest tests/

test-robustness:
	REPRO_FAULT_SEEDS="$(REPRO_FAULT_SEEDS)" pytest tests/test_faults.py -m faults -q

bench:
	pytest benchmarks/ --benchmark-only

bench-ci:
	pytest benchmarks/ --benchmark-only --repro-scale ci

experiments:
	python -m repro.experiments run all --scale ci

experiments-paper:
	python -m repro.experiments run all --scale paper

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

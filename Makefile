# Convenience targets for the CrowdSky reproduction.

.PHONY: install test test-robustness test-obs test-pref test-perf-core test-perf-obs test-sweep test-analysis test-sanitize test-recovery test-sharded regen-golden closure-baseline bench bench-ci bench-sweep bench-trajectory bench-baseline bench-scale experiments experiments-paper examples trace-demo report-demo lint lint-baseline

# Suite for bench-trajectory (smoke | ci | paper | scale).
BENCH_SUITE ?= ci

# Shard counts exercised by test-sharded (space-separated; empty =
# the suite's default {1 2 4 7} — the CI matrix pins one per job).
REPRO_TEST_SHARDS ?=

# Seeds swept by the fault-injection suite (space-separated, override
# with `make test-robustness REPRO_FAULT_SEEDS="0 1 2 3 4 5"`).
REPRO_FAULT_SEEDS ?= 0 1 2 7 42

install:
	pip install -e '.[dev]'

test:
	pytest tests/

test-robustness:
	REPRO_FAULT_SEEDS="$(REPRO_FAULT_SEEDS)" pytest tests/test_faults.py -m faults -q

test-obs:
	pytest tests/test_obs.py -m obs -q

# Preference-closure suite: backend differential, golden counts,
# coverage floor and the perf smoke.
test-pref:
	pytest -m pref -q

# Assert the bitset closure backend is never slower than the reference.
test-perf-core:
	pytest tests/test_perf_core.py -m perf -q

# Pin the <2% disabled-observability overhead claim and the profiler/
# cost-report exactness properties (docs/profiling.md).
test-perf-obs:
	pytest tests/test_perf_obs.py -m perf -q
	pytest tests/test_report.py -m obs -q

# Sweep engine: parallel/serial differential, result cache, obs merging.
test-sweep:
	pytest tests/test_sweep.py -m sweep -q

# Invariant-linter suite: rule fixtures (module-local and
# interprocedural), call-graph builder, suppression/baseline
# round-trip, result cache, sanitizer units, JSON schema, self-clean
# gate, Hypothesis crash-safety.
test-analysis:
	pytest tests/test_analysis.py tests/test_callgraph.py tests/test_cache.py tests/test_sanitize.py -m analysis -q

# Runtime determinism sanitizer gate: the crash-recovery differential
# and the preference-closure differential re-run with every test
# wrapped in the sanitizer (--repro-sanitize); any wall-clock read,
# global-RNG use or os.urandom call on a result path fails the test
# with a stack pointing at the offending line (docs/static-analysis.md).
test-sanitize:
	pytest tests/test_journal.py tests/test_recovery.py -m recovery -q --repro-sanitize
	pytest tests/test_preference_differential.py -q --repro-sanitize

# Journal durability: corruption matrix + the crash-injection
# differential harness (resume is byte-identical at every write point).
test-recovery:
	pytest tests/test_journal.py tests/test_recovery.py -m recovery -q

# Sharded-vs-serial differential harness: machine-phase byte-identity
# across shard counts/partitioners/schedulers, merge-cost invariants,
# crash-resume (docs/sharding.md).
test-sharded:
	REPRO_TEST_SHARDS="$(REPRO_TEST_SHARDS)" pytest tests/test_sharded.py -m shard -q

# Static invariant gate: determinism, layering, obs-schema,
# cache-purity and exception hygiene over src/, modulo the committed
# baseline (docs/static-analysis.md). Fails on any new finding.
lint:
	PYTHONPATH=src python -m repro.analysis check src --baseline analysis-baseline.json

# Regenerate analysis-baseline.json after an intentional grandfathering
# change — then write a rationale into every new entry and commit.
lint-baseline:
	PYTHONPATH=src python -m repro.analysis baseline src --baseline analysis-baseline.json --write

# Refresh tests/fixtures/golden_counts.json after an intentional
# behaviour change (then commit the diff).
regen-golden:
	PYTHONPATH=src python -m tests.regen_golden

# Refresh benchmarks/baselines/closure_n512.json after backend or
# workload changes (then commit the diff).
closure-baseline:
	PYTHONPATH=src python benchmarks/record_closure_baseline.py

bench:
	pytest benchmarks/ --benchmark-only

bench-ci:
	pytest benchmarks/ --benchmark-only --repro-scale ci

# Refresh benchmarks/baselines/sweep_ci.json (serial vs --jobs 4 cold
# cache vs warm cache, ci scale) after sweep-engine changes, then
# commit the diff.
bench-sweep:
	PYTHONPATH=src python benchmarks/record_sweep_baseline.py

# Run the pinned benchmark suite (BENCH_SUITE=smoke|ci|paper,
# default ci: closure n=512, fig6a cold/warm, crowdsky n=1000), append
# a fingerprinted record to BENCH_trajectory.json and gate it against
# benchmarks/baselines/bench_trajectory.json (docs/profiling.md).
bench-trajectory:
	python -m repro.experiments bench --suite $(BENCH_SUITE) --check

# Refresh the committed bench baselines after an intentional
# performance change (re-records smoke + ci), then commit the diff.
bench-baseline:
	PYTHONPATH=src python benchmarks/record_bench_baseline.py

# Refresh only the scale-suite baseline (the sharded machine-phase
# n=10k/100k/1M curve; minutes per repeat), then commit the diff.
bench-scale:
	PYTHONPATH=src python benchmarks/record_bench_baseline.py scale

experiments:
	python -m repro.experiments run all --scale ci

experiments-paper:
	python -m repro.experiments run all --scale paper

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

# Record a small traced IND run, then validate the JSONL trace against
# the event schema and cross-check it against the metrics dump. Runs
# with REPRO_OBS_STRICT=1 so an unregistered event name fails at
# emission time instead of at validation time.
trace-demo:
	REPRO_OBS_STRICT=1 python -m repro.experiments run fig6a --scale smoke --no-cache \
		--trace trace-demo.jsonl --metrics trace-demo.prom
	python -m repro.experiments trace validate trace-demo.jsonl \
		--metrics trace-demo.prom
	python -m repro.experiments trace summarize trace-demo.jsonl

# Record a traced run into a scratch directory and assemble the
# RunReport artifact (report.json + report.md) from it.
report-demo:
	mkdir -p report-demo
	python -m repro.experiments run fig6a --scale smoke --no-cache \
		--trace report-demo/trace.jsonl --metrics report-demo/metrics.prom
	python -m repro.experiments report report-demo
	@echo "see report-demo/report.md"

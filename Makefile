# Convenience targets for the CrowdSky reproduction.

.PHONY: install test bench bench-ci experiments experiments-paper examples lint-clean

install:
	pip install -e '.[dev]'

test:
	pytest tests/

bench:
	pytest benchmarks/ --benchmark-only

bench-ci:
	pytest benchmarks/ --benchmark-only --repro-scale ci

experiments:
	python -m repro.experiments run all --scale ci

experiments-paper:
	python -m repro.experiments run all --scale paper

examples:
	@for f in examples/*.py; do echo "== $$f"; python $$f; echo; done

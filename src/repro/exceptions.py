"""Exception hierarchy for the CrowdSky reproduction.

All library-raised exceptions derive from :class:`CrowdSkyError` so callers
can catch a single base class at API boundaries.
"""

from __future__ import annotations


class CrowdSkyError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(CrowdSkyError):
    """A relation schema is malformed or inconsistent with its rows."""


class UnknownAttributeError(SchemaError):
    """An attribute name was referenced that the schema does not define."""


class DataError(CrowdSkyError):
    """Tuple data violates a structural requirement (arity, domain, ...)."""


class CrowdPlatformError(CrowdSkyError):
    """The simulated crowdsourcing platform was used incorrectly."""


class BudgetExhaustedError(CrowdPlatformError):
    """A question was issued after the configured budget ran out."""


class FaultInjectionError(CrowdPlatformError):
    """An injected platform fault could not be recovered.

    Raised by a *strict* :class:`~repro.crowd.platform.SimulatedCrowd`
    when a fault hits a question and no retry policy is attached."""


class QuestionTimeoutError(CrowdPlatformError):
    """A question missed its per-question round deadline.

    Raised in strict mode when a :class:`~repro.crowd.retry.RetryPolicy`
    ``deadline_rounds`` would be exceeded before the next re-post."""


class RetriesExhaustedError(CrowdPlatformError):
    """A question failed on every allowed attempt.

    Raised in strict mode once a question has been re-posted
    ``RetryPolicy.max_attempts`` times without receiving an answer."""


class JournalError(CrowdSkyError):
    """The write-ahead vote journal is unusable (bad directory, broken
    header, or an append after close)."""


class JournalReplayError(JournalError):
    """A journal replay diverged from the resumed execution.

    Raised when a posting does not match the next recorded one (the
    journal belongs to a different config/seed/dataset), when restoring
    randomness onto a mismatched generator type, or when pure-replay
    mode runs past the recorded postings."""


class PreferenceConflictError(CrowdSkyError):
    """An answer would make the preference graph inconsistent (cycle)."""


class QueryError(CrowdSkyError):
    """Base class for errors in the SKYLINE OF query language."""


class QuerySyntaxError(QueryError):
    """The query text could not be tokenized or parsed."""


class QuerySemanticError(QueryError):
    """The query parsed but references unknown attributes or options."""


class ExperimentError(CrowdSkyError):
    """An experiment id or configuration is invalid."""


class ObservabilityError(CrowdSkyError):
    """The observability layer (tracer/metrics/exporters) was misused."""


class TraceSchemaError(ObservabilityError):
    """A recorded trace violates the event schema."""

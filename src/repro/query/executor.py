"""Executor for SKYLINE-OF queries.

Runs the machine-side WHERE filter, re-projects the relation onto the
SKYLINE OF attributes (with the directions the query requests), and
dispatches:

* to the machine skyline substrate when every skyline attribute is known,
* to a crowd-enabled algorithm (CrowdSky by default) when any skyline
  attribute is a crowd attribute or the query says ``WITH CROWD``.

Original tuple indices are preserved in the result so callers can map
back to their data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Union

from repro.core.crowdsky import crowdsky
from repro.core.result import CrowdSkylineResult
from repro.crowd.platform import CrowdStats, SimulatedCrowd
from repro.data.relation import (
    Attribute,
    AttributeKind,
    Relation,
    Schema,
    Tuple,
)
from repro.exceptions import QuerySemanticError
from repro.query.ast import Condition, Query
from repro.query.parser import parse_query
from repro.skyline.bnl import bnl_skyline

#: Signature of a crowd-enabled skyline algorithm.
CrowdAlgorithm = Callable[..., CrowdSkylineResult]


@dataclass
class QueryResult:
    """Outcome of executing a SKYLINE-OF query.

    ``indices`` refer to the *original* relation; ``rows`` are projected
    dictionaries ready for display; ``stats`` is present when the crowd
    was involved.
    """

    indices: List[int]
    rows: List[Dict[str, object]] = field(default_factory=list)
    used_crowd: bool = False
    stats: Optional[CrowdStats] = None
    algorithm: str = "machine"

    def labels(self, relation: Relation) -> Set[str]:
        """The selected tuples' labels."""
        return {relation.label(i) for i in self.indices}


def _condition_value(
    relation: Relation, index: int, condition: Condition
) -> float:
    schema = relation.schema
    if condition.attribute == "label":
        raise QuerySemanticError("label conditions are handled separately")
    attr = schema.attribute(condition.attribute)
    if attr.is_crowd:
        raise QuerySemanticError(
            f"attribute {attr.name!r} is a crowd attribute; WHERE clauses "
            "can only filter known values"
        )
    position = [a.name for a in schema.known_attributes].index(attr.name)
    return relation[index].known[position]


def _passes(relation: Relation, index: int, condition: Condition) -> bool:
    if condition.attribute == "label":
        if not isinstance(condition.literal, str):
            raise QuerySemanticError("label conditions need a string literal")
        if condition.op.value not in ("=", "!="):
            raise QuerySemanticError(
                "label conditions support only = and !="
            )
        matches = relation.label(index) == condition.literal
        return matches if condition.op.value == "=" else not matches
    if isinstance(condition.literal, str):
        raise QuerySemanticError(
            f"attribute {condition.attribute!r} compared to a string; only "
            "the pseudo-attribute 'label' supports strings"
        )
    value = _condition_value(relation, index, condition)
    return condition.op.evaluate(value, float(condition.literal))


def _project_schema(relation: Relation, query: Query) -> Schema:
    attrs: List[Attribute] = []
    for spec in query.skyline:
        base = relation.schema.attribute(spec.attribute)
        attrs.append(Attribute(base.name, base.kind, spec.direction))
    if query.crowd_hint and all(a.is_known for a in attrs):
        # WITH CROWD on a known-only skyline: the last attribute is
        # treated as untrusted — its stored values become the latent
        # ground truth the (simulated) crowd assesses.
        if len(attrs) < 2:
            raise QuerySemanticError(
                "WITH CROWD needs either a crowd attribute or at least "
                "two skyline attributes (one stays machine-evaluated)"
            )
        last = attrs[-1]
        attrs[-1] = Attribute(last.name, AttributeKind.CROWD, last.direction)
    return Schema(attrs)


def _project_relation(
    relation: Relation, indices: Sequence[int], query: Query
) -> Relation:
    schema = _project_schema(relation, query)
    known_names = [a.name for a in relation.schema.known_attributes]
    crowd_names = [a.name for a in relation.schema.crowd_attributes]
    rows: List[Tuple] = []
    for i in indices:
        source = relation[i]
        known: List[float] = []
        latent: List[float] = []
        for attr in schema:
            if attr.name in known_names:
                value = source.known[known_names.index(attr.name)]
            else:
                value = source.latent[crowd_names.index(attr.name)]
            # attr.kind reflects the *projected* schema — a WITH CROWD
            # conversion routes a stored column into the latent side.
            if attr.is_known:
                known.append(value)
            else:
                latent.append(value)
        rows.append(Tuple(known=tuple(known), latent=tuple(latent),
                          label=source.label))
    return Relation(schema, rows)


def execute_query(
    query: Union[str, Query],
    tables: Union[Relation, Dict[str, Relation]],
    crowd_factory: Optional[Callable[[Relation], SimulatedCrowd]] = None,
    algorithm: CrowdAlgorithm = crowdsky,
) -> QueryResult:
    """Execute a SKYLINE-OF query.

    Parameters
    ----------
    query:
        Query text or a pre-parsed :class:`~repro.query.ast.Query`.
    tables:
        Either a single relation (any table name matches) or a mapping of
        table names to relations.
    crowd_factory:
        Builds the crowd platform for the filtered sub-relation; defaults
        to a perfect simulated crowd.
    algorithm:
        The crowd-enabled skyline algorithm (``crowdsky``,
        ``parallel_dset``, ``parallel_sl``, ``baseline_skyline``, ...).
    """
    if isinstance(query, str):
        query = parse_query(query)

    if isinstance(tables, Relation):
        relation = tables
    else:
        try:
            relation = tables[query.table]
        except KeyError:
            raise QuerySemanticError(
                f"unknown table {query.table!r}"
            ) from None

    for name in query.projection:
        if name != "*" and name != "label" and name not in relation.schema:
            raise QuerySemanticError(f"unknown projection column {name!r}")

    candidates = [
        i
        for i in range(len(relation))
        if all(_passes(relation, i, c) for c in query.where.conditions)
    ]

    if not query.skyline:
        return QueryResult(
            indices=candidates,
            rows=[_project_row(relation, i, query) for i in candidates],
        )

    filtered = _project_relation(relation, candidates, query)
    needs_crowd = query.crowd_hint or filtered.schema.num_crowd > 0

    if needs_crowd:
        crowd = crowd_factory(filtered) if crowd_factory else None
        result = algorithm(filtered, crowd=crowd)
        local = sorted(result.skyline)
        stats = result.stats
        name = result.algorithm
    else:
        local = bnl_skyline(filtered.known_matrix())
        stats = None
        name = "machine[bnl]"

    indices = [candidates[i] for i in local]
    return QueryResult(
        indices=indices,
        rows=[_project_row(relation, i, query) for i in indices],
        used_crowd=needs_crowd,
        stats=stats,
        algorithm=name,
    )


def _project_row(
    relation: Relation, index: int, query: Query
) -> Dict[str, object]:
    schema = relation.schema
    known_names = [a.name for a in schema.known_attributes]
    row: Dict[str, object] = {}
    columns: Sequence[str]
    if list(query.projection) == ["*"]:
        columns = ["label"] + known_names
    else:
        columns = query.projection
    for name in columns:
        if name == "label":
            row["label"] = relation.label(index)
        elif name in known_names:
            row[name] = relation[index].known[known_names.index(name)]
        else:
            row[name] = None  # crowd attributes have no stored value
    return row

"""Tokenizer for the SKYLINE-OF query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.exceptions import QuerySyntaxError

#: Reserved words, uppercased.
KEYWORDS = {
    "SELECT",
    "FROM",
    "WHERE",
    "AND",
    "SKYLINE",
    "OF",
    "MIN",
    "MAX",
    "WITH",
    "CROWD",
}

#: Multi- and single-character comparison/punctuation operators, longest
#: first so ``>=`` wins over ``>``.
OPERATORS = (">=", "<=", "!=", "=", "<", ">", ",", "*", "(", ")")


class TokenType(enum.Enum):
    """Lexical category of a token."""

    KEYWORD = "keyword"
    IDENTIFIER = "identifier"
    NUMBER = "number"
    STRING = "string"
    OPERATOR = "operator"
    END = "end"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (for error messages)."""

    type: TokenType
    value: str
    position: int

    def matches(self, type_: TokenType, value: Optional[str] = None) -> bool:
        """Check the token's type and (case-insensitively) its value."""
        if self.type is not type_:
            return False
        if value is None:
            return True
        return self.value.upper() == value.upper()


def _scan(text: str) -> Iterator[Token]:
    i = 0
    length = len(text)
    while i < length:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "'" or ch == '"':
            end = text.find(ch, i + 1)
            if end < 0:
                raise QuerySyntaxError(f"unterminated string at position {i}")
            yield Token(TokenType.STRING, text[i + 1:end], i)
            i = end + 1
            continue
        if ch.isdigit() or (
            ch in "+-." and i + 1 < length and text[i + 1].isdigit()
        ):
            start = i
            i += 1
            while i < length and (text[i].isdigit() or text[i] in ".eE+-"):
                # Stop '+'/'-' unless they follow an exponent marker.
                if text[i] in "+-" and text[i - 1] not in "eE":
                    break
                i += 1
            yield Token(TokenType.NUMBER, text[start:i], start)
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < length and (text[i].isalnum() or text[i] == "_"):
                i += 1
            word = text[start:i]
            if word.upper() in KEYWORDS:
                yield Token(TokenType.KEYWORD, word.upper(), start)
            else:
                yield Token(TokenType.IDENTIFIER, word, start)
            continue
        for op in OPERATORS:
            if text.startswith(op, i):
                yield Token(TokenType.OPERATOR, op, i)
                i += len(op)
                break
        else:
            raise QuerySyntaxError(
                f"unexpected character {ch!r} at position {i}"
            )
    yield Token(TokenType.END, "", length)


def tokenize(text: str) -> List[Token]:
    """Tokenize a query string.

    Raises
    ------
    QuerySyntaxError
        On unterminated strings or characters outside the language.
    """
    return list(_scan(text))

"""Recursive-descent parser for the SKYLINE-OF query language.

Grammar (keywords case-insensitive)::

    query      := SELECT projection FROM identifier
                  [WHERE condition (AND condition)*]
                  [SKYLINE OF spec (, spec)*]
                  [WITH CROWD]
    projection := '*' | identifier (, identifier)*
    condition  := identifier op literal
    spec       := identifier (MIN | MAX)
    op         := = | != | < | <= | > | >=
    literal    := number | string
"""

from __future__ import annotations

from typing import List, Union

from repro.data.relation import Direction
from repro.exceptions import QuerySyntaxError
from repro.query.ast import Comparison, Condition, Conjunction, Query, SkylineSpec
from repro.query.lexer import Token, TokenType, tokenize


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._pos = 0

    @property
    def _current(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._current
        self._pos += 1
        return token

    def _expect(self, type_: TokenType, value: str = None) -> Token:
        token = self._current
        if not token.matches(type_, value):
            wanted = value or type_.value
            raise QuerySyntaxError(
                f"expected {wanted} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self._advance()

    def _accept(self, type_: TokenType, value: str = None) -> bool:
        if self._current.matches(type_, value):
            self._advance()
            return True
        return False

    # -- grammar rules ---------------------------------------------------

    def parse(self) -> Query:
        self._expect(TokenType.KEYWORD, "SELECT")
        projection = self._projection()
        self._expect(TokenType.KEYWORD, "FROM")
        table = self._expect(TokenType.IDENTIFIER).value

        where = Conjunction()
        if self._accept(TokenType.KEYWORD, "WHERE"):
            where = self._conjunction()

        skyline: List[SkylineSpec] = []
        if self._accept(TokenType.KEYWORD, "SKYLINE"):
            self._expect(TokenType.KEYWORD, "OF")
            skyline.append(self._skyline_spec())
            while self._accept(TokenType.OPERATOR, ","):
                skyline.append(self._skyline_spec())

        crowd_hint = False
        if self._accept(TokenType.KEYWORD, "WITH"):
            self._expect(TokenType.KEYWORD, "CROWD")
            crowd_hint = True

        self._expect(TokenType.END)
        return Query(
            table=table,
            where=where,
            skyline=tuple(skyline),
            projection=tuple(projection),
            crowd_hint=crowd_hint,
        )

    def _projection(self) -> List[str]:
        if self._accept(TokenType.OPERATOR, "*"):
            return ["*"]
        names = [self._expect(TokenType.IDENTIFIER).value]
        while self._accept(TokenType.OPERATOR, ","):
            names.append(self._expect(TokenType.IDENTIFIER).value)
        return names

    def _conjunction(self) -> Conjunction:
        conditions = [self._condition()]
        while self._accept(TokenType.KEYWORD, "AND"):
            conditions.append(self._condition())
        return Conjunction(tuple(conditions))

    def _condition(self) -> Condition:
        attribute = self._expect(TokenType.IDENTIFIER).value
        op_token = self._expect(TokenType.OPERATOR)
        try:
            op = Comparison(op_token.value)
        except ValueError:
            raise QuerySyntaxError(
                f"{op_token.value!r} is not a comparison operator "
                f"(position {op_token.position})"
            ) from None
        literal = self._literal()
        return Condition(attribute=attribute, op=op, literal=literal)

    def _literal(self) -> Union[float, str]:
        token = self._current
        if token.type is TokenType.NUMBER:
            self._advance()
            try:
                return float(token.value)
            except ValueError:
                raise QuerySyntaxError(
                    f"bad numeric literal {token.value!r} at position "
                    f"{token.position}"
                ) from None
        if token.type is TokenType.STRING:
            self._advance()
            return token.value
        raise QuerySyntaxError(
            f"expected a literal at position {token.position}, got "
            f"{token.value!r}"
        )

    def _skyline_spec(self) -> SkylineSpec:
        attribute = self._expect(TokenType.IDENTIFIER).value
        if self._accept(TokenType.KEYWORD, "MIN"):
            direction = Direction.MIN
        elif self._accept(TokenType.KEYWORD, "MAX"):
            direction = Direction.MAX
        else:
            raise QuerySyntaxError(
                f"expected MIN or MAX after {attribute!r} at position "
                f"{self._current.position}"
            )
        return SkylineSpec(attribute=attribute, direction=direction)


def parse_query(text: str) -> Query:
    """Parse a SKYLINE-OF query string into a :class:`Query` AST.

    Raises
    ------
    QuerySyntaxError
        When the text violates the grammar.
    """
    return _Parser(tokenize(text)).parse()

"""Typed AST for the SKYLINE-OF query language."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Sequence, Union

from repro.data.relation import Direction


class Comparison(enum.Enum):
    """WHERE-clause comparison operators."""

    EQ = "="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="

    def evaluate(self, left: float, right: float) -> bool:
        """Apply the comparison to two numeric values."""
        if self is Comparison.EQ:
            return left == right
        if self is Comparison.NE:
            return left != right
        if self is Comparison.LT:
            return left < right
        if self is Comparison.LE:
            return left <= right
        if self is Comparison.GT:
            return left > right
        return left >= right


@dataclass(frozen=True)
class Condition:
    """A single ``attribute <op> literal`` predicate."""

    attribute: str
    op: Comparison
    literal: Union[float, str]


@dataclass(frozen=True)
class Conjunction:
    """An AND-chain of conditions (the only connective the paper uses)."""

    conditions: Sequence[Condition] = ()

    def __bool__(self) -> bool:
        return bool(self.conditions)


@dataclass(frozen=True)
class SkylineSpec:
    """One ``attribute MIN|MAX`` item of the SKYLINE OF clause."""

    attribute: str
    direction: Direction


@dataclass(frozen=True)
class Query:
    """A parsed query.

    ``crowd_hint`` records an optional trailing ``WITH CROWD`` clause
    that forces crowd execution even for fully-known attributes (useful
    when a stored column is untrusted).
    """

    table: str
    where: Conjunction = field(default_factory=Conjunction)
    skyline: Sequence[SkylineSpec] = ()
    projection: Sequence[str] = ("*",)
    crowd_hint: bool = False

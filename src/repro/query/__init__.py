"""A small SKYLINE-OF query language (paper §1, Example 1).

The paper motivates crowd-enabled skylines with a SQL-flavoured query:

.. code-block:: sql

    SELECT * FROM movie_db
    WHERE year >= 2010 AND year <= 2015
    SKYLINE OF box_office MAX, romantic MAX

This subpackage implements that surface: a lexer, a recursive-descent
parser producing a typed AST, and an executor that runs the WHERE filter
machine-side and dispatches the SKYLINE OF clause to the crowd-enabled
algorithms when it references crowd attributes (or to the machine skyline
substrate otherwise).
"""

from repro.query.ast import (
    Comparison,
    Condition,
    Conjunction,
    Query,
    SkylineSpec,
)
from repro.query.executor import QueryResult, execute_query
from repro.query.lexer import Token, TokenType, tokenize
from repro.query.parser import parse_query

__all__ = [
    "Comparison",
    "Condition",
    "Conjunction",
    "Query",
    "QueryResult",
    "SkylineSpec",
    "Token",
    "TokenType",
    "execute_query",
    "parse_query",
    "tokenize",
]

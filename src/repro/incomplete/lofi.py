"""The budgeted crowd-enabled probabilistic skyline loop ([12]).

Given an incomplete relation, a question budget and a selection policy,
the loop repeatedly

1. picks the most valuable missing cell (per the policy),
2. asks the crowd a *unary* question about it (``ω`` workers, averaged),
3. fills the cell with the aggregated estimate,

then reports per-tuple skyline probabilities over the remaining
uncertainty and the thresholded probabilistic skyline. This is the
formulation CrowdSky's §7 contrasts itself with: a fixed budget buys
*confidence*, not completeness.

The crowd's unary answers come from the same worker error models as the
rest of the library (Gaussian noise scaled to the attribute range), so
a generous budget with noisy workers still leaves residual error — the
effect Figure 11 measures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set, Tuple as TupleT

import numpy as np

from repro.exceptions import DataError
from repro.incomplete.probability import (
    DEFAULT_SAMPLES,
    skyline_probabilities,
)
from repro.incomplete.relation import IncompleteRelation
from repro.incomplete.selection import SelectionPolicy, select_cell
from repro.skyline.dominance import skyline_mask


@dataclass
class LofiResult:
    """Outcome of the budgeted probabilistic skyline computation."""

    probabilities: np.ndarray
    skyline: Set[int]
    questions_asked: int
    asked_cells: List[TupleT[int, int]]
    remaining_missing: int

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"Lofi[12]: |skyline|={len(self.skyline)} "
            f"questions={self.questions_asked} "
            f"remaining_missing={self.remaining_missing}"
        )


def _crowd_unary_estimate(
    relation: IncompleteRelation,
    cell: TupleT[int, int],
    omega: int,
    worker_sigma: float,
    rng: np.random.Generator,
) -> float:
    """Simulated unary answers: truth + Gaussian noise, averaged."""
    truth = relation.truth_value(*cell)
    low, high = relation.attribute_bounds()
    spread = float(high[cell[1]] - low[cell[1]]) or 1.0
    estimates = truth + rng.normal(0.0, worker_sigma * spread, size=omega)
    return float(np.mean(estimates))


def lofi_skyline(
    relation: IncompleteRelation,
    budget: int,
    policy: SelectionPolicy = SelectionPolicy.INFLUENCE,
    omega: int = 5,
    worker_sigma: float = 0.1,
    threshold: float = 0.5,
    samples: int = DEFAULT_SAMPLES,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> LofiResult:
    """Run the [12]-style budgeted probabilistic skyline.

    Parameters
    ----------
    relation:
        The incomplete dataset (mutated in place as cells fill).
    budget:
        Maximum number of unary questions (cells crowdsourced).
    policy:
        Question-selection policy.
    omega:
        Workers per unary question; estimates are averaged.
    worker_sigma:
        Worker noise as a fraction of the attribute range (0 = perfect).
    threshold:
        Probability above which a tuple enters the reported skyline.
    samples:
        Monte-Carlo samples for the probability estimates.
    """
    if budget < 0:
        raise DataError("budget must be non-negative")
    if not 0.0 < threshold <= 1.0:
        raise DataError("threshold must be within (0, 1]")
    if rng is not None and seed is not None:
        raise DataError("pass either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)

    asked: List[TupleT[int, int]] = []
    probabilities: Optional[np.ndarray] = None
    for _ in range(budget):
        if relation.num_missing == 0:
            break
        if policy in (SelectionPolicy.UNCERTAINTY,
                      SelectionPolicy.INFLUENCE):
            probabilities = skyline_probabilities(
                relation, samples=samples, rng=rng
            )
        cell = select_cell(
            relation, policy, rng,
            probabilities=probabilities, samples=samples,
        )
        value = _crowd_unary_estimate(
            relation, cell, omega, worker_sigma, rng
        )
        relation.fill(*cell, value)
        asked.append(cell)

    if relation.num_missing == 0:
        probabilities = skyline_mask(relation.observed).astype(float)
    else:
        probabilities = skyline_probabilities(
            relation, samples=samples, rng=rng
        )
    skyline = {
        int(i) for i in np.nonzero(probabilities >= threshold)[0]
    }
    return LofiResult(
        probabilities=probabilities,
        skyline=skyline,
        questions_asked=len(asked),
        asked_cells=asked,
        remaining_missing=relation.num_missing,
    )

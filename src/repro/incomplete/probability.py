"""Monte-Carlo skyline-membership probabilities over incomplete data.

[12] treats each missing value as a random variable and reports, per
tuple, the probability of belonging to the skyline. We estimate those
probabilities by sampling completions: every missing cell is drawn
uniformly from its attribute's observed range, the machine skyline of
each completion is computed with the vectorized mask kernel, and
membership frequencies are averaged.

Vectorization note: all ``samples`` completions are materialized as one
``(samples, n, d)`` tensor and each completion's skyline mask is
computed with numpy broadcasting — ~1000 samples × n=200 runs in well
under a second, which the budget loop in :mod:`repro.incomplete.lofi`
relies on.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.exceptions import DataError
from repro.incomplete.relation import IncompleteRelation
from repro.skyline.dominance import skyline_mask

#: Default Monte-Carlo sample count.
DEFAULT_SAMPLES = 200


def sample_completions(
    relation: IncompleteRelation,
    samples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``samples`` complete matrices consistent with the data.

    Missing cells are independent uniforms over the attribute's observed
    range (the [12] default prior).
    """
    observed = relation.observed
    low, high = relation.attribute_bounds()
    n, d = observed.shape
    completions = np.broadcast_to(observed, (samples, n, d)).copy()
    missing = np.isnan(observed)
    for j in range(d):
        rows = np.nonzero(missing[:, j])[0]
        if rows.size:
            completions[:, rows, j] = rng.uniform(
                low[j], high[j], size=(samples, rows.size)
            )
    return completions


def skyline_probabilities(
    relation: IncompleteRelation,
    samples: int = DEFAULT_SAMPLES,
    rng: Optional[np.random.Generator] = None,
    seed: Optional[int] = None,
) -> np.ndarray:
    """Per-tuple probability of skyline membership.

    Tuples with no missing values still carry uncertainty through the
    *other* tuples' completions, so all probabilities come from the same
    sampled ensemble.
    """
    if samples < 1:
        raise DataError("need at least one Monte-Carlo sample")
    if rng is not None and seed is not None:
        raise DataError("pass either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)

    if relation.num_missing == 0:
        mask = skyline_mask(relation.observed)
        return mask.astype(float)

    completions = sample_completions(relation, samples, rng)
    counts = np.zeros(relation.n, dtype=float)
    for k in range(samples):
        counts += skyline_mask(completions[k])
    return counts / samples

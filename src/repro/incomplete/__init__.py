"""The comparator system: crowd-enabled probabilistic skylines ([12]).

The paper's prior work — Lofi, El Maarry & Balke, *Skyline Queries in
Crowd-Enabled Databases* (EDBT 2013), cited as [12] — solves a different
formulation that CrowdSky §7 contrasts itself against:

* data is *partially* incomplete (individual cells missing, not whole
  columns),
* missing values are treated as random variables, giving each tuple a
  *probability* of skyline membership,
* a fixed crowdsourcing budget buys **unary** questions that materialize
  the most valuable missing cells, maximizing the confidence of the
  result rather than completing it.

This subpackage implements that system end to end so the two
formulations can be compared within one codebase:

* :mod:`repro.incomplete.relation` — relations with missing cells and
  hidden ground truth,
* :mod:`repro.incomplete.probability` — Monte-Carlo skyline-membership
  probabilities,
* :mod:`repro.incomplete.selection` — question-selection policies
  (random / uncertainty / influence),
* :mod:`repro.incomplete.lofi` — the budgeted crowd-enabled
  probabilistic skyline loop.
"""

from repro.incomplete.lofi import LofiResult, lofi_skyline
from repro.incomplete.probability import skyline_probabilities
from repro.incomplete.relation import IncompleteRelation
from repro.incomplete.selection import SelectionPolicy

__all__ = [
    "IncompleteRelation",
    "LofiResult",
    "SelectionPolicy",
    "lofi_skyline",
    "skyline_probabilities",
]

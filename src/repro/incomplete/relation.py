"""Relations with per-cell missing values (the [12] data model).

Unlike CrowdSky's hand-off setting (whole crowd *columns* missing), the
probabilistic formulation lets any individual cell be missing. The
observable matrix holds NaN for missing cells; the hidden truth matrix
feeds the simulated crowd's unary answers and the evaluation metrics.
"""

from __future__ import annotations

from typing import Optional, Tuple as TupleT

import numpy as np

from repro.exceptions import DataError


class IncompleteRelation:
    """An ``(n, d)`` dataset where some cells are unknown.

    Parameters
    ----------
    observed:
        Float matrix with ``NaN`` marking missing cells (smaller
        preferred on every attribute — canonicalize before building).
    truth:
        Complete ground-truth matrix; must agree with ``observed`` on
        every known cell. Only the crowd simulation and metrics may read
        it.
    """

    def __init__(self, observed: np.ndarray, truth: np.ndarray):
        observed = np.asarray(observed, dtype=float)
        truth = np.asarray(truth, dtype=float)
        if observed.shape != truth.shape:
            raise DataError("observed and truth shapes differ")
        if observed.ndim != 2 or observed.shape[0] == 0:
            raise DataError("need a non-empty (n, d) matrix")
        if np.isnan(truth).any():
            raise DataError("ground truth must be complete")
        known = ~np.isnan(observed)
        if not np.allclose(observed[known], truth[known]):
            raise DataError("observed values disagree with ground truth")
        self._observed = observed.copy()
        self._truth = truth

    @classmethod
    def mask_random_cells(
        cls,
        truth: np.ndarray,
        missing_rate: float,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ) -> "IncompleteRelation":
        """Hide a random fraction of cells of a complete matrix."""
        if not 0.0 <= missing_rate <= 1.0:
            raise DataError("missing_rate must be within [0, 1]")
        if rng is not None and seed is not None:
            raise DataError("pass either seed or rng, not both")
        if rng is None:
            rng = np.random.default_rng(seed)
        truth = np.asarray(truth, dtype=float)
        observed = truth.copy()
        mask = rng.random(truth.shape) < missing_rate
        observed[mask] = np.nan
        return cls(observed, truth)

    @property
    def n(self) -> int:
        """Number of tuples."""
        return self._observed.shape[0]

    @property
    def d(self) -> int:
        """Number of attributes."""
        return self._observed.shape[1]

    @property
    def observed(self) -> np.ndarray:
        """The visible matrix (copy); NaN marks missing cells."""
        return self._observed.copy()

    def truth_matrix(self) -> np.ndarray:
        """The hidden complete matrix (crowd/metrics side only)."""
        return self._truth.copy()

    def missing_cells(self) -> list:
        """All ``(row, column)`` positions still missing."""
        rows, cols = np.nonzero(np.isnan(self._observed))
        return [(int(r), int(c)) for r, c in zip(rows, cols)]

    @property
    def num_missing(self) -> int:
        """Count of missing cells."""
        return int(np.isnan(self._observed).sum())

    def truth_value(self, row: int, column: int) -> float:
        """Ground truth of one cell (crowd side only)."""
        return float(self._truth[row, column])

    def fill(self, row: int, column: int, value: float) -> None:
        """Materialize a missing cell with a crowdsourced estimate."""
        if not np.isnan(self._observed[row, column]):
            raise DataError(f"cell ({row}, {column}) is already known")
        self._observed[row, column] = float(value)

    def attribute_bounds(self) -> TupleT[np.ndarray, np.ndarray]:
        """Per-attribute (low, high) ranges of the *known* values.

        Missing values are modelled as uniform over these ranges; an
        attribute with no known values falls back to [0, 1].
        """
        import warnings

        with warnings.catch_warnings():
            # All-NaN columns are handled explicitly right below.
            warnings.simplefilter("ignore", RuntimeWarning)
            low = np.nanmin(self._observed, axis=0)
            high = np.nanmax(self._observed, axis=0)
        low = np.where(np.isnan(low), 0.0, low)
        high = np.where(np.isnan(high), 1.0, high)
        degenerate = high <= low
        high = np.where(degenerate, low + 1.0, high)
        return low, high

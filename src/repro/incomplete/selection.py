"""Question-selection policies for the budgeted probabilistic skyline.

[12]'s central optimization: with a fixed budget, *which* missing cells
should the crowd materialize? Three policies, in increasing
sophistication:

* ``RANDOM`` — uniform over missing cells (the control),
* ``UNCERTAINTY`` — cells of the tuples whose membership probability is
  closest to 1/2 (maximum entropy first),
* ``INFLUENCE`` — cells scored by the number of *undecided dominance
  pairs* the tuple participates in, weighted by the tuple's membership
  entropy: a value is worth buying when the tuple's status is genuinely
  open *and* its resolution cascades through many dominance tests. This
  approximates [12]'s most-influential-value selection.
"""

from __future__ import annotations

import enum
from typing import List, Optional, Tuple as TupleT

import numpy as np

from repro.exceptions import DataError
from repro.incomplete.probability import skyline_probabilities
from repro.incomplete.relation import IncompleteRelation


class SelectionPolicy(enum.Enum):
    """How the budget loop picks the next missing cell to crowdsource."""

    RANDOM = "random"
    UNCERTAINTY = "uncertainty"
    INFLUENCE = "influence"


def _undecided_pair_matrix(observed: np.ndarray) -> np.ndarray:
    """Boolean ``(n, n)`` matrix of pairs whose dominance is undecided.

    ``(s, t)`` is *decided* when the known cells alone prove ``s ⊀ t``
    (``s`` strictly worse than ``t`` on some known attribute) — then no
    completion can make ``s`` dominate ``t``. Everything else remains
    open and is where crowdsourced values can change the skyline.
    """
    n = observed.shape[0]
    undecided = np.zeros((n, n), dtype=bool)
    for s in range(n):
        both_known = ~np.isnan(observed[s]) & ~np.isnan(observed)
        worse_somewhere = np.any(
            both_known & (observed[s] > observed), axis=1
        )
        undecided[s] = ~worse_somewhere
    np.fill_diagonal(undecided, False)
    return undecided


def _influence_scores(
    relation: IncompleteRelation,
    probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Per-cell influence: open dominance pairs × membership entropy."""
    observed = relation.observed
    undecided = _undecided_pair_matrix(observed)
    # A pair matters in both orientations.
    open_pairs = (undecided | undecided.T).sum(axis=1).astype(float)
    if probabilities is not None:
        # 1 - |2p - 1| peaks at p = 1/2 and vanishes at certainty.
        openness = 1.0 - np.abs(2.0 * np.asarray(probabilities) - 1.0)
        open_pairs = open_pairs * (0.05 + openness)
    scores = np.zeros_like(observed)
    missing = np.isnan(observed)
    scores[missing] = np.repeat(
        open_pairs[:, None], observed.shape[1], axis=1
    )[missing]
    return scores


def select_cell(
    relation: IncompleteRelation,
    policy: SelectionPolicy,
    rng: np.random.Generator,
    probabilities: Optional[np.ndarray] = None,
    samples: int = 100,
) -> TupleT[int, int]:
    """Pick the next missing cell to crowdsource under ``policy``.

    ``probabilities`` (from :func:`skyline_probabilities`) can be passed
    in to avoid recomputation in the budget loop.
    """
    cells: List[TupleT[int, int]] = relation.missing_cells()
    if not cells:
        raise DataError("no missing cells left")

    if policy is SelectionPolicy.RANDOM:
        return cells[int(rng.integers(0, len(cells)))]

    if policy is SelectionPolicy.UNCERTAINTY:
        if probabilities is None:
            probabilities = skyline_probabilities(
                relation, samples=samples, rng=rng
            )
        # Entropy peaks at p = 1/2; deterministic tie-break by position.
        return min(
            cells,
            key=lambda cell: (abs(probabilities[cell[0]] - 0.5), cell),
        )

    if probabilities is None:
        probabilities = skyline_probabilities(
            relation, samples=samples, rng=rng
        )
    scores = _influence_scores(relation, probabilities)
    return max(cells, key=lambda cell: (scores[cell], (-cell[0], -cell[1])))

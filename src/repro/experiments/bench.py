"""The benchmark-trajectory harness (``crowdsky bench``).

Runs a pinned suite of benchmarks — closure maintenance at n=512, the
fig6a sweep cold and warm, and end-to-end CrowdSky — ``repeats`` times
each, and appends one machine-fingerprinted *trajectory record* to
``BENCH_trajectory.json`` (a JSON array; every append rewrites the file
atomically through :mod:`repro.io.atomic`, so a crash never tears it).
The committed reference records live in
``benchmarks/baselines/bench_trajectory.json`` keyed by suite;
:func:`repro.obs.perf.regress` diffs a fresh record against them with
tolerance bands and an absolute noise floor, which is what the CI
``bench`` job gates on. See ``docs/profiling.md``.

Five suites, sharing benchmark ids only where the workload is
byte-identical (records are only comparable per id):

* ``smoke`` — seconds; the CI gate and the default.
* ``ci`` — the ISSUE-pinned trio (closure n=512, fig6a ci-scale
  cold/warm, crowdsky n=1000); tens of seconds per repeat.
* ``paper`` — ``ci`` plus crowdsky n=10000; minutes.
* ``scale`` — the sharded machine-phase curve (docs/sharding.md):
  serial vs sharded skyline at n=10k/100k/1M, plus the legacy
  quadratic kernel at n=10k as a reference point. The shipped-
  candidate counts ride along as ``machine_shipped_n*`` pseudo-
  benchmarks (deterministic counts, not seconds), so the committed
  baseline also pins merge traffic at O(skyline).
* ``crowd-scale`` — the crowd-phase backend curve
  (docs/performance.md): end-to-end CrowdSky per closure backend at
  n=1k/5k/10k/20k (slow backends capped per
  :data:`CROWD_SCALE_BACKENDS`), plus deterministic
  ``crowd_closure_updates_*`` pseudo-benchmarks pinning the closure
  maintenance work of every backend — tens of minutes per repeat.

Workload determinism: every benchmark is seeded, so two runs on one
machine time the *same* computation. The only wall-clock reads are the
monotonic ``perf_counter`` timings; calendar timestamps come from
:func:`repro.obs.perf.utc_timestamp` (the obs layer owns the clock —
see RA001).
"""

from __future__ import annotations

import json
import os
import random
import shutil
import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.core.crowdsky import CrowdSkyConfig, crowdsky
from repro.core.preference import PreferenceGraph
from repro.crowd.questions import Preference
from repro.data.synthetic import generate_synthetic
from repro.exceptions import ExperimentError
from repro.experiments.registry import run_experiment
from repro.experiments.sweep import SweepCache
from repro.io.atomic import atomic_write_text
from repro.skyline.dominance import skyline_mask
from repro.skyline.sharded import local_skyline_mask, sharded_skyline_mask
from repro.obs.perf import (
    Regression,
    machine_fingerprint,
    median,
    regress,
    utc_timestamp,
)

#: Default home of the appended trajectory (repo root in CI).
DEFAULT_TRAJECTORY = "BENCH_trajectory.json"

#: Committed per-suite reference records the gate compares against.
DEFAULT_BASELINES = "benchmarks/baselines/bench_trajectory.json"

BENCH_RECORD_SCHEMA = "crowdsky.bench_record/1"

#: Per-mutation pair probes, mirroring ``benchmarks/closure_cases.py``
#: (the schedulers check about this many candidate pairs per answer).
QUERIES_PER_ANSWER = 8


# ---------------------------------------------------------------------------
# Workloads (seeded, self-contained)
# ---------------------------------------------------------------------------


def _closure_ops(n: int, seed: int = 0) -> List[Tuple]:
    """The ``random_dag`` closure mix: answers consistent with a hidden
    total order, each followed by seeded pair probes — the closest
    synthetic stand-in for what the schedulers generate."""
    rng = random.Random(seed)
    order = list(range(n))
    rng.shuffle(order)
    rank = {t: i for i, t in enumerate(order)}
    ops: List[Tuple] = []
    for _ in range(2 * n):
        u, v = rng.sample(range(n), 2)
        answer = Preference.LEFT if rank[u] < rank[v] else Preference.RIGHT
        ops.append(("answer", u, v, answer))
        for _ in range(QUERIES_PER_ANSWER):
            a, b = rng.sample(range(n), 2)
            ops.append(("query", a, b))
    return ops


def _replay_closure(ops: Sequence[Tuple], n: int) -> float:
    """Replay a closure workload on the bitset backend; returns seconds."""
    graph = PreferenceGraph(n, backend="bitset")
    start = time.perf_counter()
    for op in ops:
        if op[0] == "answer":
            graph.add_answer(op[1], op[2], op[3])
        else:
            graph.relation(op[1], op[2])
    return time.perf_counter() - start


def _time_closure(n: int, seed: int = 0) -> Dict[str, float]:
    ops = _closure_ops(n, seed)
    return {"closure_bitset_n%d" % n: _replay_closure(ops, n)}


def _time_fig6a(scale: str) -> Dict[str, float]:
    """Cold then warm fig6a sweep against a fresh content-addressed
    cache — the pair prices the sweep engine and the cache hit path."""
    directory = tempfile.mkdtemp(prefix="crowdsky-bench-")
    try:
        cache = SweepCache(directory)
        start = time.perf_counter()
        run_experiment("fig6a", scale=scale, cache=cache)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        run_experiment("fig6a", scale=scale, cache=cache)
        warm = time.perf_counter() - start
    finally:
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "fig6a_%s_cold" % scale: cold,
        "fig6a_%s_warm" % scale: warm,
    }


def _time_crowdsky(n: int) -> Dict[str, float]:
    relation = generate_synthetic(n, 2, 2, seed=7)
    start = time.perf_counter()
    crowdsky(relation)
    return {"crowdsky_e2e_n%d" % n: time.perf_counter() - start}


#: ``crowd-scale`` backend matrix per ``n``. The slower backends are
#: capped where one repeat would run tens of minutes (bitset past
#: n=10k, reference past n=5k); the numpy backend carries the curve to
#: n=20k alone. The caps are deliberate and documented
#: (docs/performance.md) — they are the measurement of *why* numpy is
#: the default, not an attempt to hide the comparison.
CROWD_SCALE_BACKENDS: Dict[int, Tuple[str, ...]] = {
    1_000: ("numpy", "bitset", "reference"),
    5_000: ("numpy", "bitset", "reference"),
    10_000: ("numpy", "bitset"),
    20_000: ("numpy",),
}


def _time_crowd_e2e(n: int) -> Dict[str, float]:
    """End-to-end serial CrowdSky at one ``n``, per closure backend.

    Same seeded workload as ``crowdsky_e2e_n*`` (so the numbers are
    directly comparable with the historical trajectory), but the
    backend is pinned explicitly per id — the committed crowd-scale
    baseline is the cross-backend speedup evidence.
    """
    relation = generate_synthetic(n, 2, 2, seed=7)
    out: Dict[str, float] = {}
    for backend in CROWD_SCALE_BACKENDS[n]:
        config = CrowdSkyConfig(backend=backend)
        start = time.perf_counter()
        crowdsky(relation, config=config)
        out["crowd_e2e_%s_n%d" % (backend, n)] = (
            time.perf_counter() - start
        )
    return out


def _count_closure_updates(n: int) -> Dict[str, float]:
    """Deterministic closure-update counts per backend (pseudo-bench).

    Replays the seeded ``random_dag`` closure mix into every backend
    and records each graph's ``closure_updates`` counter in the
    ``median_s`` slot — a count, not seconds, so the committed baseline
    pins closure maintenance *work* exactly (machine-independent). The
    numpy backend must mirror the bitset accounting one-for-one; a
    divergence fails the bench run instead of recording nonsense.
    """
    ops = _closure_ops(n, seed=3)
    out: Dict[str, float] = {}
    counts: Dict[str, int] = {}
    for backend in ("numpy", "bitset", "reference"):
        graph = PreferenceGraph(n, backend=backend)
        for op in ops:
            if op[0] == "answer":
                graph.add_answer(op[1], op[2], op[3])
            else:
                graph.relation(op[1], op[2])
        counts[backend] = graph.closure_updates
        out["crowd_closure_updates_%s_n%d" % (backend, n)] = float(
            graph.closure_updates
        )
    if counts["numpy"] != counts["bitset"]:
        raise ExperimentError(
            f"numpy closure-update accounting diverged from bitset at "
            f"n={n}: {counts['numpy']} != {counts['bitset']}"
        )
    return out


#: ``scale`` suite shape: shard count, worker processes (capped by the
#: machine — the fingerprint's ``cpus`` field keeps records comparable),
#: attribute count and the shipped-candidate ceiling.
SCALE_SHARDS = 8
SCALE_JOBS = max(1, min(SCALE_SHARDS, os.cpu_count() or 1))
SCALE_DIMENSIONS = 4
#: Merge traffic above this multiple of the skyline size fails the run
#: outright — the communication-cost contract, enforced at bench time.
SCALE_SHIPPED_FACTOR = 32


def _scale_data(n: int, seed: int = 17) -> np.ndarray:
    return np.random.default_rng(seed).random((n, SCALE_DIMENSIONS))


def _time_scale(n: int, matrix_kernel: bool = False) -> Dict[str, float]:
    """Serial vs sharded machine-phase skyline at one ``n``.

    Every repeat re-checks that the two masks are identical and that
    ``tuples_shipped`` stays within :data:`SCALE_SHIPPED_FACTOR` of the
    skyline size — a bench run that breaks the sharding contract fails
    instead of silently recording a nonsense timing. The shipped count
    is recorded as a ``machine_shipped_n*`` pseudo-benchmark
    (a deterministic count in the ``median_s`` slot), pinning merge
    traffic in the committed baseline.
    """
    data = _scale_data(n)
    out: Dict[str, float] = {}
    if matrix_kernel:
        # The O(n^2) matrix kernel — only affordable at the small end;
        # kept as the reference point the curve is measured against.
        start = time.perf_counter()
        skyline_mask(data)
        out["machine_sky_matrix_n%d" % n] = time.perf_counter() - start
    start = time.perf_counter()
    serial_mask, _ = local_skyline_mask(data)
    out["machine_sky_serial_n%d" % n] = time.perf_counter() - start
    start = time.perf_counter()
    sharded_mask, stats = sharded_skyline_mask(
        data, SCALE_SHARDS, "hash", jobs=SCALE_JOBS
    )
    out["machine_sky_sharded_n%d" % n] = time.perf_counter() - start
    if not np.array_equal(serial_mask, sharded_mask):
        raise ExperimentError(
            f"sharded skyline diverged from serial at n={n}"
        )
    skyline_size = int(np.count_nonzero(serial_mask))
    if stats.tuples_shipped > SCALE_SHIPPED_FACTOR * max(skyline_size, 1):
        raise ExperimentError(
            f"sharded merge shipped {stats.tuples_shipped} candidates "
            f"for a skyline of {skyline_size} at n={n} — merge traffic "
            f"is no longer O(skyline)"
        )
    out["machine_shipped_n%d" % n] = float(stats.tuples_shipped)
    return out


#: suite name -> ordered benchmark thunks, each returning {id: seconds}.
SUITES: Dict[str, List[Callable[[], Dict[str, float]]]] = {
    "smoke": [
        lambda: _time_closure(128),
        lambda: _time_fig6a("smoke"),
        lambda: _time_crowdsky(200),
    ],
    "ci": [
        lambda: _time_closure(512),
        lambda: _time_fig6a("ci"),
        lambda: _time_crowdsky(1000),
    ],
    "paper": [
        lambda: _time_closure(512),
        lambda: _time_fig6a("ci"),
        lambda: _time_crowdsky(1000),
        lambda: _time_crowdsky(10000),
    ],
    "scale": [
        lambda: _time_scale(10_000, matrix_kernel=True),
        lambda: _time_scale(100_000),
        lambda: _time_scale(1_000_000),
    ],
    "crowd-scale": [
        lambda: _count_closure_updates(512),
        lambda: _count_closure_updates(2048),
        lambda: _time_crowd_e2e(1_000),
        lambda: _time_crowd_e2e(5_000),
        lambda: _time_crowd_e2e(10_000),
        lambda: _time_crowd_e2e(20_000),
    ],
}


# ---------------------------------------------------------------------------
# Records and the trajectory file
# ---------------------------------------------------------------------------


def run_suite(
    suite: str = "smoke",
    repeats: int = 3,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, Any]:
    """Run one suite ``repeats`` times; returns the trajectory record.

    Noise handling happens at record time: every benchmark keeps all of
    its per-repeat timings (``runs_s``) plus their median, which is
    what :func:`repro.obs.perf.regress` compares.
    """
    thunks = SUITES.get(suite)
    if thunks is None:
        raise ExperimentError(
            f"unknown bench suite {suite!r}; pick one of {sorted(SUITES)}"
        )
    if repeats < 1:
        raise ExperimentError("bench repeats must be >= 1")
    runs: Dict[str, List[float]] = {}
    order: List[str] = []
    for repeat in range(repeats):
        for thunk in thunks:
            for bench_id, seconds in thunk().items():
                if bench_id not in runs:
                    runs[bench_id] = []
                    order.append(bench_id)
                runs[bench_id].append(seconds)
                if progress is not None:
                    progress(
                        f"[{repeat + 1}/{repeats}] {bench_id}: "
                        f"{seconds:.4f}s"
                    )
    return {
        "schema": BENCH_RECORD_SCHEMA,
        "suite": suite,
        "recorded_at": utc_timestamp(),
        "fingerprint": machine_fingerprint(),
        "repeats": repeats,
        "results": [
            {
                "id": bench_id,
                "runs_s": runs[bench_id],
                "median_s": median(runs[bench_id]),
            }
            for bench_id in order
        ],
    }


def load_trajectory(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """The recorded trajectory (oldest first); [] when absent/empty."""
    path = Path(path)
    if not path.exists():
        return []
    text = path.read_text().strip()
    if not text:
        return []
    records = json.loads(text)
    if not isinstance(records, list):
        raise ExperimentError(
            f"{path}: trajectory must be a JSON array of records"
        )
    return records


def append_record(
    record: Dict[str, Any], path: Union[str, Path] = DEFAULT_TRAJECTORY
) -> int:
    """Append one record to the trajectory file (atomic rewrite).

    Returns the new trajectory length. The file is a growing JSON array
    rather than JSONL so it stays directly loadable by plotting
    notebooks; rewriting through ``repro.io.atomic`` keeps the append
    crash-safe (RA012 covers this module).
    """
    records = load_trajectory(path)
    records.append(record)
    atomic_write_text(
        str(path), json.dumps(records, indent=2, sort_keys=True) + "\n"
    )
    return len(records)


def load_baseline(
    suite: str, path: Union[str, Path] = DEFAULT_BASELINES
) -> Optional[Dict[str, Any]]:
    """The committed reference record for ``suite``, or None."""
    path = Path(path)
    if not path.exists():
        return None
    document = json.loads(path.read_text())
    return document.get("suites", {}).get(suite)


def check_against_baseline(
    record: Dict[str, Any],
    baseline_path: Union[str, Path] = DEFAULT_BASELINES,
    tolerance: float = 0.30,
    min_seconds: float = 0.005,
    ignore_fingerprint: bool = False,
) -> Tuple[Optional[List[Regression]], str]:
    """Gate one record against the committed baseline of its suite.

    Returns ``(findings, message)``: findings is None when no baseline
    exists or the machines differ (callers must not fail on that — an
    incomparable record is a skip, not a pass), else the regression
    list (possibly empty).
    """
    baseline = load_baseline(record["suite"], baseline_path)
    if baseline is None:
        return None, (
            f"no committed baseline for suite {record['suite']!r} "
            f"in {baseline_path}; gate skipped"
        )
    if not ignore_fingerprint and not _same_machine(record, baseline):
        return None, (
            "baseline was recorded on a different machine; gate skipped "
            "(pass ignore_fingerprint to force the comparison)"
        )
    findings = regress(
        record,
        baseline,
        tolerance=tolerance,
        min_seconds=min_seconds,
        ignore_fingerprint=True,
    )
    if findings:
        lines = "\n".join("  " + f.describe() for f in findings)
        return findings, f"{len(findings)} regression(s):\n{lines}"
    return [], (
        f"no regressions vs baseline "
        f"(tolerance {1.0 + tolerance:.2f}x, floor {min_seconds}s)"
    )


def _same_machine(a: Dict[str, Any], b: Dict[str, Any]) -> bool:
    from repro.obs.perf import same_machine

    return same_machine(a.get("fingerprint"), b.get("fingerprint"))

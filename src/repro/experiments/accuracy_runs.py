"""Accuracy experiments for Figures 10-11 (paper §6.1).

All runs use noisy Bernoulli workers (``p = 0.8``) with ``ω = 5`` and
average precision/recall over several seeded runs, exactly mirroring the
paper's setup:

* Figure 10 — StaticVoting vs DynamicVoting inside CrowdSky.
* Figure 11 — Baseline (noisy tournament sort), Unary (the [12]
  simulation) and CrowdSky with dynamic voting.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import crowdsky
from repro.core.result import CrowdSkylineResult
from repro.core.unary import unary_skyline
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import DynamicVoting, StaticVoting, VotingPolicy
from repro.crowd.workers import WorkerPool
from repro.data.relation import Relation
from repro.data.synthetic import Distribution, generate_synthetic
from repro.experiments.sweep import Cell, CacheLike, run_cells
from repro.metrics.accuracy import precision_recall
from repro.skyline.dominating import FrequencyOracle
from repro.skyline.dominance import dominance_matrix

#: The paper's Figure 10/11 grid.
PAPER_ACCURACY_CARDINALITIES = (200, 400, 600, 800, 1000)
CI_ACCURACY_CARDINALITIES = (100, 200, 300)
SMOKE_ACCURACY_CARDINALITIES = (60,)

DEFAULT_WORKER_ACCURACY = 0.8
DEFAULT_OMEGA = 5


def _noisy_crowd(
    relation: Relation,
    voting: VotingPolicy,
    seed: int,
    accuracy: float = DEFAULT_WORKER_ACCURACY,
) -> SimulatedCrowd:
    pool = WorkerPool.uniform(accuracy=accuracy)
    return SimulatedCrowd(relation, pool=pool, voting=voting, seed=seed)


def _dynamic_voting(relation: Relation, omega: int = DEFAULT_OMEGA) -> DynamicVoting:
    frequency = FrequencyOracle(dominance_matrix(relation.known_matrix()))
    return DynamicVoting.from_frequency(frequency, omega=omega)


def run_with_voting(
    relation: Relation,
    voting: VotingPolicy,
    seed: int,
) -> CrowdSkylineResult:
    """CrowdSky under a noisy crowd with the given voting policy."""
    crowd = _noisy_crowd(relation, voting, seed)
    return crowdsky(relation, crowd=crowd)


def voting_cell(config: Dict[str, object], seed: int) -> Dict[str, float]:
    """Sweep-cell runner for Figure 10 (one dataset, both policies)."""
    n = int(config["n"])
    num_known = int(config["num_known"])
    num_crowd = int(config["num_crowd"])
    distribution = Distribution(config["distribution"])
    omega = int(config["omega"])
    scores: Dict[str, float] = {}

    relation = generate_synthetic(
        n, num_known, num_crowd, distribution, seed=seed
    )
    static = run_with_voting(relation, StaticVoting(omega), seed)
    report = precision_recall(static.skyline, relation)
    scores["StaticVoting precision"] = report.precision
    scores["StaticVoting recall"] = report.recall

    relation = generate_synthetic(
        n, num_known, num_crowd, distribution, seed=seed
    )
    dynamic = run_with_voting(
        relation, _dynamic_voting(relation, omega), seed
    )
    report = precision_recall(dynamic.skyline, relation)
    scores["DynamicVoting precision"] = report.precision
    scores["DynamicVoting recall"] = report.recall
    return scores


def method_cell(config: Dict[str, object], seed: int) -> Dict[str, float]:
    """Sweep-cell runner for Figure 11 (one dataset, all methods)."""
    n = int(config["n"])
    num_known = int(config["num_known"])
    num_crowd = int(config["num_crowd"])
    distribution = Distribution(config["distribution"])
    omega = int(config["omega"])
    scores: Dict[str, float] = {}
    for name, runner in _methods(omega):
        relation = generate_synthetic(
            n, num_known, num_crowd, distribution, seed=seed
        )
        result = runner(relation, seed)
        report = precision_recall(result.skyline, relation)
        scores[f"{name} precision"] = report.precision
        scores[f"{name} recall"] = report.recall
    return scores


VOTING_RUNNER = "repro.experiments.accuracy_runs:voting_cell"
METHOD_RUNNER = "repro.experiments.accuracy_runs:method_cell"


def _accuracy_sweep(
    runner: str,
    series: Sequence[str],
    cardinalities: Sequence[int],
    num_known: int,
    num_crowd: int,
    distribution: Distribution,
    num_seeds: int,
    base_seed: int,
    omega: int,
    jobs: int,
    cache: CacheLike,
) -> List[Dict[str, object]]:
    label = runner.rsplit(":", 1)[-1]
    seeds = range(base_seed, base_seed + num_seeds)
    plan = [
        (
            n,
            [
                Cell.make(
                    label,
                    runner,
                    {
                        "n": n,
                        "num_known": num_known,
                        "num_crowd": num_crowd,
                        "distribution": distribution.value,
                        "omega": omega,
                    },
                    seed,
                )
                for seed in seeds
            ],
        )
        for n in cardinalities
    ]
    results = run_cells(
        [cell for _, cells in plan for cell in cells],
        jobs=jobs, cache=cache,
    )
    rows: List[Dict[str, object]] = []
    for n, cells in plan:  # seed order inside each n is plan order
        samples = [results[cell] for cell in cells]
        row: Dict[str, object] = {"n": n}
        row.update(
            {
                name: float(np.mean([sample[name] for sample in samples]))
                for name in series
            }
        )
        rows.append(row)
    return rows


def voting_accuracy(
    cardinalities: Sequence[int] = CI_ACCURACY_CARDINALITIES,
    num_known: int = 4,
    num_crowd: int = 1,
    distribution: Distribution = Distribution.INDEPENDENT,
    num_seeds: int = 5,
    base_seed: int = 0,
    omega: int = DEFAULT_OMEGA,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 10: precision/recall of Static vs Dynamic voting."""
    return _accuracy_sweep(
        VOTING_RUNNER,
        (
            "StaticVoting precision",
            "StaticVoting recall",
            "DynamicVoting precision",
            "DynamicVoting recall",
        ),
        cardinalities, num_known, num_crowd, distribution,
        num_seeds, base_seed, omega, jobs, cache,
    )


def method_accuracy(
    cardinalities: Sequence[int] = CI_ACCURACY_CARDINALITIES,
    num_known: int = 4,
    num_crowd: int = 1,
    distribution: Distribution = Distribution.INDEPENDENT,
    num_seeds: int = 5,
    base_seed: int = 0,
    omega: int = DEFAULT_OMEGA,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 11: precision/recall of Baseline vs Unary vs CrowdSky.

    The comparison is budget-normalized, matching the paper's setup:
    the Baseline spends its worker budget across ``Θ(n log n)``
    tournament comparisons (one worker each — roughly the same total
    assignments as CrowdSky's few hundred questions at ``ω ≈ 5``); the
    Unary simulation of [12] draws a single normal-noise estimate per
    tuple (the paper's "randomly select a value from the normal
    distribution of the actual value"); CrowdSky runs with dynamic
    majority voting, as stated in §6.1.
    """
    return _accuracy_sweep(
        METHOD_RUNNER,
        (
            "Baseline precision",
            "Baseline recall",
            "Unary precision",
            "Unary recall",
            "CrowdSky precision",
            "CrowdSky recall",
        ),
        cardinalities, num_known, num_crowd, distribution,
        num_seeds, base_seed, omega, jobs, cache,
    )


def _methods(omega: int) -> Sequence:
    """The Figure 11 contenders, budget-normalized (see above)."""
    return (
        (
            "Baseline",
            lambda relation, seed: baseline_skyline(
                relation,
                crowd=_noisy_crowd(relation, StaticVoting(1), seed),
            ),
        ),
        (
            "Unary",
            lambda relation, seed: unary_skyline(
                relation,
                crowd=_noisy_crowd(relation, StaticVoting(omega), seed),
                omega=1,
            ),
        ),
        (
            "CrowdSky",
            lambda relation, seed: crowdsky(
                relation,
                crowd=_noisy_crowd(
                    relation, _dynamic_voting(relation, omega), seed
                ),
            ),
        ),
    )

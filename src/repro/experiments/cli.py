"""Command-line entry point: ``crowdsky`` / ``python -m repro.experiments``.

Subcommands::

    crowdsky list                     # show all experiment ids
    crowdsky run fig8 --scale ci      # reproduce a figure/table
    crowdsky run all --scale smoke    # run everything (e.g. sanity sweep)
    crowdsky run fig6a --trace t.jsonl --metrics m.prom   # traced run
    crowdsky run fig8 --jobs 4        # fan cells out over 4 processes
    crowdsky run fig8 --no-cache      # recompute every cell
    crowdsky trace summarize t.jsonl  # human-readable trace report
    crowdsky trace summarize t.jsonl --format json        # machine form
    crowdsky trace validate t.jsonl --metrics m.prom      # schema check
    crowdsky skyline --dataset toy --journal-dir j/       # journaled run
    crowdsky resume j/ --dataset toy  # continue an interrupted run
    crowdsky resume j/ --dataset toy --replay             # free re-run
    crowdsky report runs/exp1/        # RunReport (JSON+Markdown) from
                                      # the trace/metrics in a directory
    crowdsky bench --suite smoke      # append a benchmark-trajectory
                                      # record; --check gates on the
                                      # committed baseline

``run`` and ``plot`` memoize finished sweep cells in a
content-addressed cache (``--cache-dir``, default
``~/.cache/crowdsky/sweeps``), invalidated automatically whenever any
``repro`` source file changes.

Set ``REPRO_LOG_LEVEL=debug`` (or info/warning) for diagnostic logging
on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
from contextlib import nullcontext
from typing import List, Optional

from repro.exceptions import (
    CrowdSkyError,
    ExperimentError,
    TraceSchemaError,
)
from repro.experiments.registry import (
    available_experiments,
    run_experiment,
)
from repro.experiments.report import format_table
from repro.experiments.sweep import resolve_cache
from repro.obs import observe, read_trace_jsonl, summarize_trace
from repro.obs.logging import configure_logging, level_from_env


def _add_sweep_options(parser: argparse.ArgumentParser) -> None:
    """Attach the sweep-engine flags shared by ``run`` and ``plot``."""
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help=(
            "run sweep cells across N worker processes (0 = one per "
            "CPU; default: 1, rows are identical either way)"
        ),
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help=(
            "directory for the content-addressed result cache "
            "(default: $REPRO_SWEEP_CACHE_DIR or "
            "~/.cache/crowdsky/sweeps)"
        ),
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the result cache (recompute every cell)",
    )


def _add_dataset_option(parser: argparse.ArgumentParser) -> None:
    """Attach the ``--dataset`` spec shared by ``skyline``/``resume``.

    The dataset itself is never journaled (it can be arbitrarily
    large), so ``resume`` takes the same spec the original run used;
    the journal header's relation fingerprint rejects a mismatch.
    """
    parser.add_argument(
        "--dataset",
        default="toy",
        metavar="SPEC",
        help=(
            "'toy' (the paper's Figure 1 example) or "
            "'synthetic:n=100,known=2,crowd=1,dist=ind,seed=7' "
            "(default: toy)"
        ),
    )


def _parse_dataset(spec: str):
    """Build the relation a ``--dataset`` spec names."""
    from repro.data.synthetic import Distribution, generate_synthetic
    from repro.data.toy import figure1_dataset
    from repro.exceptions import DataError

    if spec == "toy":
        return figure1_dataset()
    if spec.startswith("synthetic:"):
        params = {}
        for part in spec[len("synthetic:"):].split(","):
            if not part:
                continue
            key, sep, value = part.partition("=")
            if not sep:
                raise DataError(f"malformed dataset parameter {part!r}")
            params[key] = value
        distributions = {
            "ind": Distribution.INDEPENDENT,
            "ant": Distribution.ANTI_CORRELATED,
            "cor": Distribution.CORRELATED,
        }
        dist_key = params.pop("dist", "ind")
        if dist_key not in distributions:
            raise DataError(
                f"unknown distribution {dist_key!r} "
                "(expected ind, ant or cor)"
            )
        try:
            relation = generate_synthetic(
                n=int(params.pop("n", "100")),
                num_known=int(params.pop("known", "2")),
                num_crowd=int(params.pop("crowd", "1")),
                distribution=distributions[dist_key],
                seed=int(params.pop("seed", "0")),
            )
        except ValueError as error:
            raise DataError(f"bad dataset spec {spec!r}: {error}") from None
        if params:
            raise DataError(
                f"unknown dataset parameters: {', '.join(sorted(params))}"
            )
        return relation
    raise DataError(
        f"unknown dataset spec {spec!r} (expected 'toy' or 'synthetic:...')"
    )


def _run_skyline(args) -> int:
    """Execute ``crowdsky skyline``: one (optionally journaled) run."""
    from repro.core.crowdsky import crowdsky, crowdsky_budgeted
    from repro.core.parallel import parallel_dset, parallel_sl
    from repro.crowd.platform import SimulatedCrowd
    from repro.crowd.workers import WorkerPool

    if args.max_questions is not None and args.algorithm != "crowdsky":
        print(
            "error: --max-questions only applies to --algorithm crowdsky",
            file=sys.stderr,
        )
        return 2
    relation = _parse_dataset(args.dataset)
    pool = (
        WorkerPool.uniform(size=args.workers, accuracy=args.accuracy)
        if args.accuracy is not None
        else None
    )
    crowd = SimulatedCrowd(
        relation, pool=pool, seed=args.seed, journal=args.journal_dir
    )
    if args.max_questions is not None:
        result = crowdsky_budgeted(relation, args.max_questions, crowd)
    elif args.algorithm == "parallel-dset":
        result = parallel_dset(relation, crowd)
    elif args.algorithm == "parallel-sl":
        result = parallel_sl(relation, crowd)
    else:
        result = crowdsky(relation, crowd)
    print(result.summary(relation))
    if args.journal_dir is not None:
        print(f"journal: {args.journal_dir}")
    return 0


def _find_run_inputs(directory):
    """Locate the trace (required), metrics dump and journal of a run
    directory for ``crowdsky report``: the first ``*.jsonl`` that
    validates as a trace, the first ``*.prom``, and a nested journal
    directory containing ``wal-*`` segments (or the directory itself)."""
    from pathlib import Path

    from repro.crowd.journal import segment_paths

    root = Path(directory)
    if root.is_file():
        return root, None, None
    traces = [
        path
        for path in sorted(root.glob("*.jsonl"))
        if not path.name.startswith("wal-")
    ]
    metrics = sorted(root.glob("*.prom"))
    journal = None
    if segment_paths(root):
        journal = root
    else:
        for child in sorted(root.iterdir()):
            if child.is_dir() and segment_paths(child):
                journal = child
                break
    return (
        traces[0] if traces else None,
        metrics[0] if metrics else None,
        journal,
    )


def _journal_stats(directory) -> dict:
    """Plain-dict journal health for a RunReport; the obs layer cannot
    import :mod:`repro.crowd` (RA004), so the CLI bridges the two."""
    from repro.crowd.journal import recover_journal, segment_paths

    recovered = recover_journal(directory, heal=False)
    return {
        "directory": str(directory),
        "segments": len(segment_paths(directory)),
        "postings": len(recovered.postings),
        "kept_records": recovered.kept_records,
        "dropped_records": recovered.dropped_records,
        "truncated": recovered.truncated,
        "problems": list(recovered.problems),
        "has_header": recovered.header is not None,
    }


def _run_report(args) -> int:
    """Execute ``crowdsky report``: assemble a RunReport artifact."""
    from repro.obs.exporters import parse_prometheus_text
    from repro.obs.report import build_run_report, write_run_report

    trace_path, metrics_path, journal_dir = _find_run_inputs(args.run)
    if args.journal is not None:
        journal_dir = args.journal
    if trace_path is None:
        print(
            f"error: no JSONL trace found in {args.run}", file=sys.stderr
        )
        return 2
    events = read_trace_jsonl(trace_path)
    metrics = None
    if metrics_path is not None:
        with open(metrics_path) as handle:
            metrics = parse_prometheus_text(handle.read())
    journal = _journal_stats(journal_dir) if journal_dir else None
    report = build_run_report(
        events,
        metrics=metrics,
        journal=journal,
        meta={"trace": str(trace_path), "run": str(args.run)},
    )
    out_dir = args.output if args.output is not None else args.run
    paths = write_run_report(report, out_dir)
    print(f"report: {paths['json']}")
    print(f"report: {paths['markdown']}")
    return 0


def _run_bench(args) -> int:
    """Execute ``crowdsky bench``: record + optionally gate a suite."""
    from repro.experiments.bench import (
        append_record,
        check_against_baseline,
        run_suite,
    )

    record = run_suite(
        args.suite,
        repeats=args.repeats,
        progress=lambda line: print(line, file=sys.stderr),
    )
    total = append_record(record, args.output)
    print(
        f"recorded suite {args.suite!r} ({args.repeats} repeat(s)) -> "
        f"{args.output} ({total} record(s))"
    )
    if not args.check:
        return 0
    findings, message = check_against_baseline(
        record,
        baseline_path=args.baseline,
        tolerance=args.tolerance,
        ignore_fingerprint=args.ignore_fingerprint,
    )
    print(message)
    if findings:
        return 0 if args.report_only else 1
    return 0


def _run_resume(args) -> int:
    """Execute ``crowdsky resume``: continue or replay a journal."""
    from repro.core.resume import replay_run, resume_run

    relation = _parse_dataset(args.dataset)
    if args.replay:
        result = replay_run(args.journal, relation)
    else:
        result = resume_run(args.journal, relation)
    print(result.summary(relation))
    return 0


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="crowdsky",
        description=(
            "Reproduce the tables and figures of 'CrowdSky: Skyline "
            "Computation with Crowdsourcing' (EDBT 2016)."
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "run under the determinism sanitizer: record every "
            "wall-clock read, global-RNG use and os.urandom call "
            "with a stack trace, and exit nonzero if any occur "
            "outside the observability layer"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiment ids")

    run = subparsers.add_parser("run", help="run an experiment")
    run.add_argument(
        "experiment",
        help="experiment id (see 'crowdsky list'), or 'all'",
    )
    run.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default="ci",
        help="parameter grid size (default: ci)",
    )
    run.add_argument(
        "--json",
        metavar="PATH",
        default=None,
        help="additionally write results as JSON to PATH ('-' for stdout)",
    )
    run.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help="record a structured JSONL event trace of the run to PATH",
    )
    run.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="write a Prometheus-style metrics dump of the run to PATH",
    )
    _add_sweep_options(run)

    subparsers.add_parser(
        "demo",
        help="walk through the paper's toy example end to end",
    )

    trace = subparsers.add_parser(
        "trace", help="inspect a recorded JSONL trace"
    )
    trace_actions = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_actions.add_parser(
        "summarize", help="print a human-readable trace report"
    )
    summarize.add_argument("path", help="JSONL trace file")
    summarize.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help=(
            "output format: 'text' (default) or 'json' (the schema-"
            "validated summary RunReports embed)"
        ),
    )
    validate = trace_actions.add_parser(
        "validate", help="check a trace against the event schema"
    )
    validate.add_argument("path", help="JSONL trace file")
    validate.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help="also cross-check against a Prometheus metrics dump",
    )

    skyline = subparsers.add_parser(
        "skyline",
        help="run one crowd skyline computation (optionally journaled)",
    )
    _add_dataset_option(skyline)
    skyline.add_argument(
        "--algorithm",
        choices=("crowdsky", "parallel-dset", "parallel-sl"),
        default="crowdsky",
        help="scheduler to run (default: crowdsky)",
    )
    skyline.add_argument(
        "--journal-dir",
        metavar="DIR",
        default=None,
        help=(
            "attach a write-ahead journal: the run becomes resumable "
            "with 'crowdsky resume DIR' after a crash"
        ),
    )
    skyline.add_argument(
        "--accuracy",
        type=float,
        default=None,
        metavar="P",
        help=(
            "simulate noisy workers answering correctly with "
            "probability P (default: a perfect crowd)"
        ),
    )
    skyline.add_argument(
        "--workers",
        type=int,
        default=100,
        metavar="N",
        help="worker pool size for --accuracy crowds (default: 100)",
    )
    skyline.add_argument(
        "--seed",
        type=int,
        default=0,
        help="crowd-simulation RNG seed (default: 0)",
    )
    skyline.add_argument(
        "--max-questions",
        type=int,
        default=None,
        metavar="N",
        help=(
            "question budget (crowdsky only): stop after N questions "
            "with a conservative skyline superset"
        ),
    )

    resume = subparsers.add_parser(
        "resume",
        help="continue (or replay) a journaled skyline run",
    )
    resume.add_argument("journal", help="journal directory of the run")
    _add_dataset_option(resume)
    resume.add_argument(
        "--replay",
        action="store_true",
        help=(
            "re-execute a *finished* journal at zero crowd cost "
            "instead of resuming an interrupted one"
        ),
    )

    report = subparsers.add_parser(
        "report",
        help=(
            "assemble a RunReport (JSON + Markdown) from a run "
            "directory's trace/metrics/journal"
        ),
    )
    report.add_argument(
        "run",
        help="run directory holding the JSONL trace (or the trace file)",
    )
    report.add_argument(
        "--journal",
        metavar="DIR",
        default=None,
        help="journal directory (default: auto-detected under RUN)",
    )
    report.add_argument(
        "--output",
        metavar="DIR",
        default=None,
        help=(
            "directory for report.json / report.md "
            "(default: the run directory)"
        ),
    )

    bench = subparsers.add_parser(
        "bench",
        help=(
            "run the pinned benchmark suite and append a record to the "
            "trajectory file"
        ),
    )
    bench.add_argument(
        "--suite",
        choices=("smoke", "ci", "paper", "scale"),
        default="smoke",
        help=(
            "benchmark suite (default: smoke; scale = the sharded "
            "machine-phase n=10k/100k/1M curve, docs/sharding.md)"
        ),
    )
    bench.add_argument(
        "--repeats",
        type=int,
        default=3,
        metavar="K",
        help="timed repeats per benchmark; medians are compared "
        "(default: 3)",
    )
    bench.add_argument(
        "--output",
        metavar="PATH",
        default="BENCH_trajectory.json",
        help="trajectory file to append to (default: "
        "BENCH_trajectory.json)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="gate the new record against the committed baseline",
    )
    bench.add_argument(
        "--baseline",
        metavar="PATH",
        default="benchmarks/baselines/bench_trajectory.json",
        help="baseline file for --check (default: "
        "benchmarks/baselines/bench_trajectory.json)",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        metavar="FRAC",
        help="allowed slowdown fraction for --check (default: 0.30 = "
        "1.30x)",
    )
    bench.add_argument(
        "--ignore-fingerprint",
        action="store_true",
        help="compare even when the baseline machine differs",
    )
    bench.add_argument(
        "--report-only",
        action="store_true",
        help="print regressions but exit 0 (PR mode)",
    )

    plot = subparsers.add_parser(
        "plot", help="render an experiment as an ASCII chart"
    )
    plot.add_argument("experiment", help="experiment id")
    plot.add_argument(
        "--scale",
        choices=("smoke", "ci", "paper"),
        default="ci",
        help="parameter grid size (default: ci)",
    )
    _add_sweep_options(plot)
    return parser


def _run_demo() -> None:
    """Narrated run of the paper's Figure 1 toy example."""
    from repro.core.crowdsky import crowdsky
    from repro.core.parallel import parallel_dset, parallel_sl
    from repro.data.toy import figure1_dataset

    toy = figure1_dataset()
    print("The paper's toy dataset (Figure 1): 12 tuples a..l with two")
    print("known attributes; the third attribute lives only in crowd")
    print("judgment. SKY_AK = {b, e, i, l} is complete from the start.\n")

    serial = crowdsky(figure1_dataset())
    print(f"Serial CrowdSky asks {serial.stats.questions} questions")
    print("(Example 6 / Figure 4(a) of the paper), one per round:")
    pairs = ", ".join(
        f"({toy.label(a)},{toy.label(b)})" for a, b in serial.asked_pairs()
    )
    print(f"  {pairs}\n")

    dset = parallel_dset(figure1_dataset())
    print(
        f"ParallelDSet groups tuples by |DS(t)|: same "
        f"{dset.stats.questions} questions in {dset.stats.rounds} rounds "
        f"(Example 7)."
    )

    layered = parallel_sl(figure1_dataset())
    print(
        f"ParallelSL activates on the covering graph: "
        f"{layered.stats.rounds} rounds (Table 3):"
    )
    for row in layered.round_table(toy):
        print(f"  round {row['round']}: {row['questions']}")

    labels = ", ".join(sorted(serial.skyline_labels(toy)))
    print(f"\nFinal crowdsourced skyline: {{{labels}}} — Example 2.")


def _run_trace_command(args) -> int:
    """Execute ``crowdsky trace summarize|validate``."""
    from repro.obs.exporters import parse_prometheus_text
    from repro.obs.schema import check_metrics_consistency, validate_events

    try:
        events = read_trace_jsonl(args.path)
    except (OSError, TraceSchemaError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.trace_command == "summarize":
        if getattr(args, "format", "text") == "json":
            from repro.obs.report import trace_summary, validate_trace_summary

            summary = trace_summary(events)
            validate_trace_summary(summary)
            print(json.dumps(summary, indent=2, sort_keys=True))
        else:
            print(summarize_trace(events))
        return 0

    errors = validate_events(events)
    if args.metrics is not None:
        try:
            with open(args.metrics) as handle:
                values = parse_prometheus_text(handle.read())
        except OSError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        errors += check_metrics_consistency(events, values)
    if errors:
        for problem in errors:
            print(f"invalid: {problem}", file=sys.stderr)
        return 1
    print(f"ok: {len(events)} records pass schema validation")
    return 0


#: Path fragments the CLI sanitizer run treats as sanctioned wall-clock
#: users: the obs layer owns timestamps (RunReports, trace exports) by
#: design, and stdlib logging stamps every LogRecord — neither feeds
#: result data. See the threat model in docs/static-analysis.md.
_SANITIZE_ALLOW = ("repro/obs/", "logging/")


def _dispatch_sanitized(args) -> int:
    """Run one invocation under the determinism sanitizer."""
    from repro.analysis.sanitize import DeterminismSanitizer

    with DeterminismSanitizer(
        allow_modules=_SANITIZE_ALLOW
    ) as sanitizer:
        code = _dispatch(args)
    if sanitizer.violations:
        print(sanitizer.report(), file=sys.stderr)
        for violation in sanitizer.violations:
            print(violation.render_stack(), file=sys.stderr)
        return 1
    print(
        "determinism sanitizer: no violations", file=sys.stderr
    )
    return code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    configure_logging(level_from_env())
    try:
        args = _build_parser().parse_args(argv)
        if getattr(args, "sanitize", False):
            return _dispatch_sanitized(args)
        return _dispatch(args)
    except BrokenPipeError:
        # Downstream closed the pipe (e.g. `crowdsky list | head`).
        import os

        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _dispatch(args) -> int:
    """Execute one parsed CLI invocation."""

    if args.command == "list":
        for experiment_id in available_experiments():
            print(experiment_id)
        return 0

    if args.command == "demo":
        _run_demo()
        return 0

    if args.command == "trace":
        return _run_trace_command(args)

    if args.command in ("skyline", "resume", "report", "bench"):
        try:
            if args.command == "skyline":
                return _run_skyline(args)
            if args.command == "report":
                return _run_report(args)
            if args.command == "bench":
                return _run_bench(args)
            return _run_resume(args)
        except (OSError, CrowdSkyError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2

    ids = (
        available_experiments()
        if args.experiment == "all"
        else [args.experiment]
    )
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    observing = (
        observe(trace_path=trace_path, metrics_path=metrics_path)
        if trace_path or metrics_path
        else nullcontext()
    )
    # Caching is on by default for CLI sweeps (the point of the cache
    # is free re-runs); --no-cache recomputes, --cache-dir relocates.
    cache = resolve_cache(
        False if args.no_cache else (args.cache_dir or True)
    )
    results = []
    with observing:
        for experiment_id in ids:
            try:
                result = run_experiment(
                    experiment_id, scale=args.scale,
                    jobs=args.jobs, cache=cache,
                )
            except ExperimentError as error:
                print(f"error: {error}", file=sys.stderr)
                return 2
            results.append(result)
            if args.command == "plot":
                from repro.experiments.plots import chart_for_experiment

                print(chart_for_experiment(result))
            else:
                print(format_table(result))
            print()

    if args.command == "run" and args.json is not None:
        payload = json.dumps(
            [
                {
                    "id": result.id,
                    "title": result.title,
                    "columns": list(result.columns),
                    "rows": result.rows,
                    "scale": args.scale,
                }
                for result in results
            ],
            indent=2,
        )
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as handle:
                handle.write(payload)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Plain-text rendering of experiment results."""

from __future__ import annotations

from typing import Any, Dict, List, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or value == int(value):
            return f"{value:,.0f}"
        return f"{value:.3f}"
    return str(value)


def format_rows(columns: Sequence[str], rows: List[Dict[str, Any]]) -> str:
    """Render rows as an aligned text table."""
    table = [[_format_value(row.get(col, "")) for col in columns]
             for row in rows]
    widths = [
        max(len(str(col)), *(len(line[i]) for line in table))
        if table
        else len(str(col))
        for i, col in enumerate(columns)
    ]
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    separator = "  ".join("-" * widths[i] for i in range(len(columns)))
    body = [
        "  ".join(line[i].rjust(widths[i]) for i in range(len(columns)))
        for line in table
    ]
    return "\n".join([header, separator] + body)


def format_table(result) -> str:
    """Render a full :class:`ExperimentResult` with title and notes."""
    parts = [f"== {result.id}: {result.title} =="]
    parts.append(format_rows(result.columns, result.rows))
    if result.notes:
        parts.append("")
        parts.append(result.notes)
    return "\n".join(parts)

"""Reproductions of the paper's worked Tables 1-3 on the toy dataset.

These are exact, deterministic artifacts: Table 1 lists the dominating
and question sets of the Figure 1 dataset; Table 2 shows them sorted by
``|DS(t)|`` with the Corollary-1 prunings after ``{a, g, d}`` turn out to
be non-skyline tuples; Table 3 shows the ParallelSL round schedule.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.parallel import parallel_sl
from repro.data.relation import Relation
from repro.data.toy import figure1_dataset
from repro.skyline.dominating import dominating_sets, evaluation_order
from repro.skyline.layers import covering_graph


def _labels(relation: Relation, indices) -> List[str]:
    return sorted(relation.label(i) for i in indices)


def table1_rows() -> List[Dict[str, object]]:
    """Table 1: dominating sets and question sets of the toy dataset."""
    relation = figure1_dataset()
    ds = dominating_sets(relation.known_matrix())
    rows = []
    for t in range(len(relation)):
        if not ds[t]:
            continue
        label = relation.label(t)
        members = _labels(relation, ds[t])
        rows.append(
            {
                "t": label,
                "DS(t)": "{" + ", ".join(members) + "}",
                "Q(t)": ", ".join(f"({label}, {s})" for s in members),
                "|DS(t)|": len(members),
            }
        )
    rows.sort(key=lambda row: row["t"])
    return rows


def table2_rows() -> List[Dict[str, object]]:
    """Table 2: sorted dominating sets with Corollary-1 prunings.

    Reproduces the static listing of the paper: tuples ordered by
    ``|DS(t)|`` and the question sets remaining after the non-skyline
    tuples ``{a, g, d}`` are removed from later dominating sets.
    """
    relation = figure1_dataset()
    non_skyline = {relation.index_of(x) for x in ("a", "g", "d")}
    ds = dominating_sets(relation.known_matrix())
    order = evaluation_order(ds)
    rows = []
    for t in order:
        if not ds[t]:
            continue
        label = relation.label(t)
        original = _labels(relation, ds[t])
        # A tuple's own question set is pruned only by *earlier* removals;
        # a, g, d themselves still list their original questions.
        if t in non_skyline:
            pruned = original
        else:
            pruned = _labels(relation, ds[t] - non_skyline)
        rows.append(
            {
                "t": label,
                "DS(t)": "{" + ", ".join(original) + "}",
                "Q(t) after P1": ", ".join(
                    f"({label}, {s})" for s in pruned
                ),
                "questions": len(pruned),
            }
        )
    return rows


def table2_question_total() -> int:
    """Total questions in Table 2's pruned listing (paper: 18)."""
    return sum(row["questions"] for row in table2_rows())


def table3_rows() -> List[Dict[str, object]]:
    """Table 3: the ParallelSL schedule — ``c(t)`` and per-round questions."""
    relation = figure1_dataset()
    cover = covering_graph(relation.known_matrix())
    result = parallel_sl(figure1_dataset())

    rows: List[Dict[str, object]] = list(result.round_table(relation))
    rows.append(
        {
            "round": "c(t)",
            "questions": "; ".join(
                f"c({relation.label(t)})="
                + "{" + ", ".join(_labels(relation, cover[t])) + "}"
                for t in sorted(cover, key=relation.label)
                if cover[t]
            ),
        }
    )
    return rows

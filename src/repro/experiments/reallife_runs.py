"""Real-life dataset experiments for Figure 12 and §6.2's accuracy prose.

The three queries of §6.2 run against the embedded datasets with a noisy
simulated crowd (``p = 0.8``, ``ω = 5`` — the paper's AMT setting used
Masters workers, which we model as a clean Bernoulli pool):

* Q1 — rectangles, ``AK = {bbox_width, bbox_height}``, ``AC = {area}``,
* Q2 — IMDb movies, ``AK = {box_office, release_year}``,
  ``AC = {rating}``,
* Q3 — MLB pitchers, ``AK = {wins, strike_outs, era}``,
  ``AC = {valuable}``.

Figure 12(a) compares the monetary cost (the paper's HIT formula) of
Baseline vs CrowdSky; Figure 12(b) compares rounds of Baseline vs
ParallelDSet vs ParallelSL; the accuracy section reports precision/recall
for Q1 and the retrieved skylines for Q2/Q3.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple as TupleT

import numpy as np

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.data.mlb import mlb_dataset
from repro.data.movies import movies_dataset
from repro.data.rectangles import rectangles_dataset
from repro.data.relation import Relation
from repro.experiments.sweep import Cell, CacheLike, run_cells
from repro.metrics.accuracy import precision_recall

QUERIES: Sequence[TupleT[str, Callable[[], Relation]]] = (
    ("Q1", rectangles_dataset),
    ("Q2", movies_dataset),
    ("Q3", mlb_dataset),
)

_DATASETS: Dict[str, Callable[[], Relation]] = dict(QUERIES)

#: §6.2 restricts tasks to AMT "Masters" — the most reliable workers. We
#: model that qualification as a high per-answer accuracy (a Masters
#: worker comparing two rectangles is nearly always right); the synthetic
#: experiments (§6.1) keep the paper's p = 0.8.
DEFAULT_WORKER_ACCURACY = 0.97
DEFAULT_OMEGA = 5


def _crowd(relation: Relation, seed: int,
           accuracy: float = DEFAULT_WORKER_ACCURACY) -> SimulatedCrowd:
    return SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(accuracy=accuracy),
        voting=StaticVoting(DEFAULT_OMEGA),
        seed=seed,
    )


_ALGORITHMS: Sequence = (
    ("Baseline", baseline_skyline),
    ("ParallelDSet", parallel_dset),
    ("ParallelSL", parallel_sl),
)


def query_cell(config: Dict[str, object], seed: int) -> Dict[str, object]:
    """Sweep-cell runner for §6.2: one query, one seed.

    ``config["which"]`` selects the measurement: ``cost`` (Figure 12a),
    ``rounds`` (Figure 12b), ``latency`` (extension) or ``accuracy``
    (§6.2 prose, payload includes the retrieved skyline labels).
    """
    which = config["which"]
    name = str(config["query"])
    dataset = _DATASETS[name]
    if which == "cost":
        relation = dataset()
        base = baseline_skyline(relation, crowd=_crowd(relation, seed))
        relation = dataset()
        sky = crowdsky(relation, crowd=_crowd(relation, seed))
        return {
            "Baseline": float(base.stats.hit_cost()),
            "CrowdSky": float(sky.stats.hit_cost()),
        }
    if which == "rounds":
        out: Dict[str, object] = {}
        for algo_name, algorithm in _ALGORITHMS:
            relation = dataset()
            result = algorithm(relation, crowd=_crowd(relation, seed))
            out[algo_name] = result.stats.rounds
        return out
    if which == "latency":
        from repro.crowd.hits import HitLedger
        from repro.crowd.latency import (
            SECONDS_PER_HIT_Q1,
            SECONDS_PER_HIT_Q2,
            SECONDS_PER_HIT_Q3,
        )

        hit_seconds = {
            "Q1": SECONDS_PER_HIT_Q1,
            "Q2": SECONDS_PER_HIT_Q2,
            "Q3": SECONDS_PER_HIT_Q3,
        }
        out = {}
        for algo_name, algorithm in _ALGORITHMS:
            relation = dataset()
            ledger = HitLedger(
                seconds_per_hit=hit_seconds[name], seed=seed
            )
            crowd = SimulatedCrowd(
                relation,
                pool=WorkerPool.uniform(accuracy=DEFAULT_WORKER_ACCURACY),
                voting=StaticVoting(DEFAULT_OMEGA),
                seed=seed,
                ledger=ledger,
            )
            algorithm(relation, crowd=crowd)
            out[algo_name] = ledger.wall_clock_seconds() / 3600.0
        return out
    if which == "accuracy":
        relation = dataset()
        result = crowdsky(relation, crowd=_crowd(relation, seed))
        report = precision_recall(result.skyline, relation)
        return {
            "precision": report.precision,
            "recall": report.recall,
            "labels": sorted(result.skyline_labels(relation)),
        }
    raise ValueError(f"unknown real-life measurement {which!r}")


QUERY_RUNNER = "repro.experiments.reallife_runs:query_cell"


def _query_plan(which: str, num_seeds: int, base_seed: int):
    return [
        (
            name,
            [
                Cell.make(
                    f"reallife.{which}",
                    QUERY_RUNNER,
                    {"query": name, "which": which},
                    seed,
                )
                for seed in range(base_seed, base_seed + num_seeds)
            ],
        )
        for name, _ in QUERIES
    ]


def monetary_cost_rows(
    num_seeds: int = 3, base_seed: int = 0,
    jobs: int = 1, cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 12(a): HIT-formula cost of Baseline vs CrowdSky per query."""
    plan = _query_plan("cost", num_seeds, base_seed)
    results = run_cells(
        [cell for _, cells in plan for cell in cells], jobs=jobs, cache=cache
    )
    rows = []
    for name, cells in plan:
        samples = [results[cell] for cell in cells]
        rows.append(
            {
                "query": name,
                "Baseline ($)": float(
                    np.mean([s["Baseline"] for s in samples])
                ),
                "CrowdSky ($)": float(
                    np.mean([s["CrowdSky"] for s in samples])
                ),
            }
        )
    return rows


def rounds_rows(
    num_seeds: int = 3, base_seed: int = 0,
    jobs: int = 1, cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 12(b): rounds of Baseline vs ParallelDSet vs ParallelSL."""
    plan = _query_plan("rounds", num_seeds, base_seed)
    results = run_cells(
        [cell for _, cells in plan for cell in cells], jobs=jobs, cache=cache
    )
    rows = []
    for name, cells in plan:
        samples = [results[cell] for cell in cells]
        row: Dict[str, object] = {"query": name}
        for algo_name, _ in _ALGORITHMS:
            row[algo_name] = float(
                np.mean([s[algo_name] for s in samples])
            )
        rows.append(row)
    return rows


def latency_rows(
    num_seeds: int = 3, base_seed: int = 0,
    jobs: int = 1, cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Extension: estimated wall-clock per query and scheduler.

    Attaches a HIT ledger (sampled lognormal working times around §6.2's
    measured per-HIT means) to each run and reports the resulting
    wall-clock hours — the practical reading of Figure 12(b).
    """
    plan = _query_plan("latency", num_seeds, base_seed)
    results = run_cells(
        [cell for _, cells in plan for cell in cells], jobs=jobs, cache=cache
    )
    rows = []
    for name, cells in plan:
        samples = [results[cell] for cell in cells]
        row: Dict[str, object] = {"query": name}
        for algo_name, _ in _ALGORITHMS:
            row[f"{algo_name} (h)"] = float(
                np.mean([s[algo_name] for s in samples])
            )
        rows.append(row)
    return rows


def accuracy_rows(
    num_seeds: int = 3, base_seed: int = 0,
    jobs: int = 1, cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """§6.2 accuracy: precision/recall per query, plus skyline labels."""
    plan = _query_plan("accuracy", num_seeds, base_seed)
    results = run_cells(
        [cell for _, cells in plan for cell in cells], jobs=jobs, cache=cache
    )
    rows = []
    for name, cells in plan:
        samples = [results[cell] for cell in cells]
        rows.append(
            {
                "query": name,
                "precision": float(
                    np.mean([s["precision"] for s in samples])
                ),
                "recall": float(np.mean([s["recall"] for s in samples])),
                # Matches the serial implementation: report the labels
                # retrieved by the last seeded run.
                "skyline (last run)": ", ".join(samples[-1]["labels"]),
            }
        )
    return rows

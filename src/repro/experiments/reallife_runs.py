"""Real-life dataset experiments for Figure 12 and §6.2's accuracy prose.

The three queries of §6.2 run against the embedded datasets with a noisy
simulated crowd (``p = 0.8``, ``ω = 5`` — the paper's AMT setting used
Masters workers, which we model as a clean Bernoulli pool):

* Q1 — rectangles, ``AK = {bbox_width, bbox_height}``, ``AC = {area}``,
* Q2 — IMDb movies, ``AK = {box_office, release_year}``,
  ``AC = {rating}``,
* Q3 — MLB pitchers, ``AK = {wins, strike_outs, era}``,
  ``AC = {valuable}``.

Figure 12(a) compares the monetary cost (the paper's HIT formula) of
Baseline vs CrowdSky; Figure 12(b) compares rounds of Baseline vs
ParallelDSet vs ParallelSL; the accuracy section reports precision/recall
for Q1 and the retrieved skylines for Q2/Q3.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple as TupleT

import numpy as np

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.data.mlb import mlb_dataset
from repro.data.movies import movies_dataset
from repro.data.rectangles import rectangles_dataset
from repro.data.relation import Relation
from repro.metrics.accuracy import precision_recall

QUERIES: Sequence[TupleT[str, Callable[[], Relation]]] = (
    ("Q1", rectangles_dataset),
    ("Q2", movies_dataset),
    ("Q3", mlb_dataset),
)

#: §6.2 restricts tasks to AMT "Masters" — the most reliable workers. We
#: model that qualification as a high per-answer accuracy (a Masters
#: worker comparing two rectangles is nearly always right); the synthetic
#: experiments (§6.1) keep the paper's p = 0.8.
DEFAULT_WORKER_ACCURACY = 0.97
DEFAULT_OMEGA = 5


def _crowd(relation: Relation, seed: int,
           accuracy: float = DEFAULT_WORKER_ACCURACY) -> SimulatedCrowd:
    return SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(accuracy=accuracy),
        voting=StaticVoting(DEFAULT_OMEGA),
        seed=seed,
    )


def monetary_cost_rows(
    num_seeds: int = 3, base_seed: int = 0
) -> List[Dict[str, object]]:
    """Figure 12(a): HIT-formula cost of Baseline vs CrowdSky per query."""
    rows = []
    for name, dataset in QUERIES:
        costs: Dict[str, List[float]] = {"Baseline": [], "CrowdSky": []}
        for seed in range(base_seed, base_seed + num_seeds):
            relation = dataset()
            result = baseline_skyline(relation, crowd=_crowd(relation, seed))
            costs["Baseline"].append(result.stats.hit_cost())
            relation = dataset()
            result = crowdsky(relation, crowd=_crowd(relation, seed))
            costs["CrowdSky"].append(result.stats.hit_cost())
        rows.append(
            {
                "query": name,
                "Baseline ($)": float(np.mean(costs["Baseline"])),
                "CrowdSky ($)": float(np.mean(costs["CrowdSky"])),
            }
        )
    return rows


def rounds_rows(
    num_seeds: int = 3, base_seed: int = 0
) -> List[Dict[str, object]]:
    """Figure 12(b): rounds of Baseline vs ParallelDSet vs ParallelSL."""
    algorithms: Sequence = (
        ("Baseline", baseline_skyline),
        ("ParallelDSet", parallel_dset),
        ("ParallelSL", parallel_sl),
    )
    rows = []
    for name, dataset in QUERIES:
        row: Dict[str, object] = {"query": name}
        for algo_name, algorithm in algorithms:
            samples = []
            for seed in range(base_seed, base_seed + num_seeds):
                relation = dataset()
                result = algorithm(relation, crowd=_crowd(relation, seed))
                samples.append(result.stats.rounds)
            row[algo_name] = float(np.mean(samples))
        rows.append(row)
    return rows


def latency_rows(
    num_seeds: int = 3, base_seed: int = 0
) -> List[Dict[str, object]]:
    """Extension: estimated wall-clock per query and scheduler.

    Attaches a HIT ledger (sampled lognormal working times around §6.2's
    measured per-HIT means) to each run and reports the resulting
    wall-clock hours — the practical reading of Figure 12(b).
    """
    from repro.crowd.hits import HitLedger
    from repro.crowd.latency import (
        SECONDS_PER_HIT_Q1,
        SECONDS_PER_HIT_Q2,
        SECONDS_PER_HIT_Q3,
    )

    hit_seconds = {
        "Q1": SECONDS_PER_HIT_Q1,
        "Q2": SECONDS_PER_HIT_Q2,
        "Q3": SECONDS_PER_HIT_Q3,
    }
    algorithms: Sequence = (
        ("Baseline", baseline_skyline),
        ("ParallelDSet", parallel_dset),
        ("ParallelSL", parallel_sl),
    )
    rows = []
    for name, dataset in QUERIES:
        row: Dict[str, object] = {"query": name}
        for algo_name, algorithm in algorithms:
            samples = []
            for seed in range(base_seed, base_seed + num_seeds):
                relation = dataset()
                ledger = HitLedger(
                    seconds_per_hit=hit_seconds[name], seed=seed
                )
                crowd = SimulatedCrowd(
                    relation,
                    pool=WorkerPool.uniform(accuracy=DEFAULT_WORKER_ACCURACY),
                    voting=StaticVoting(DEFAULT_OMEGA),
                    seed=seed,
                    ledger=ledger,
                )
                algorithm(relation, crowd=crowd)
                samples.append(ledger.wall_clock_seconds() / 3600.0)
            row[f"{algo_name} (h)"] = float(np.mean(samples))
        rows.append(row)
    return rows


def accuracy_rows(
    num_seeds: int = 3, base_seed: int = 0
) -> List[Dict[str, object]]:
    """§6.2 accuracy: precision/recall per query, plus skyline labels."""
    rows = []
    for name, dataset in QUERIES:
        precisions, recalls = [], []
        labels: set = set()
        for seed in range(base_seed, base_seed + num_seeds):
            relation = dataset()
            result = crowdsky(relation, crowd=_crowd(relation, seed))
            report = precision_recall(result.skyline, relation)
            precisions.append(report.precision)
            recalls.append(report.recall)
            labels = result.skyline_labels(relation)
        rows.append(
            {
                "query": name,
                "precision": float(np.mean(precisions)),
                "recall": float(np.mean(recalls)),
                "skyline (last run)": ", ".join(sorted(labels)),
            }
        )
    return rows

"""Registry mapping experiment ids to runnable reproductions.

Every table and figure of the paper's evaluation section has an id here
(see DESIGN.md's per-experiment index). Experiments accept a ``scale``:

* ``smoke`` — minimal sizes for unit tests,
* ``ci`` — laptop-sized grid with the same shape as the paper (default),
* ``paper`` — the paper's full parameter grid (Table 4; slow in Python).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence

from repro.data.synthetic import Distribution
from repro.exceptions import ExperimentError
from repro.experiments import (
    accuracy_runs,
    lofi_runs,
    reallife_runs,
    synthetic_runs,
    tables,
)
from repro.experiments.sweep import Cell, CacheLike, run_cells


@dataclass
class ExperimentResult:
    """Rows reproducing one of the paper's tables or figures."""

    id: str
    title: str
    columns: Sequence[str]
    rows: List[Dict[str, Any]]
    notes: str = ""


_SCALES = ("smoke", "ci", "paper")


def _grid(scale: str) -> Dict[str, Any]:
    if scale == "paper":
        return {
            "cardinalities": synthetic_runs.PAPER_CARDINALITIES,
            "default_n": synthetic_runs.PAPER_DEFAULT_N,
            "accuracy_cardinalities":
                accuracy_runs.PAPER_ACCURACY_CARDINALITIES,
            "num_seeds": 10,
        }
    if scale == "ci":
        return {
            "cardinalities": synthetic_runs.CI_CARDINALITIES,
            "default_n": synthetic_runs.CI_DEFAULT_N,
            "accuracy_cardinalities": accuracy_runs.CI_ACCURACY_CARDINALITIES,
            "num_seeds": 3,
        }
    return {
        "cardinalities": synthetic_runs.SMOKE_CARDINALITIES,
        "default_n": synthetic_runs.SMOKE_DEFAULT_N,
        "accuracy_cardinalities": accuracy_runs.SMOKE_ACCURACY_CARDINALITIES,
        "num_seeds": 2,
    }


def _columns(rows: List[Dict[str, Any]]) -> List[str]:
    columns: List[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


#: Experiment runner signature: ``run(scale, jobs, cache) -> result``.
_Runner = Callable[[str, int, CacheLike], ExperimentResult]

_TABLE_ROWS: Dict[str, Callable[[], List[Dict[str, Any]]]] = {
    "table1": tables.table1_rows,
    "table2": tables.table2_rows,
    "table3": tables.table3_rows,
}


def table_cell(config: Dict[str, Any], seed: int) -> List[Dict[str, Any]]:
    """Sweep-cell runner for the deterministic toy-data tables."""
    return _TABLE_ROWS[config["table"]]()


TABLE_RUNNER = "repro.experiments.registry:table_cell"


def _table_experiment(id_: str, title: str, table_key: str) -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        cell = Cell.make(id_, TABLE_RUNNER, {"table": table_key}, 0)
        rows = run_cells([cell], jobs=jobs, cache=cache)[cell]
        return ExperimentResult(id_, title, _columns(rows), rows)

    return run


def _questions_experiment(id_: str, title: str, distribution: Distribution,
                          axis: str) -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        grid = _grid(scale)
        if axis == "n":
            rows = synthetic_runs.questions_vs_cardinality(
                distribution,
                cardinalities=grid["cardinalities"],
                num_seeds=grid["num_seeds"],
                jobs=jobs, cache=cache,
            )
        elif axis == "num_known":
            rows = synthetic_runs.questions_vs_known(
                distribution,
                n=grid["default_n"],
                num_seeds=grid["num_seeds"],
                jobs=jobs, cache=cache,
            )
        else:
            rows = synthetic_runs.questions_vs_crowd(
                distribution,
                n=grid["default_n"],
                num_seeds=grid["num_seeds"],
                jobs=jobs, cache=cache,
            )
        return ExperimentResult(id_, title, _columns(rows), rows)

    return run


def _rounds_experiment(id_: str, title: str, axis: str) -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        grid = _grid(scale)
        rows = []
        for distribution in (
            Distribution.INDEPENDENT,
            Distribution.ANTI_CORRELATED,
        ):
            if axis == "n":
                sub = synthetic_runs.rounds_vs_cardinality(
                    distribution,
                    cardinalities=grid["cardinalities"],
                    num_seeds=grid["num_seeds"],
                    jobs=jobs, cache=cache,
                )
            else:
                sub = synthetic_runs.rounds_vs_known(
                    distribution,
                    n=grid["default_n"],
                    num_seeds=grid["num_seeds"],
                    jobs=jobs, cache=cache,
                )
            for row in sub:
                row = {"distribution": distribution.value, **row}
                rows.append(row)
        return ExperimentResult(id_, title, _columns(rows), rows)

    return run


def _accuracy_experiment(id_: str, title: str, which: str) -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        grid = _grid(scale)
        fn = (
            accuracy_runs.voting_accuracy
            if which == "voting"
            else accuracy_runs.method_accuracy
        )
        rows = fn(
            cardinalities=grid["accuracy_cardinalities"],
            num_seeds=grid["num_seeds"],
            jobs=jobs, cache=cache,
        )
        return ExperimentResult(id_, title, _columns(rows), rows)

    return run


def _reallife_experiment(id_: str, title: str, which: str) -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        grid = _grid(scale)
        fn = {
            "cost": reallife_runs.monetary_cost_rows,
            "rounds": reallife_runs.rounds_rows,
            "accuracy": reallife_runs.accuracy_rows,
            "latency": reallife_runs.latency_rows,
        }[which]
        rows = fn(num_seeds=grid["num_seeds"], jobs=jobs, cache=cache)
        return ExperimentResult(id_, title, _columns(rows), rows)

    return run


def _lofi_experiment() -> _Runner:
    def run(scale: str, jobs: int, cache: CacheLike) -> ExperimentResult:
        grid = _grid(scale)
        if scale == "paper":
            budgets, n = (0, 20, 40, 80, 160), 120
        elif scale == "ci":
            budgets, n = (0, 10, 20, 40, 80), 60
        else:
            budgets, n = (0, 10, 25), 30
        rows = lofi_runs.budget_accuracy_rows(
            n=n, budgets=budgets, num_seeds=grid["num_seeds"],
            jobs=jobs, cache=cache,
        )
        return ExperimentResult(
            "extra_lofi",
            "Budget vs accuracy for the [12] probabilistic skyline "
            "(extension, not a paper artifact)",
            _columns(rows),
            rows,
        )

    return run


_REGISTRY: Dict[str, _Runner] = {
    "table1": _table_experiment(
        "table1", "Dominating sets and question sets (toy data)",
        "table1",
    ),
    "table2": _table_experiment(
        "table2", "Sorted dominating sets after P1 prunings (toy data)",
        "table2",
    ),
    "table3": _table_experiment(
        "table3", "ParallelSL round schedule (toy data)", "table3",
    ),
    "fig6a": _questions_experiment(
        "fig6a", "Questions vs cardinality (IND)",
        Distribution.INDEPENDENT, "n",
    ),
    "fig6b": _questions_experiment(
        "fig6b", "Questions vs |AK| (IND)",
        Distribution.INDEPENDENT, "num_known",
    ),
    "fig6c": _questions_experiment(
        "fig6c", "Questions vs |AC| (IND)",
        Distribution.INDEPENDENT, "num_crowd",
    ),
    "fig7a": _questions_experiment(
        "fig7a", "Questions vs cardinality (ANT)",
        Distribution.ANTI_CORRELATED, "n",
    ),
    "fig7b": _questions_experiment(
        "fig7b", "Questions vs |AK| (ANT)",
        Distribution.ANTI_CORRELATED, "num_known",
    ),
    "fig7c": _questions_experiment(
        "fig7c", "Questions vs |AC| (ANT)",
        Distribution.ANTI_CORRELATED, "num_crowd",
    ),
    "fig8": _rounds_experiment(
        "fig8", "Rounds vs cardinality (IND and ANT)", "n",
    ),
    "fig9": _rounds_experiment(
        "fig9", "Rounds vs |AK| (IND and ANT)", "num_known",
    ),
    "fig10": _accuracy_experiment(
        "fig10", "Static vs Dynamic voting accuracy (IND)", "voting",
    ),
    "fig11": _accuracy_experiment(
        "fig11", "Baseline vs Unary vs CrowdSky accuracy (IND)", "methods",
    ),
    "fig12a": _reallife_experiment(
        "fig12a", "Monetary cost over real-life queries", "cost",
    ),
    "fig12b": _reallife_experiment(
        "fig12b", "Rounds over real-life queries", "rounds",
    ),
    "q_accuracy": _reallife_experiment(
        "q_accuracy", "Accuracy over real-life queries (§6.2)", "accuracy",
    ),
    "extra_lofi": _lofi_experiment(),
    "extra_latency": _reallife_experiment(
        "extra_latency",
        "Estimated wall-clock over real-life queries "
        "(extension: HIT-sampled latency)",
        "latency",
    ),
}


def available_experiments() -> List[str]:
    """All registered experiment ids."""
    return sorted(_REGISTRY)


def run_experiment(
    experiment_id: str,
    scale: str = "ci",
    jobs: int = 1,
    cache: CacheLike = None,
) -> ExperimentResult:
    """Run one experiment at the given scale.

    ``jobs`` fans the experiment's cells out over worker processes
    (``0`` = one per CPU); rows are identical to a serial run. ``cache``
    enables the content-addressed result cache (``True`` for the default
    directory, or a path / :class:`~repro.experiments.sweep.SweepCache`).

    Raises
    ------
    ExperimentError
        On unknown ids or scales.
    """
    if scale not in _SCALES:
        raise ExperimentError(
            f"unknown scale {scale!r}; choose from {_SCALES}"
        )
    try:
        runner = _REGISTRY[experiment_id]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: "
            f"{', '.join(available_experiments())}"
        ) from None
    return runner(scale, jobs, cache)

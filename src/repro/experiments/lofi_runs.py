"""Extension experiment: budget-vs-accuracy for the [12] subsystem.

Not a paper artifact — CrowdSky's §6 only simulates [12]'s unary
*format* — but having the full comparator system in the repository
invites the obvious study: how does the probabilistic skyline's quality
grow with the question budget, and how much does smart question
selection buy over random?
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.synthetic import Distribution, generate_synthetic
from repro.experiments.sweep import Cell, CacheLike, run_cells
from repro.incomplete import (
    IncompleteRelation,
    SelectionPolicy,
    lofi_skyline,
)
from repro.skyline.dominance import skyline_mask


def _jaccard(predicted: set, expected: set) -> float:
    union = predicted | expected
    if not union:
        return 1.0
    return len(predicted & expected) / len(union)


def budget_cell(config: Dict[str, object], seed: int) -> float:
    """Sweep-cell runner: Jaccard score of one (budget, policy, seed)."""
    n = int(config["n"])
    truth = generate_synthetic(
        n, int(config["d"]), 0, Distribution.INDEPENDENT, seed=seed
    ).known_matrix()
    expected = set(np.nonzero(skyline_mask(truth))[0].astype(int))
    relation = IncompleteRelation.mask_random_cells(
        truth, float(config["missing_rate"]), seed=seed
    )
    result = lofi_skyline(
        relation,
        budget=int(config["budget"]),
        policy=SelectionPolicy(config["policy"]),
        worker_sigma=float(config["worker_sigma"]),
        seed=seed,
    )
    return _jaccard(result.skyline, expected)


BUDGET_RUNNER = "repro.experiments.lofi_runs:budget_cell"


def budget_accuracy_rows(
    n: int = 60,
    d: int = 3,
    missing_rate: float = 0.3,
    budgets: Sequence[int] = (0, 10, 20, 40, 80),
    num_seeds: int = 3,
    worker_sigma: float = 0.05,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Jaccard similarity to the true skyline per budget and policy."""
    seeds = range(base_seed, base_seed + num_seeds)
    plan = [
        (
            budget,
            policy,
            [
                Cell.make(
                    "lofi.budget",
                    BUDGET_RUNNER,
                    {
                        "n": n,
                        "d": d,
                        "missing_rate": missing_rate,
                        "worker_sigma": worker_sigma,
                        "budget": budget,
                        "policy": policy.value,
                    },
                    seed,
                )
                for seed in seeds
            ],
        )
        for budget in budgets
        for policy in SelectionPolicy
    ]
    results = run_cells(
        [cell for _, _, cells in plan for cell in cells],
        jobs=jobs, cache=cache,
    )
    rows: List[Dict[str, object]] = []
    row: Dict[str, object] = {}
    for budget, policy, cells in plan:
        if not row or row["budget"] != budget:
            row = {"budget": budget}
            rows.append(row)
        row[policy.value] = float(
            np.mean([results[cell] for cell in cells])
        )
    return rows

"""Extension experiment: budget-vs-accuracy for the [12] subsystem.

Not a paper artifact — CrowdSky's §6 only simulates [12]'s unary
*format* — but having the full comparator system in the repository
invites the obvious study: how does the probabilistic skyline's quality
grow with the question budget, and how much does smart question
selection buy over random?
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.data.synthetic import Distribution, generate_synthetic
from repro.incomplete import (
    IncompleteRelation,
    SelectionPolicy,
    lofi_skyline,
)
from repro.skyline.dominance import skyline_mask


def _jaccard(predicted: set, expected: set) -> float:
    union = predicted | expected
    if not union:
        return 1.0
    return len(predicted & expected) / len(union)


def budget_accuracy_rows(
    n: int = 60,
    d: int = 3,
    missing_rate: float = 0.3,
    budgets: Sequence[int] = (0, 10, 20, 40, 80),
    num_seeds: int = 3,
    worker_sigma: float = 0.05,
    base_seed: int = 0,
) -> List[Dict[str, object]]:
    """Jaccard similarity to the true skyline per budget and policy."""
    rows: List[Dict[str, object]] = []
    for budget in budgets:
        row: Dict[str, object] = {"budget": budget}
        for policy in SelectionPolicy:
            scores = []
            for seed in range(base_seed, base_seed + num_seeds):
                truth = generate_synthetic(
                    n, d, 0, Distribution.INDEPENDENT, seed=seed
                ).known_matrix()
                expected = set(
                    np.nonzero(skyline_mask(truth))[0].astype(int)
                )
                relation = IncompleteRelation.mask_random_cells(
                    truth, missing_rate, seed=seed
                )
                result = lofi_skyline(
                    relation,
                    budget=budget,
                    policy=policy,
                    worker_sigma=worker_sigma,
                    seed=seed,
                )
                scores.append(_jaccard(result.skyline, expected))
            row[policy.value] = float(np.mean(scores))
        rows.append(row)
    return rows

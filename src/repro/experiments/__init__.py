"""Experiment harness reproducing every table and figure of §6.

Experiments are registered by id (``table1`` .. ``table3``, ``fig6a`` ..
``fig12b``, ``q_accuracy``) in :mod:`repro.experiments.registry`; run them
programmatically via :func:`run_experiment` or from the shell::

    python -m repro.experiments run fig8 --scale ci
    python -m repro.experiments list

Each experiment returns an :class:`ExperimentResult` whose rows mirror the
series of the paper's plot/table, so the output can be compared 1:1 with
the published artwork (see EXPERIMENTS.md for the recorded comparison).
"""

from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.experiments.report import format_table

__all__ = [
    "ExperimentResult",
    "available_experiments",
    "format_table",
    "run_experiment",
]

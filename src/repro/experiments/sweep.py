"""Parallel sweep execution with content-addressed result caching.

Every reproduction sweep is an embarrassingly-parallel grid: each
*cell* — one ``(config, seed)`` unit of work — is an independent,
deterministically-seeded run. This module decomposes sweeps into cells,
fans them out over a :class:`concurrent.futures.ProcessPoolExecutor`,
and memoizes finished cells in an on-disk content-addressed cache so
re-running a sweep only recomputes invalidated cells.

**Determinism.** A cell is a pure function of ``(runner, config,
seed)``: the runner string names a top-level function
(``"module:function"``), the config is a flat JSON-able mapping, and all
randomness inside the runner is seeded from ``seed``. Results are
gathered into a dict and aggregated in *plan order* — never completion
order — so parallel and serial executions produce byte-identical rows.
Cached payloads round-trip through JSON (exact for ints and floats), so
warm-cache rows are byte-identical too.

**Cache.** Entries are addressed by a SHA-256 over the cache schema
version, a *code fingerprint* of the whole ``repro`` package (every
``.py`` file's path and contents), the runner, the cell config and the
seed. Editing any source file changes the fingerprint and atomically
invalidates every prior entry; corrupted entry files are deleted and
recomputed. Because the experiment id is deliberately *not* part of the
key, experiments that share cells (e.g. Figure 6(a)'s default-``n``
column and Figure 6(b)'s default-``|AK|`` column) share cache entries.
The default cache directory is ``$REPRO_SWEEP_CACHE_DIR`` or
``~/.cache/crowdsky/sweeps``.

**Observability.** Worker processes cannot feed the parent's
:class:`~repro.obs.MetricsRegistry` directly; when a global observation
is installed, each worker records its cell under a private observation
and ships the metrics dump and trace events back with the payload. The
parent absorbs both (:meth:`MetricsRegistry.absorb` /
:meth:`Tracer.absorb`), so ``--trace`` / ``--metrics`` output stays
complete under parallel execution. Cache hits emit a single
``sweep.cached`` trace event and count toward
``crowdsky_sweep_cells_total{status="cached"}`` — the crowd work they
skipped is *not* re-emitted, keeping traces and metric dumps mutually
consistent.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Tuple,
    Union,
)

from repro.exceptions import ExperimentError
from repro.io.atomic import atomic_write_text
from repro.obs import Observation, current_observation, install, uninstall
from repro.obs.metrics import (
    LATENCY_BUCKETS_S,
    SWEEP_CACHE_LOOKUP_SECONDS,
    SWEEP_CELLS,
)

#: Bump when the cache entry layout changes (invalidates all entries).
CACHE_VERSION = 1

#: Environment variable overriding the default cache directory.
CACHE_DIR_ENV = "REPRO_SWEEP_CACHE_DIR"


def default_cache_dir() -> str:
    """The default on-disk cache location."""
    override = os.environ.get(CACHE_DIR_ENV)
    if override:
        return override
    return os.path.join(
        os.path.expanduser("~"), ".cache", "crowdsky", "sweeps"
    )


_FINGERPRINT: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``.py`` file of the installed ``repro`` package.

    Any source edit — an algorithm tweak, a changed default — yields a
    new fingerprint, so stale cache entries can never be served. The
    walk is done once per process and memoized.
    """
    global _FINGERPRINT
    if _FINGERPRINT is None:
        import repro

        root = Path(repro.__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(path.relative_to(root).as_posix().encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _FINGERPRINT = digest.hexdigest()
    return _FINGERPRINT


@dataclass(frozen=True)
class Cell:
    """One independent unit of sweep work: ``runner(config, seed)``.

    ``runner`` is a ``"module:function"`` string naming a *top-level*
    function (resolvable by import in a worker process); ``config`` is
    stored as a sorted tuple of items so cells are hashable and
    picklable. ``experiment_id`` labels traces and metrics but does not
    enter the cache key — cells shared between experiments share cache
    entries.
    """

    experiment_id: str
    runner: str
    config: Tuple[Tuple[str, Any], ...]
    seed: int

    @staticmethod
    def make(
        experiment_id: str,
        runner: str,
        config: Mapping[str, Any],
        seed: int,
    ) -> "Cell":
        """Build a cell from a flat JSON-able config mapping."""
        return Cell(
            experiment_id=experiment_id,
            runner=runner,
            config=tuple(sorted(config.items())),
            seed=int(seed),
        )

    def config_dict(self) -> Dict[str, Any]:
        """The cell's config as a plain dict."""
        return dict(self.config)

    def resolve_runner(self):
        """Import and return the runner function."""
        module_name, _, attribute = self.runner.partition(":")
        if not module_name or not attribute:
            raise ExperimentError(
                f"malformed cell runner {self.runner!r}; expected "
                "'module:function'"
            )
        module = importlib.import_module(module_name)
        try:
            return getattr(module, attribute)
        except AttributeError:
            raise ExperimentError(
                f"cell runner {self.runner!r} does not exist"
            ) from None

    def run(self) -> Any:
        """Execute the cell and return its JSON-able payload."""
        return self.resolve_runner()(self.config_dict(), self.seed)


@dataclass
class CacheStats:
    """Per-:class:`SweepCache` bookkeeping (reset per instance)."""

    hits: int = 0
    misses: int = 0
    corrupt: int = 0
    stored: int = 0


class SweepCache:
    """Content-addressed on-disk store for finished cell payloads.

    Layout: ``<directory>/<key[:2]>/<key>.json`` where ``key`` is the
    cell's content hash (schema version + code fingerprint + runner +
    config + seed). Entries are written atomically (temp file +
    ``os.replace``); unreadable or malformed entries are deleted and
    treated as misses, so a corrupted cache heals itself on the next
    run.
    """

    def __init__(
        self,
        directory: Union[str, Path, None] = None,
        fingerprint: Optional[str] = None,
    ):
        self.directory = Path(directory or default_cache_dir())
        self.fingerprint = fingerprint or code_fingerprint()
        self.stats = CacheStats()

    def key(self, cell: Cell) -> str:
        """The cell's content-address under this cache's fingerprint."""
        payload = json.dumps(
            [
                CACHE_VERSION,
                self.fingerprint,
                cell.runner,
                [[name, value] for name, value in cell.config],
                cell.seed,
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def entry_path(self, cell: Cell) -> Path:
        """Where the cell's entry lives (whether or not it exists)."""
        key = self.key(cell)
        return self.directory / key[:2] / f"{key}.json"

    def get(self, cell: Cell) -> Tuple[bool, Any]:
        """``(hit, payload)`` for the cell; heals corrupted entries.

        Under an active observation each lookup is one
        ``sweep.cache_get`` span and one latency-histogram observation
        labelled by its outcome (hit / miss / corrupt).
        """
        observation = current_observation()
        if not observation.enabled:
            return self._get(cell)
        corrupt_before = self.stats.corrupt
        with observation.tracer.span("sweep.cache_get") as span:
            hit, payload = self._get(cell)
        if hit:
            status = "hit"
        elif self.stats.corrupt > corrupt_before:
            status = "corrupt"
        else:
            status = "miss"
        observation.metrics.histogram(
            SWEEP_CACHE_LOOKUP_SECONDS,
            buckets=LATENCY_BUCKETS_S,
            status=status,
        ).observe(span.duration_s or 0.0)
        return hit, payload

    def _get(self, cell: Cell) -> Tuple[bool, Any]:
        path = self.entry_path(cell)
        try:
            text = path.read_text()
        except OSError:
            self.stats.misses += 1
            return False, None
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict) or "payload" not in entry:
                raise ValueError("malformed cache entry")
            if entry.get("version") != CACHE_VERSION:
                raise ValueError("cache entry version mismatch")
            payload = entry["payload"]
        except (ValueError, TypeError):
            self.stats.corrupt += 1
            self.stats.misses += 1
            try:
                path.unlink()
            # Deliberate swallow: a racing process healed the corrupt
            # entry first; the miss is already counted and the
            # recompute path handles the rest.
            except OSError:  # repro: noqa RA011 - racing cleanup
                pass
            return False, None
        self.stats.hits += 1
        return True, payload

    def put(self, cell: Cell, payload: Any) -> None:
        """Persist one finished cell atomically (one ``sweep.cache_put``
        span + ``status="store"`` latency observation when traced)."""
        observation = current_observation()
        if not observation.enabled:
            self._put(cell, payload)
            return
        with observation.tracer.span("sweep.cache_put") as span:
            self._put(cell, payload)
        observation.metrics.histogram(
            SWEEP_CACHE_LOOKUP_SECONDS,
            buckets=LATENCY_BUCKETS_S,
            status="store",
        ).observe(span.duration_s or 0.0)

    def _put(self, cell: Cell, payload: Any) -> None:
        path = self.entry_path(cell)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "version": CACHE_VERSION,
            "fingerprint": self.fingerprint,
            "experiment_id": cell.experiment_id,
            "runner": cell.runner,
            "config": [[name, value] for name, value in cell.config],
            "seed": cell.seed,
            "payload": payload,
        }
        # No sort_keys: payload dict order is meaningful (row dicts carry
        # column order), and the content address comes from key(), not
        # from this serialization. Not durable: a lost entry just costs
        # one recompute.
        atomic_write_text(path, json.dumps(entry))
        self.stats.stored += 1


#: What callers may pass wherever a cache is accepted.
CacheLike = Union[None, bool, str, Path, SweepCache]


def resolve_cache(cache: CacheLike) -> Optional[SweepCache]:
    """Normalize a cache argument.

    ``None``/``False`` — caching off; ``True`` — the default directory;
    a path — a cache rooted there; a :class:`SweepCache` — itself.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return SweepCache(default_cache_dir())
    if isinstance(cache, SweepCache):
        return cache
    return SweepCache(cache)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a job count: ``None``/``0`` means one per CPU."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    return max(1, int(jobs))


def _execute_cell_captured(cell: Cell):
    """Worker-side cell execution with private observability capture.

    Runs in the pool worker. The cell executes under a fresh
    :class:`Observation`; its metrics dump and trace events travel back
    with the payload for the parent to absorb.
    """
    observation = Observation()
    install(observation)
    try:
        with observation.tracer.span(
            "sweep.cell", id=cell.experiment_id, seed=cell.seed
        ):
            payload = cell.run()
    finally:
        uninstall(observation)
    return payload, observation.metrics.dump(), observation.tracer.events


def _execute_cell_bare(cell: Cell):
    """Worker-side cell execution without capture (observability off)."""
    return cell.run(), None, None


def run_cells(
    cells: Iterable[Cell],
    jobs: int = 1,
    cache: CacheLike = None,
) -> Dict[Cell, Any]:
    """Execute a plan of cells and return ``{cell: payload}``.

    Cached cells are served first; the rest run serially (``jobs <= 1``,
    in-process, under the caller's observation) or across a process pool
    (``jobs > 1``). Results are post-processed in plan order regardless
    of completion order, so aggregation downstream is deterministic.
    Duplicate cells in the plan are executed once.
    """
    plan: List[Cell] = []
    seen = set()
    for cell in cells:
        if cell not in seen:
            seen.add(cell)
            plan.append(cell)
    jobs = resolve_jobs(jobs)
    store = resolve_cache(cache)
    observation = current_observation()

    results: Dict[Cell, Any] = {}
    pending: List[Cell] = []
    for cell in plan:
        hit = False
        if store is not None:
            hit, payload = store.get(cell)
        if hit:
            results[cell] = payload
            if observation.enabled:
                observation.tracer.event(
                    "sweep.cached", id=cell.experiment_id, seed=cell.seed
                )
                observation.metrics.counter(
                    SWEEP_CELLS, status="cached"
                ).inc()
        else:
            pending.append(cell)

    if not pending:
        return results

    if jobs > 1 and len(pending) > 1:
        worker = (
            _execute_cell_captured
            if observation.enabled
            else _execute_cell_bare
        )
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(pending))
        ) as pool:
            futures = [pool.submit(worker, cell) for cell in pending]
            executed = {
                cell: future.result()
                for cell, future in zip(pending, futures)
            }
    else:
        executed = {}
        for cell in pending:
            # In-process: events and metrics flow natively into the
            # caller's observation; only the span wrapper is added.
            if observation.enabled:
                with observation.tracer.span(
                    "sweep.cell", id=cell.experiment_id, seed=cell.seed
                ):
                    payload = cell.run()
            else:
                payload = cell.run()
            executed[cell] = (payload, None, None)

    for cell in pending:  # plan order, not completion order
        payload, metrics_dump, events = executed[cell]
        if observation.enabled:
            if metrics_dump:
                observation.metrics.absorb(metrics_dump)
            if events:
                observation.tracer.absorb(events)
            observation.metrics.counter(
                SWEEP_CELLS, status="computed"
            ).inc()
        if store is not None:
            store.put(cell, payload)
        results[cell] = payload
    return results


def sweep_rows(
    cells: Iterable[Cell],
    aggregate,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Run a plan and aggregate its payloads into result rows.

    ``aggregate`` receives the ``{cell: payload}`` mapping and must
    iterate cells in its own deterministic order.
    """
    return aggregate(run_cells(cells, jobs=jobs, cache=cache))

"""Synthetic-data sweeps for Figures 6-9 (paper §6.1).

Each sweep runs the relevant algorithms on freshly generated datasets
(perfect crowd — the §3/§4 setting of these figures) and averages over
several seeds, reporting the same series the paper plots:

* Figures 6-7 — number of questions for Baseline / DSet / P1 / P1+P2 /
  P1+P2+P3 over varying cardinality, ``|AK|`` and ``|AC|``, for IND and
  ANT distributions.
* Figures 8-9 — number of rounds for Baseline / Serial / ParallelDSet /
  ParallelSL over varying cardinality and ``|AK|``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import CrowdSkyConfig, PruningLevel, crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.data.synthetic import Distribution, generate_synthetic
from repro.experiments.sweep import Cell, CacheLike, run_cells

#: The paper's default grid (Table 4).
PAPER_CARDINALITIES = (2000, 4000, 6000, 8000, 10000)
PAPER_KNOWN_DIMS = (2, 3, 4, 5)
PAPER_CROWD_DIMS = (1, 2, 3)
PAPER_DEFAULT_N = 4000
PAPER_DEFAULT_KNOWN = 4
PAPER_DEFAULT_CROWD = 1

#: CI-friendly scaled-down grid (same shape, laptop-sized).
CI_CARDINALITIES = (200, 400, 600, 800, 1000)
CI_DEFAULT_N = 400

#: Minimal grid for unit tests.
SMOKE_CARDINALITIES = (60, 120)
SMOKE_DEFAULT_N = 80

_PRUNING_SERIES = (
    ("DSet", PruningLevel.DSET),
    ("P1", PruningLevel.P1),
    ("P1+P2", PruningLevel.P1_P2),
    ("P1+P2+P3", PruningLevel.P1_P2_P3),
)


def _seeds(count: int, base: int) -> List[int]:
    return [base + i for i in range(count)]


def _average(values: Iterable[float]) -> float:
    values = list(values)
    return float(np.mean(values)) if values else float("nan")


def question_counts(
    n: int,
    num_known: int,
    num_crowd: int,
    distribution: Distribution,
    seed: int,
) -> Dict[str, int]:
    """Question counts of all Figure 6/7 series on one dataset."""
    counts: Dict[str, int] = {}
    relation = generate_synthetic(n, num_known, num_crowd, distribution,
                                  seed=seed)
    counts["Baseline"] = baseline_skyline(relation).stats.questions
    for name, level in _PRUNING_SERIES:
        relation = generate_synthetic(n, num_known, num_crowd, distribution,
                                      seed=seed)
        result = crowdsky(relation, config=CrowdSkyConfig(pruning=level))
        counts[name] = result.stats.questions
    return counts


def round_counts(
    n: int,
    num_known: int,
    num_crowd: int,
    distribution: Distribution,
    seed: int,
) -> Dict[str, int]:
    """Round counts of all Figure 8/9 series on one dataset."""
    algorithms: Sequence = (
        ("Baseline", baseline_skyline),
        ("Serial", crowdsky),
        ("ParallelDSet", parallel_dset),
        ("ParallelSL", parallel_sl),
    )
    counts: Dict[str, int] = {}
    for name, algorithm in algorithms:
        relation = generate_synthetic(n, num_known, num_crowd, distribution,
                                      seed=seed)
        counts[name] = algorithm(relation).stats.rounds
    return counts


def question_cell(config: Dict[str, object], seed: int) -> Dict[str, int]:
    """Sweep-cell runner for the Figure 6/7 grids (one dataset)."""
    return question_counts(
        n=int(config["n"]),
        num_known=int(config["num_known"]),
        num_crowd=int(config["num_crowd"]),
        distribution=Distribution(config["distribution"]),
        seed=seed,
    )


def round_cell(config: Dict[str, object], seed: int) -> Dict[str, int]:
    """Sweep-cell runner for the Figure 8/9 grids (one dataset)."""
    return round_counts(
        n=int(config["n"]),
        num_known=int(config["num_known"]),
        num_crowd=int(config["num_crowd"]),
        distribution=Distribution(config["distribution"]),
        seed=seed,
    )


QUESTION_RUNNER = "repro.experiments.synthetic_runs:question_cell"
ROUND_RUNNER = "repro.experiments.synthetic_runs:round_cell"


def _sweep(
    runner: str,
    x_name: str,
    x_values: Sequence[int],
    fixed: Dict[str, int],
    distribution: Distribution,
    seeds: Sequence[int],
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    label = runner.rsplit(":", 1)[-1]
    plan: List[Tuple[int, List[Cell]]] = []
    for x in x_values:
        params = dict(fixed)
        params[x_name] = x
        config = {
            "n": params["n"],
            "num_known": params["num_known"],
            "num_crowd": params["num_crowd"],
            "distribution": distribution.value,
        }
        plan.append(
            (x, [Cell.make(label, runner, config, seed) for seed in seeds])
        )
    results = run_cells(
        [cell for _, cells in plan for cell in cells],
        jobs=jobs, cache=cache,
    )
    rows: List[Dict[str, object]] = []
    for x, cells in plan:  # plan order keeps aggregation deterministic
        samples = [results[cell] for cell in cells]
        row: Dict[str, object] = {x_name: x}
        for series in samples[0]:
            row[series] = _average(sample[series] for sample in samples)
        rows.append(row)
    return rows


def questions_vs_cardinality(
    distribution: Distribution,
    cardinalities: Sequence[int] = CI_CARDINALITIES,
    num_known: int = PAPER_DEFAULT_KNOWN,
    num_crowd: int = PAPER_DEFAULT_CROWD,
    num_seeds: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 6(a) / 7(a): questions vs cardinality."""
    return _sweep(
        QUESTION_RUNNER,
        "n",
        list(cardinalities),
        {"num_known": num_known, "num_crowd": num_crowd, "n": 0},
        distribution,
        _seeds(num_seeds, base_seed),
        jobs=jobs,
        cache=cache,
    )


def questions_vs_known(
    distribution: Distribution,
    known_dims: Sequence[int] = PAPER_KNOWN_DIMS,
    n: int = CI_DEFAULT_N,
    num_crowd: int = PAPER_DEFAULT_CROWD,
    num_seeds: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 6(b) / 7(b): questions vs ``|AK|``."""
    return _sweep(
        QUESTION_RUNNER,
        "num_known",
        list(known_dims),
        {"n": n, "num_crowd": num_crowd, "num_known": 0},
        distribution,
        _seeds(num_seeds, base_seed),
        jobs=jobs,
        cache=cache,
    )


def questions_vs_crowd(
    distribution: Distribution,
    crowd_dims: Sequence[int] = PAPER_CROWD_DIMS,
    n: int = CI_DEFAULT_N,
    num_known: int = PAPER_DEFAULT_KNOWN,
    num_seeds: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 6(c) / 7(c): questions vs ``|AC|``."""
    return _sweep(
        QUESTION_RUNNER,
        "num_crowd",
        list(crowd_dims),
        {"n": n, "num_known": num_known, "num_crowd": 0},
        distribution,
        _seeds(num_seeds, base_seed),
        jobs=jobs,
        cache=cache,
    )


def rounds_vs_cardinality(
    distribution: Distribution,
    cardinalities: Sequence[int] = CI_CARDINALITIES,
    num_known: int = PAPER_DEFAULT_KNOWN,
    num_crowd: int = PAPER_DEFAULT_CROWD,
    num_seeds: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 8: rounds vs cardinality."""
    return _sweep(
        ROUND_RUNNER,
        "n",
        list(cardinalities),
        {"num_known": num_known, "num_crowd": num_crowd, "n": 0},
        distribution,
        _seeds(num_seeds, base_seed),
        jobs=jobs,
        cache=cache,
    )


def rounds_vs_known(
    distribution: Distribution,
    known_dims: Sequence[int] = PAPER_KNOWN_DIMS,
    n: int = CI_DEFAULT_N,
    num_crowd: int = PAPER_DEFAULT_CROWD,
    num_seeds: int = 3,
    base_seed: int = 0,
    jobs: int = 1,
    cache: CacheLike = None,
) -> List[Dict[str, object]]:
    """Figure 9: rounds vs ``|AK|``."""
    return _sweep(
        ROUND_RUNNER,
        "num_known",
        list(known_dims),
        {"n": n, "num_crowd": num_crowd, "num_known": 0},
        distribution,
        _seeds(num_seeds, base_seed),
        jobs=jobs,
        cache=cache,
    )

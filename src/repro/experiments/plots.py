"""ASCII renderings of the paper's figures (offline, no plotting deps).

Turns experiment rows into terminal line charts so the shapes of
Figures 6-12 can be inspected directly from a shell session::

    crowdsky plot fig8

Log-scaled y axes mirror the paper's round plots; linear scaling is used
for accuracy figures (values in [0, 1]).
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Sequence

_MARKERS = "ox*+#%@&"


def _column_is_numeric(rows: List[Dict[str, Any]], column: str) -> bool:
    return all(
        isinstance(row.get(column), (int, float)) for row in rows
    )


def ascii_chart(
    rows: List[Dict[str, Any]],
    x: str,
    series: Sequence[str],
    width: int = 60,
    height: int = 16,
    log_y: bool = False,
    title: str = "",
) -> str:
    """Render series of ``rows`` as an ASCII scatter/line chart.

    Parameters
    ----------
    rows:
        Experiment rows (dicts).
    x:
        Column giving the x position (numeric or ordinal).
    series:
        Column names to plot; each gets its own marker.
    width, height:
        Canvas size in characters.
    log_y:
        Use a log10 y-axis (the paper's Figures 8-9 style).
    title:
        Optional chart heading.
    """
    points: List[tuple] = []
    x_values: List[float] = []
    for index, row in enumerate(rows):
        raw = row.get(x)
        x_value = float(raw) if isinstance(raw, (int, float)) else float(index)
        x_values.append(x_value)
        for s_index, name in enumerate(series):
            value = row.get(name)
            if isinstance(value, (int, float)):
                points.append((x_value, float(value), s_index))
    if not points:
        return "(no numeric data)"

    def transform(value: float) -> float:
        if log_y:
            return math.log10(max(value, 1e-9))
        return value

    ys = [transform(p[1]) for p in points]
    y_low, y_high = min(ys), max(ys)
    if y_high == y_low:
        y_high = y_low + 1.0
    x_low, x_high = min(x_values), max(x_values)
    if x_high == x_low:
        x_high = x_low + 1.0

    canvas = [[" "] * width for _ in range(height)]
    for x_value, y_value, s_index in points:
        col = int((x_value - x_low) / (x_high - x_low) * (width - 1))
        row_pos = int(
            (transform(y_value) - y_low) / (y_high - y_low) * (height - 1)
        )
        canvas[height - 1 - row_pos][col] = _MARKERS[s_index % len(_MARKERS)]

    def y_label(fraction: float) -> str:
        value = y_low + fraction * (y_high - y_low)
        if log_y:
            value = 10 ** value
        if value >= 1000:
            return f"{value:,.0f}"
        if value >= 10:
            return f"{value:.0f}"
        return f"{value:.2f}"

    lines = []
    if title:
        lines.append(title)
    top_label = y_label(1.0)
    bottom_label = y_label(0.0)
    label_width = max(len(top_label), len(bottom_label))
    for i, canvas_row in enumerate(canvas):
        if i == 0:
            label = top_label
        elif i == height - 1:
            label = bottom_label
        else:
            label = ""
        lines.append(f"{label:>{label_width}} |" + "".join(canvas_row))
    lines.append(" " * label_width + " +" + "-" * width)
    lines.append(
        " " * label_width
        + f"  {x}: {x_low:g} .. {x_high:g}"
        + ("   [log y]" if log_y else "")
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(" " * label_width + "  " + legend)
    return "\n".join(lines)


def chart_for_experiment(result, log_y: Optional[bool] = None) -> str:
    """Best-effort chart for an :class:`ExperimentResult`.

    The first column is the x axis; remaining numeric columns are the
    series. Round/question figures default to a log y axis.
    """
    if not result.rows:
        return "(empty experiment)"
    columns = list(result.columns)
    x = columns[0]
    # Grouped sweeps (fig8/fig9) carry a leading 'distribution' column.
    if x == "distribution" and len(columns) > 1:
        x = columns[1]
        series = [c for c in columns[2:]
                  if _column_is_numeric(result.rows, c)]
    else:
        series = [c for c in columns[1:]
                  if _column_is_numeric(result.rows, c)]
    if log_y is None:
        log_y = any(
            keyword in result.title.lower()
            for keyword in ("rounds", "questions")
        )
    return ascii_chart(
        result.rows, x, series, log_y=log_y,
        title=f"{result.id}: {result.title}",
    )

"""Crowd-powered sorting substrate (paper §3's Baseline).

* :mod:`repro.sorting.tournament` — tournament sort driven by an
  arbitrary ternary comparator (crowd questions when used by
  :func:`repro.core.baseline.baseline_skyline`),
* :mod:`repro.sorting.comparators` — comparator adapters: crowd-backed,
  latent-truth, and counting wrappers.
"""

from repro.sorting.comparators import (
    CountingComparator,
    crowd_comparator,
    truth_comparator,
)
from repro.sorting.tournament import tournament_sort

__all__ = [
    "CountingComparator",
    "crowd_comparator",
    "tournament_sort",
    "truth_comparator",
]

"""Tournament sort with a pluggable ternary comparator.

The paper's Baseline replaces the comparisons of a classic tournament
sort (Cormen et al. [3]) with binary crowd questions: the winner of the
tournament is the most preferred tuple; extracting it and replaying the
matches along its path yields the next one with ``⌈log₂ n⌉`` new
comparisons, giving ``n − 1 + (n − 1)⌈log₂ n⌉`` comparisons for a full
total order — "the minimum number of questions" among the sorting
baselines the paper considers.

The comparator returns a :class:`~repro.questions.Preference`
(LEFT = first argument preferred). ``EQUAL`` keeps the first argument as
the match winner, which makes the sort stable for tied items.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.questions import Preference

Comparator = Callable[[int, int], Preference]


class _TournamentTree:
    """Loser-replay tournament over a fixed item set."""

    def __init__(self, items: Sequence[int], compare: Comparator):
        self._compare = compare
        size = 1
        while size < len(items):
            size *= 2
        self._size = size
        # Leaves occupy [size, 2*size); internal node i has children 2i,
        # 2i+1; node 1 is the root.
        self._nodes: List[Optional[int]] = [None] * (2 * size)
        self._leaf_of = {}
        for offset, item in enumerate(items):
            self._nodes[size + offset] = item
            self._leaf_of[item] = size + offset
        for node in range(size - 1, 0, -1):
            self._nodes[node] = self._play(
                self._nodes[2 * node], self._nodes[2 * node + 1]
            )

    def _play(self, a: Optional[int], b: Optional[int]) -> Optional[int]:
        if a is None:
            return b
        if b is None:
            return a
        answer = self._compare(a, b)
        return b if answer is Preference.RIGHT else a

    @property
    def winner(self) -> Optional[int]:
        """Current overall winner (most preferred remaining item)."""
        return self._nodes[1]

    def remove_winner(self) -> int:
        """Pop the winner and replay its path to find the next one."""
        item = self._nodes[1]
        if item is None:
            raise IndexError("tournament is empty")
        node = self._leaf_of[item]
        self._nodes[node] = None
        node //= 2
        while node >= 1:
            self._nodes[node] = self._play(
                self._nodes[2 * node], self._nodes[2 * node + 1]
            )
            node //= 2
        return item


def tournament_sort(
    items: Sequence[int], compare: Comparator
) -> List[int]:
    """Sort ``items`` most-preferred-first using tournament selection.

    Parameters
    ----------
    items:
        The item identifiers to sort (typically tuple indices).
    compare:
        Ternary comparator; ``LEFT`` means the first argument is
        preferred. Comparator implementations may cache or crowdsource —
        the sort only sees the answers.
    """
    items = list(items)
    if len(items) <= 1:
        return items
    tree = _TournamentTree(items, compare)
    output: List[int] = []
    for _ in range(len(items)):
        output.append(tree.remove_winner())
    return output

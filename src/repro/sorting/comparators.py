"""Comparator adapters for the sorting substrate."""

from __future__ import annotations

from typing import Callable, Protocol

import numpy as np

from repro.questions import PairwiseQuestion, Preference

Comparator = Callable[[int, int], Preference]


class PairwiseAsker(Protocol):
    """Anything that answers one pairwise question per call.

    Structural stand-in for the crowd platform
    (:class:`repro.crowd.platform.SimulatedCrowd` satisfies it), so the
    sorting layer never imports the crowd layer (RA004).
    """

    def ask_pairwise(self, question: PairwiseQuestion) -> Preference:
        ...  # pragma: no cover - protocol signature


def crowd_comparator(crowd: PairwiseAsker, attribute: int = 0) -> Comparator:
    """A comparator that asks the crowd, one question per round.

    Repeated comparisons of the same pair are served from the platform's
    answer cache, so tournament replays never pay twice.
    """

    def compare(u: int, v: int) -> Preference:
        return crowd.ask_pairwise(PairwiseQuestion(u, v, attribute))

    return compare


def truth_comparator(latent: np.ndarray, attribute: int = 0) -> Comparator:
    """A machine comparator over latent values (for tests/ground truth)."""

    column = np.asarray(latent, dtype=float)[:, attribute]

    def compare(u: int, v: int) -> Preference:
        if column[u] < column[v]:
            return Preference.LEFT
        if column[v] < column[u]:
            return Preference.RIGHT
        return Preference.EQUAL

    return compare


class CountingComparator:
    """Wraps a comparator and counts distinct and total invocations."""

    def __init__(self, inner: Comparator):
        self._inner = inner
        self.calls = 0
        self._seen = set()

    @property
    def distinct_pairs(self) -> int:
        """Number of distinct unordered pairs compared."""
        return len(self._seen)

    def __call__(self, u: int, v: int) -> Preference:
        self.calls += 1
        self._seen.add((u, v) if u < v else (v, u))
        return self._inner(u, v)

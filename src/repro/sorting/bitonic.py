"""Bitonic sorting network with a pluggable ternary comparator.

§3 of the paper names bitonic sort (Cormen et al. [3]) alongside
tournament sort as a crowd-sorting baseline. A bitonic network is
*oblivious*: the comparison schedule is fixed in advance, independent of
answers, so each stage's comparisons are mutually independent and can be
asked to the crowd in one round — ``O(log² n)`` rounds total, at the
price of ``O(n log² n)`` comparisons (more than the tournament's
``O(n log n)``). The classic latency/cost trade-off of §2.1.

:func:`bitonic_schedule` exposes the raw stage structure so callers can
batch each stage as a crowd round; :func:`bitonic_sort` runs the network
against a comparator directly.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

from repro.questions import Preference

Comparator = Callable[[int, int], Preference]


def _next_power_of_two(n: int) -> int:
    size = 1
    while size < n:
        size *= 2
    return size


def bitonic_schedule(n: int) -> List[List[Tuple[int, int]]]:
    """The comparison stages of a bitonic network over ``n`` slots.

    Returns a list of stages; each stage is a list of slot-index pairs
    ``(i, j)`` with ``i < j`` that compare-and-swap concurrently. Padding
    slots (``>= n``) are included — callers with ragged inputs should
    treat them as "always loses".
    """
    size = _next_power_of_two(n)
    stages: List[List[Tuple[int, int]]] = []
    k = 2
    while k <= size:
        j = k // 2
        while j >= 1:
            stage = []
            for i in range(size):
                partner = i ^ j
                if partner > i:
                    ascending = (i & k) == 0
                    stage.append((i, partner) if ascending
                                 else (partner, i))
            stages.append(stage)
            j //= 2
        k *= 2
    return stages


def bitonic_sort(
    items: Sequence[int],
    compare: Comparator,
    on_stage: Callable[[List[Tuple[int, int]]], None] = None,
) -> List[int]:
    """Sort ``items`` most-preferred-first through a bitonic network.

    Parameters
    ----------
    items:
        Item identifiers (typically tuple indices).
    compare:
        Ternary comparator; ``LEFT`` means the first argument is
        preferred. ``EQUAL`` keeps the current arrangement.
    on_stage:
        Optional callback invoked once per network stage with the item
        pairs actually compared — used by the crowd baseline to count
        one *round* per stage.
    """
    items = list(items)
    n = len(items)
    if n <= 1:
        return items
    size = _next_power_of_two(n)
    # Slots beyond n hold None (treated as least preferred).
    slots: List[int] = items + [None] * (size - n)

    for stage in bitonic_schedule(n):
        live: List[Tuple[int, int, int, int]] = []
        swaps = []
        for lo, hi in stage:
            a, b = slots[lo], slots[hi]
            if a is None and b is None:
                continue
            if a is None:
                swaps.append((lo, hi))  # padding sinks below real items
                continue
            if b is None:
                continue
            live.append((lo, hi, a, b))
        # Announce the stage first so a crowd-backed comparator can batch
        # all of its questions into a single round.
        if on_stage is not None and live:
            on_stage([(a, b) for _, _, a, b in live])
        for lo, hi, a, b in live:
            if compare(a, b) is Preference.RIGHT:
                swaps.append((lo, hi))
        for lo, hi in swaps:
            slots[lo], slots[hi] = slots[hi], slots[lo]
    return [item for item in slots if item is not None]

"""Content-addressed result cache for incremental lint runs.

The full check is fast (~1.5s repo-wide) but a pre-commit hook wants
*instant*. This cache keys derived results by **content hash** so an
incremental run re-computes only what an edit could have changed:

* per-file: the module-rule findings of one file, keyed by the sha256
  of its bytes — an untouched file's findings are served from disk;
* per-tree: the project-rule findings (layering, obs-schema,
  cache-purity and the interprocedural family), keyed by the combined
  hash of *every* file — any edit anywhere invalidates them, because a
  cross-module rule's verdict can change when any module changes.

Both keys also fold in a **rules fingerprint** — the sha256 of the
analysis package's own sources plus the configuration — so upgrading
the linter or editing a rule never serves stale verdicts. Entries are
plain JSON, written atomically; the cache is safe to delete at any
time (``repro-analysis check --no-cache`` bypasses it entirely).

An earlier design cached pickled ASTs instead; measurement killed it —
un-pickling a parsed tree is *slower* than re-parsing the source
(0.27s vs 0.18s repo-wide), so the cache stores only derived findings
and lets ``ast.parse`` be the cheap part it already is.

Location: ``$REPRO_ANALYSIS_CACHE_DIR`` or
``~/.cache/crowdsky/analysis``.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.io.atomic import atomic_write_text

#: Cache-entry format version; bump on layout changes.
CACHE_VERSION = 1


def default_cache_dir() -> Path:
    """Resolve the cache directory (env override, else XDG-ish)."""
    override = os.environ.get("REPRO_ANALYSIS_CACHE_DIR")
    if override:
        return Path(override)
    return Path.home() / ".cache" / "crowdsky" / "analysis"


def _finding_from_json(raw: Dict) -> Finding:
    return Finding(
        code=raw["code"],
        path=raw["path"],
        line=raw["line"],
        col=raw["col"],
        message=raw["message"],
        severity=raw.get("severity", "error"),
        context=raw.get("context", ""),
        family=raw.get("family", ""),
    )


def _config_digest(config: AnalysisConfig) -> str:
    """Deterministic serialization of the config.

    ``repr(config)`` would be the obvious choice, but the layers table
    holds frozensets whose repr order is salted per process — the
    linter's own RA003 lesson. Sort everything instead.
    """
    from dataclasses import fields

    payload = {}
    for spec in fields(config):
        value = getattr(config, spec.name)
        if isinstance(value, dict):
            value = {
                key: sorted(members)
                for key, members in sorted(value.items())
            }
        elif isinstance(value, (tuple, frozenset, set)):
            value = sorted(value)
        payload[spec.name] = value
    return json.dumps(payload, sort_keys=True)


def rules_fingerprint(config: AnalysisConfig) -> str:
    """sha256 over the analysis package's sources + the config.

    Any edit to a rule, the engine, the call graph or the scoping
    configuration changes the fingerprint and invalidates every cache
    entry — the linter can never serve verdicts computed by an older
    version of itself.
    """
    digest = hashlib.sha256()
    package_dir = Path(__file__).resolve().parent
    for source in sorted(package_dir.rglob("*.py")):
        digest.update(source.name.encode())
        digest.update(source.read_bytes())
    digest.update(_config_digest(config).encode())
    digest.update(str(CACHE_VERSION).encode())
    return digest.hexdigest()[:24]


class AnalysisCache:
    """Findings keyed by content hash, stored as JSON files."""

    def __init__(
        self,
        root: Optional[Path] = None,
        config: Optional[AnalysisConfig] = None,
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.config = config or AnalysisConfig()
        self._fingerprint: Optional[str] = None
        self.hits = 0
        self.misses = 0

    @property
    def fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = rules_fingerprint(self.config)
        return self._fingerprint

    # -- keys ----------------------------------------------------------------

    @staticmethod
    def content_hash(data: bytes) -> str:
        return hashlib.sha256(data).hexdigest()[:24]

    def module_key(
        self, name: str, content: str, select_key: str
    ) -> str:
        """Keyed by module *name* and content: the scoped rules
        (deterministic packages, persistence modules) answer
        differently for the same bytes under a different name."""
        digest = hashlib.sha256()
        digest.update(name.encode())
        digest.update(content.encode("utf-8"))
        return (
            f"mod-{self.fingerprint}-"
            f"{digest.hexdigest()[:24]}-{select_key}"
        )

    def tree_key(
        self, hashes: Sequence[Tuple[str, str]], select_key: str
    ) -> str:
        """Key over the whole scanned tree: ``(module name, content
        hash)`` pairs in sorted order."""
        digest = hashlib.sha256()
        for name, body in sorted(hashes):
            digest.update(name.encode())
            digest.update(body.encode())
        return (
            f"proj-{self.fingerprint}-"
            f"{digest.hexdigest()[:24]}-{select_key}"
        )

    # -- storage -------------------------------------------------------------

    def _path_for(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> Optional[List[Finding]]:
        path = self._path_for(key)
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            self.misses += 1
            return None
        if raw.get("version") != CACHE_VERSION:
            self.misses += 1
            return None
        self.hits += 1
        return [_finding_from_json(f) for f in raw.get("findings", [])]

    def put(self, key: str, findings: Iterable[Finding]) -> None:
        path = self._path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_text(
                path,
                json.dumps({
                    "version": CACHE_VERSION,
                    "findings": [f.to_json() for f in findings],
                }),
            )
        except OSError:
            # A read-only or full cache dir degrades to cache-off; the
            # check itself must never fail because of the cache.
            return


def analyze_paths_cached(
    paths: Sequence,
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
    cache: Optional[AnalysisCache] = None,
):
    """Cache-aware variant of :func:`repro.analysis.engine.
    analyze_paths`.

    Returns ``(findings, problems, cache)``. Per-file module-rule
    findings are served from the cache when the file's bytes are
    unchanged; project-rule findings are served whole when *nothing*
    changed. Output is identical to the uncached engine (the cached
    entries were produced by it).
    """
    from repro.analysis.engine import apply_suppressions, load_paths
    from repro.analysis.rules import ModuleRule, ProjectRule, all_rules

    config = config or AnalysisConfig()
    cache = cache or AnalysisCache(config=config)
    wanted = {code.upper() for code in select} if select else None
    select_key = (
        "-".join(sorted(wanted)) if wanted is not None else "all"
    )

    modules, problems = load_paths(paths)
    hashes = [
        (m.name, cache.content_hash(m.source.encode("utf-8")))
        for m in modules
    ]

    findings: List[Finding] = []

    # project rules: all-or-nothing on the tree hash
    tree_key = cache.tree_key(hashes, select_key)
    project_findings = cache.get(tree_key)
    if project_findings is None:
        project_findings = []
        for rule in all_rules():
            if wanted is not None and rule.code not in wanted:
                continue
            if isinstance(rule, ProjectRule):
                project_findings.extend(
                    rule.check_project(modules, config)
                )
        if wanted is not None:
            project_findings = [
                f for f in project_findings if f.code in wanted
            ]
        project_findings = apply_suppressions(
            project_findings, modules
        )
        cache.put(tree_key, project_findings)
    findings.extend(project_findings)

    # module rules: per-file
    module_rules = [
        rule for rule in all_rules()
        if isinstance(rule, ModuleRule)
        and (wanted is None or rule.code in wanted)
    ]
    for module in modules:
        key = cache.module_key(module.name, module.source, select_key)
        cached = cache.get(key)
        if cached is not None:
            # the cache stores repo-relative findings; re-anchor to
            # the path this invocation used
            findings.extend(
                Finding(**{**f.to_json(), "path": module.path})
                for f in cached
            )
            continue
        module_findings: List[Finding] = []
        for rule in module_rules:
            module_findings.extend(
                rule.check_module(module, config)
            )
        module_findings = apply_suppressions(
            module_findings, [module]
        )
        cache.put(key, module_findings)
        findings.extend(module_findings)

    return sorted(findings, key=Finding.sort_key), problems, cache

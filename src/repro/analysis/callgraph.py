"""Project-wide call graph over the scanned module tree.

The module-local rules (RA001-RA012) see one function at a time; the
interprocedural rules (RA013-RA016) need to know *what calls what*
across module boundaries. This builder derives, from the same parsed
:class:`~repro.analysis.engine.SourceModule` set the rest of the linter
uses (no imports, no execution):

* every function definition — module-level functions, methods on named
  classes, and nested functions (qualnames use the runtime's
  ``outer.<locals>.inner`` spelling);
* call edges between them, resolved through import aliases
  (``from repro.core.engine import run_crowdsky``), dotted attribute
  chains (``sweep.run_cells``), ``self.method()`` dispatch within a
  class, simple local aliases (``worker = a if flag else b``), and the
  sweep engine's ``"module:function"`` runner strings;
* per-function *summaries* of the sink facts the interprocedural rules
  propagate: wall-clock reads, unseeded/global RNG use, environment
  reads, and truncating writes.

Resolution is deliberately conservative: an edge exists only when the
target is statically identifiable, and anything dynamic (``getattr``,
computed names, star imports) simply contributes no edge. The
interprocedural rules are therefore best-effort in the same way the
module-local rules are — they can miss, but what they report is real.

Module-level statements (the import-time code of a module) are modelled
as a pseudo-function with qualname ``<module>`` so taint entering at
import time is still walkable.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.rules.base import resolved_name
from repro.analysis.rules.determinism import (
    NUMPY_SEEDED_CONSTRUCTORS,
    WALL_CLOCK_CALLS,
    UnseededRandomRule,
)
from repro.analysis.rules.persistence import (
    OPEN_CALLS,
    TRUNCATING_METHODS,
    _open_mode,
)
from repro.analysis.rules.purity import ENV_READS, RUNNER_RE
from repro.analysis.rules.base import literal_str, literal_strs

#: Qualname of the pseudo-function holding module-level statements.
MODULE_BODY = "<module>"

#: A function's identity inside the graph.
FunctionKey = Tuple[str, str]  # (module name, qualname)


@dataclass
class FunctionInfo:
    """One definition site (function, method, nested function)."""

    module: str
    qualname: str
    node: Optional[ast.AST]  # None for the <module> pseudo-function

    @property
    def key(self) -> FunctionKey:
        return (self.module, self.qualname)

    @property
    def dotted(self) -> str:
        return f"{self.module}.{self.qualname}"

    @property
    def is_nested(self) -> bool:
        return ".<locals>." in self.qualname

    @property
    def is_method(self) -> bool:
        return (
            "." in self.qualname
            and not self.is_nested
            and self.qualname != MODULE_BODY
        )

    @property
    def is_module_level(self) -> bool:
        """A plain ``def`` at module scope — picklable by reference."""
        return (
            "." not in self.qualname and self.qualname != MODULE_BODY
        )


@dataclass
class CallEdge:
    """``caller`` reaches ``callee`` at ``node``.

    ``kind`` records how the edge was established: a direct ``call``, a
    sweep ``runner`` string, or a pool ``submit`` argument.
    """

    caller: FunctionKey
    callee: FunctionKey
    node: ast.AST
    kind: str = "call"


@dataclass
class Sink:
    """A nondeterminism/persistence fact local to one function."""

    kind: str  # wall_clock | unseeded_rng | env_read | truncating_write
    node: ast.AST
    detail: str


@dataclass
class SubmitSite:
    """A ``pool.submit(worker, ...)``-shaped call.

    ``targets`` holds every function the worker argument may resolve
    to; ``unresolved`` is a human-readable reason when it resolves to
    nothing checkable (lambda, computed expression, ...).
    """

    module: str
    caller: FunctionKey
    node: ast.Call
    arg: Optional[ast.expr]
    targets: List[FunctionKey] = field(default_factory=list)
    unresolved: Optional[str] = None


@dataclass
class RunnerRef:
    """A ``"module:function"`` literal and where it points."""

    module: str
    caller: FunctionKey
    node: ast.AST
    target_module: str
    target_func: str
    target: Optional[FunctionKey] = None


class CallGraph:
    """The graph plus the per-function summaries rules consume."""

    def __init__(self) -> None:
        self.functions: Dict[FunctionKey, FunctionInfo] = {}
        self.edges: Dict[FunctionKey, List[CallEdge]] = {}
        self.sinks: Dict[FunctionKey, List[Sink]] = {}
        self.submit_sites: List[SubmitSite] = []
        self.runner_refs: List[RunnerRef] = []
        self._by_dotted: Dict[str, FunctionKey] = {}
        self._module_names: Set[str] = set()

    # -- lookups -------------------------------------------------------------

    def function(self, key: FunctionKey) -> Optional[FunctionInfo]:
        return self.functions.get(key)

    def callees(self, key: FunctionKey) -> List[CallEdge]:
        return self.edges.get(key, [])

    def sinks_of(self, key: FunctionKey) -> List[Sink]:
        return self.sinks.get(key, [])

    def resolve_dotted(self, dotted: str) -> Optional[FunctionKey]:
        """``repro.core.engine.Engine.run`` -> its function key."""
        return self._by_dotted.get(dotted)

    def functions_in(self, module: str) -> Iterator[FunctionInfo]:
        for info in self.functions.values():
            if info.module == module:
                yield info

    # -- reachability --------------------------------------------------------

    def walk_paths(
        self,
        start: FunctionKey,
        skip_module=None,
    ) -> Iterator[Tuple[List[CallEdge], FunctionKey]]:
        """BFS over call edges from ``start``.

        Yields ``(path, reached)`` for every function reachable from
        ``start`` — ``path`` is the edge list leading there (shortest
        first, deterministic order). ``skip_module`` is a predicate on
        dotted module names; edges *into* skipped modules are not
        followed (and not yielded).
        """
        seen: Set[FunctionKey] = {start}
        frontier: List[Tuple[FunctionKey, List[CallEdge]]] = [(start, [])]
        while frontier:
            next_frontier: List[Tuple[FunctionKey, List[CallEdge]]] = []
            for key, path in frontier:
                for edge in self.callees(key):
                    target = edge.callee
                    if target in seen:
                        continue
                    if skip_module is not None and skip_module(target[0]):
                        continue
                    seen.add(target)
                    new_path = path + [edge]
                    yield new_path, target
                    next_frontier.append((target, new_path))
            frontier = next_frontier

    def reachable(
        self, start: FunctionKey, skip_module=None
    ) -> Set[FunctionKey]:
        """Every function reachable from ``start`` (excl. ``start``)."""
        return {
            key for _, key in self.walk_paths(start, skip_module)
        }

    # -- construction --------------------------------------------------------

    @classmethod
    def build(
        cls,
        modules: Sequence,
        config: Optional[AnalysisConfig] = None,
    ) -> "CallGraph":
        config = config or AnalysisConfig()
        graph = cls()
        graph._module_names = {module.name for module in modules}
        builders = [_ModuleIndex(module) for module in modules]
        for index in builders:
            for info in index.functions:
                graph.functions[info.key] = info
                graph._by_dotted[info.dotted] = info.key
        for index in builders:
            index.link(graph, config)
        return graph


# -- per-module indexing -----------------------------------------------------


class _ModuleIndex:
    """One module's contribution to the graph, built in two passes.

    Pass one (``__init__``) inventories definitions; pass two
    (:meth:`link`) resolves call/runner/submit edges against the full
    project inventory and records sink summaries.
    """

    def __init__(self, module) -> None:
        self.module = module
        self.functions: List[FunctionInfo] = [
            FunctionInfo(module.name, MODULE_BODY, None)
        ]
        #: innermost owning function for every statement/expression node
        self.owner: Dict[ast.AST, str] = {}
        #: top-level ``name -> qualname`` for functions and classes
        self.toplevel: Dict[str, str] = {}
        self._collect(module.tree, scope=[], class_depth=0)

    def _collect(
        self, node: ast.AST, scope: List[str], class_depth: int
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                qual = self._qualname(scope, child.name)
                self.functions.append(
                    FunctionInfo(self.module.name, qual, child)
                )
                if not scope:
                    self.toplevel[child.name] = qual
                self._stamp(child, qual)
                inner = scope + [child.name, "<locals>"]
                self._collect(child, inner, class_depth)
            elif isinstance(child, ast.ClassDef):
                if not scope:
                    self.toplevel[child.name] = child.name
                self._collect(
                    child, scope + [child.name], class_depth + 1
                )
            else:
                self._collect(child, scope, class_depth)

    @staticmethod
    def _qualname(scope: List[str], name: str) -> str:
        return ".".join(scope + [name]) if scope else name

    def _stamp(self, func: ast.AST, qual: str) -> None:
        """Mark every node directly inside ``func`` (not inside a
        nested def) as owned by ``qual``."""
        stack = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(
                node,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
            ):
                # decorators/defaults evaluate in the enclosing scope
                if isinstance(node, ast.Lambda):
                    continue
                for dec in node.decorator_list:
                    self.owner[dec] = qual
                    stack.extend(ast.walk(dec))
                continue
            self.owner[node] = qual
            stack.extend(ast.iter_child_nodes(node))

    def owner_key(self, node: ast.AST) -> FunctionKey:
        return (self.module.name, self.owner.get(node, MODULE_BODY))

    # -- pass two ------------------------------------------------------------

    def link(self, graph: CallGraph, config: AnalysisConfig) -> None:
        module = self.module
        imports = module.imports
        aliases = self._local_aliases()
        rng_rule = UnseededRandomRule()

        for node in module.walk():
            caller = self.owner_key(node)
            if isinstance(node, ast.Call):
                self._link_call(graph, config, node, caller, imports, aliases)
                self._record_call_sinks(graph, node, caller, imports, rng_rule)
            elif isinstance(node, (ast.Attribute, ast.Name)):
                name = resolved_name(node, imports)
                if name in ENV_READS:
                    graph.sinks.setdefault(caller, []).append(
                        Sink("env_read", node, name)
                    )
            value = literal_str(node)
            if value is not None:
                match = RUNNER_RE.match(value)
                if match and match.group("module").startswith(
                    config.runner_prefix
                ):
                    self._link_runner(
                        graph, node, caller,
                        match.group("module"), match.group("func"),
                    )

    def _link_call(
        self, graph, config, node: ast.Call, caller, imports, aliases
    ) -> None:
        # pool.submit(worker, ...): the first argument is the callable
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
        ):
            self._link_submit(graph, node, caller, imports, aliases)
        targets = self._resolve_callable(
            graph, node.func, caller, imports, aliases
        )
        for target in targets:
            graph.edges.setdefault(caller, []).append(
                CallEdge(caller, target, node)
            )

    def _link_submit(
        self, graph, node: ast.Call, caller, imports, aliases
    ) -> None:
        site = SubmitSite(
            module=self.module.name,
            caller=caller,
            node=node,
            arg=node.args[0] if node.args else None,
        )
        if site.arg is None:
            site.unresolved = "no positional callable argument"
        elif isinstance(site.arg, ast.Lambda):
            site.unresolved = "lambda (unpicklable by reference)"
        else:
            targets = self._resolve_callable(
                graph, site.arg, caller, imports, aliases
            )
            if targets:
                site.targets = targets
                for target in targets:
                    graph.edges.setdefault(caller, []).append(
                        CallEdge(caller, target, node, kind="submit")
                    )
            else:
                site.unresolved = (
                    "does not resolve to a project function"
                )
        graph.submit_sites.append(site)

    def _link_runner(
        self, graph, node, caller, target_module: str, target_func: str
    ) -> None:
        ref = RunnerRef(
            module=self.module.name,
            caller=caller,
            node=node,
            target_module=target_module,
            target_func=target_func,
        )
        key = graph.resolve_dotted(f"{target_module}.{target_func}")
        if key is None:
            # the runtime spelling for a nested def, should one appear
            for info in graph.functions_in(target_module):
                if info.qualname.endswith(f"<locals>.{target_func}"):
                    key = info.key
                    break
        if key is not None:
            ref.target = key
            graph.edges.setdefault(caller, []).append(
                CallEdge(caller, key, node, kind="runner")
            )
        graph.runner_refs.append(ref)

    def _resolve_callable(
        self, graph, expr: ast.expr, caller, imports, aliases
    ) -> List[FunctionKey]:
        """Every project function ``expr`` may statically refer to."""
        if isinstance(expr, ast.IfExp):
            return self._resolve_callable(
                graph, expr.body, caller, imports, aliases
            ) + self._resolve_callable(
                graph, expr.orelse, caller, imports, aliases
            )
        if isinstance(expr, ast.Name) and expr.id in aliases:
            out: List[FunctionKey] = []
            for alias_expr in aliases[expr.id]:
                out.extend(
                    self._resolve_callable(
                        graph, alias_expr, caller, imports, aliases={}
                    )
                )
            if out:
                return out
        dotted = resolved_name(expr, imports)
        if dotted is None:
            return []
        # self.method() -> method on the enclosing class
        if dotted.startswith("self."):
            qual = caller[1]
            if "." in qual and qual != MODULE_BODY:
                cls_name = qual.split(".")[0]
                candidate = graph.resolve_dotted(
                    f"{self.module.name}.{cls_name}.{dotted[5:]}"
                )
                return [candidate] if candidate else []
            return []
        # a bare name may be a def nested in the calling function
        # (qualname spelling: caller.<locals>.name)
        if "." not in dotted and caller[1] != MODULE_BODY:
            candidate = graph.resolve_dotted(
                f"{self.module.name}.{caller[1]}.<locals>.{dotted}"
            )
            if candidate is not None:
                return [candidate]
        # bare or locally-defined name in this module
        head = dotted.partition(".")[0]
        if head in self.toplevel:
            candidate = graph.resolve_dotted(
                f"{self.module.name}.{dotted}"
            )
            return [candidate] if candidate else []
        # fully-qualified project reference through imports
        key = graph.resolve_dotted(dotted)
        return [key] if key else []

    def _local_aliases(self) -> Dict[str, List[ast.expr]]:
        """``name -> possible callable expressions`` for simple local
        assignments (``worker = a if flag else b``). Names reassigned
        non-trivially are dropped rather than guessed at."""
        candidates: Dict[str, List[ast.expr]] = {}
        dropped: Set[str] = set()
        for node in self.module.walk():
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if not isinstance(target, ast.Name):
                    continue
                value = node.value
                exprs: List[ast.expr] = []
                if isinstance(value, ast.IfExp):
                    exprs = [value.body, value.orelse]
                elif isinstance(value, (ast.Name, ast.Attribute)):
                    exprs = [value]
                if exprs and all(
                    isinstance(e, (ast.Name, ast.Attribute))
                    for e in exprs
                ):
                    candidates.setdefault(target.id, []).extend(exprs)
                else:
                    dropped.add(target.id)
        return {
            name: exprs
            for name, exprs in candidates.items()
            if name not in dropped
        }

    def _record_call_sinks(
        self, graph, node: ast.Call, caller, imports, rng_rule
    ) -> None:
        from repro.analysis.rules.base import call_name

        name = call_name(node, imports)
        sinks = graph.sinks
        if name in WALL_CLOCK_CALLS:
            sinks.setdefault(caller, []).append(
                Sink("wall_clock", node, name)
            )
        elif name is not None:
            if (
                name in NUMPY_SEEDED_CONSTRUCTORS
                or name == "random.Random"
            ):
                if rng_rule._unseeded(node):
                    sinks.setdefault(caller, []).append(
                        Sink("unseeded_rng", node, name)
                    )
            elif (
                name.startswith("random.") and name.count(".") == 1
            ) or name.startswith("numpy.random."):
                sinks.setdefault(caller, []).append(
                    Sink("unseeded_rng", node, name)
                )
            if name in ENV_READS:
                sinks.setdefault(caller, []).append(
                    Sink("env_read", node, name)
                )
            if name in OPEN_CALLS:
                mode_node = _open_mode(node)
                if mode_node is not None:
                    for mode in literal_strs(mode_node):
                        if "w" in mode or "x" in mode:
                            sinks.setdefault(caller, []).append(
                                Sink(
                                    "truncating_write", node,
                                    f"open(..., {mode!r})",
                                )
                            )
                            break
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in TRUNCATING_METHODS
        ):
            sinks.setdefault(caller, []).append(
                Sink(
                    "truncating_write", node,
                    f".{node.func.attr}()",
                )
            )

"""``repro.analysis`` — AST-based invariant linter for this codebase.

The reproduction's correctness contracts — byte-identical
parallel/serial sweeps, a content-addressed result cache, a validated
trace schema, a strict package DAG — are runtime guarantees that
nothing enforced *statically* until now. This package is a
stdlib-``ast`` linter with project-specific rules grouped into five
families (see :mod:`repro.analysis.rules` for the full table):

* **determinism** (RA001-RA003) — no wall clocks, no unseeded
  randomness, no set-ordering hazards in ``repro.core`` /
  ``repro.crowd`` / ``repro.experiments``;
* **layering** (RA004) — the package import DAG; nothing imports
  ``repro.experiments`` back and ``repro.obs`` stays a leaf;
* **obs-schema** (RA005-RA007) — emitted trace-event names and the
  ``EVENT_ATTRS`` registry agree in both directions; metric names come
  from the canonical constants;
* **cache-purity** (RA008-RA009) — sweep cell runners resolve to
  module-level, environment-free functions without mutable defaults;
* **exception hygiene** (RA010-RA011) — no bare or silent ``except``.

Findings can be suppressed inline (``# repro: noqa RA003 -
rationale``) or grandfathered in the committed baseline
(``analysis-baseline.json``); the ``check`` gate fails on anything
else, keeping the tree self-clean. The package imports nothing from
the rest of ``repro`` and never executes analyzed code.

Usage::

    python -m repro.analysis check src/          # or `make lint`
    python -m repro.analysis rules
    python -m repro.analysis baseline src/ --write

Programmatic::

    from repro.analysis import analyze_paths
    findings, problems = analyze_paths(["src"])
"""

from repro.analysis.baseline import (
    BaselineEntry,
    apply_baseline,
    entries_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import (
    SourceModule,
    analyze_modules,
    analyze_paths,
    load_paths,
)
from repro.analysis.findings import Finding
from repro.analysis.rules import all_rules, get_rule

__all__ = [
    "AnalysisConfig",
    "BaselineEntry",
    "Finding",
    "SourceModule",
    "all_rules",
    "analyze_modules",
    "analyze_paths",
    "apply_baseline",
    "entries_from_findings",
    "get_rule",
    "load_baseline",
    "load_paths",
    "save_baseline",
]

"""Analysis engine: load modules, run rules, apply suppressions.

The engine is deliberately import-free with respect to the code under
analysis — everything is derived from source text via :mod:`ast`, so
the linter can check trees that are not importable in the current
process (fixtures, other checkouts) and can never execute project
code.

Suppression syntax: a finding is suppressed when the physical line it
points at (or the first line of its enclosing statement) carries a
``# repro: noqa`` comment — bare (suppress every code on that line) or
with codes, e.g. ``# repro: noqa RA003,RA011 - rationale``.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Union

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules import ModuleRule, ProjectRule, all_rules

#: Matches a suppression comment anywhere in a line's comment trailer.
NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?P<codes>(?:\s+RA\d{3}(?:\s*,\s*RA\d{3})*)?)",
    re.IGNORECASE,
)


@dataclass
class SourceModule:
    """One parsed module of the tree under analysis.

    Parsing happens exactly once per file; everything every rule family
    needs from the tree afterwards — the flat node list with parent
    links, the import map, the call sites, the statement-extent index —
    is derived once on first use and shared across rules. Before this
    sharing, each of the six rule families re-walked the tree and
    re-derived the import map per module (docs/static-analysis.md has
    the before/after numbers).
    """

    name: str
    path: str
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    _nodes: Optional[List[ast.AST]] = field(
        default=None, repr=False, compare=False
    )
    _imports: Optional[Dict[str, str]] = field(
        default=None, repr=False, compare=False
    )
    _calls: Optional[List[ast.Call]] = field(
        default=None, repr=False, compare=False
    )
    _statements: Optional[List["tuple[int, int]"]] = field(
        default=None, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.source.splitlines()

    def line_at(self, lineno: int) -> str:
        """The stripped source line (1-based); '' out of range."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""

    def walk(self) -> List[ast.AST]:
        """Every node of the tree, in ``ast.walk`` order, with parent
        links stamped (``rules.base.parent_of``). Computed once."""
        if self._nodes is None:
            nodes: List[ast.AST] = []
            for node in ast.walk(self.tree):
                nodes.append(node)
                for child in ast.iter_child_nodes(node):
                    child._repro_parent = node  # type: ignore[attr-defined]
            self._nodes = nodes
        return self._nodes

    @property
    def imports(self) -> Dict[str, str]:
        """Alias -> dotted-origin import map, derived once."""
        if self._imports is None:
            from repro.analysis.rules.base import import_map

            self._imports = import_map(self.walk())
        return self._imports

    def calls(self) -> List[ast.Call]:
        """Every ``ast.Call`` node of the module, derived once."""
        if self._calls is None:
            self._calls = [
                node for node in self.walk() if isinstance(node, ast.Call)
            ]
        return self._calls

    def statement_start(self, lineno: int) -> Optional[int]:
        """First line of the innermost statement containing ``lineno``.

        Backs noqa-suppression scoping (a noqa on ``except OSError:``
        covers the handler body); the statement-extent index is built
        once per module instead of re-walking the tree per finding.
        """
        if self._statements is None:
            spans = []
            for node in self.walk():
                if not isinstance(node, (ast.stmt, ast.excepthandler)):
                    continue
                start = getattr(node, "lineno", None)
                end = getattr(node, "end_lineno", None)
                if start is not None and end is not None:
                    spans.append((start, end))
            self._statements = spans
        best: Optional[int] = None
        for start, end in self._statements:
            if start <= lineno <= end and (best is None or start > best):
                best = start
        return best

    @staticmethod
    def parse(
        name: str, source: str, path: str = "<string>"
    ) -> "SourceModule":
        """Parse source text into an analyzable module."""
        return SourceModule(
            name=name, path=path, source=source,
            tree=ast.parse(source),
        )


@dataclass
class SyntaxProblem:
    """A file that could not be parsed (reported, never fatal)."""

    path: str
    message: str


def module_name_for(path: Path) -> str:
    """Dotted module name of a file, walking ``__init__.py`` packages.

    ``src/repro/core/engine.py`` -> ``repro.core.engine``;
    a stray file outside any package maps to its bare stem.
    """
    path = path.resolve()
    parts = [path.stem] if path.stem != "__init__" else []
    current = path.parent
    while (current / "__init__.py").exists():
        parts.append(current.name)
        parent = current.parent
        if parent == current:
            break
        current = parent
    if not parts:
        return path.stem
    return ".".join(reversed(parts))


def load_paths(
    paths: Sequence[Union[str, Path]],
) -> "tuple[List[SourceModule], List[SyntaxProblem]]":
    """Collect and parse every ``.py`` file under the given paths.

    Files are discovered in sorted order (the linter obeys its own
    ordering rule). Unparseable files become :class:`SyntaxProblem`
    records instead of aborting the run.
    """
    files: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    modules: List[SourceModule] = []
    problems: List[SyntaxProblem] = []
    seen: Set[Path] = set()
    for file in files:
        resolved = file.resolve()
        if resolved in seen:
            continue
        seen.add(resolved)
        try:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
        except (OSError, SyntaxError, ValueError) as error:
            problems.append(SyntaxProblem(str(file), str(error)))
            continue
        modules.append(
            SourceModule(
                name=module_name_for(file),
                path=str(file),
                source=source,
                tree=tree,
            )
        )
    return modules, problems


# -- suppression -------------------------------------------------------------


def _suppressions(module: SourceModule) -> Dict[int, Optional[Set[str]]]:
    """``{line: codes-or-None}``; ``None`` means every code."""
    out: Dict[int, Optional[Set[str]]] = {}
    for number, line in enumerate(module.lines, start=1):
        if "#" not in line:
            continue
        match = NOQA_RE.search(line)
        if not match:
            continue
        codes = match.group("codes").strip()
        if codes:
            out[number] = {
                code.strip().upper()
                for code in re.split(r"[,\s]+", codes)
                if code.strip()
            }
        else:
            out[number] = None
    return out


def _statement_lines(module: SourceModule, lineno: int) -> Set[int]:
    """Lines a finding at ``lineno`` may be suppressed from: its own
    line plus the first line of the innermost statement containing it
    (so a noqa on ``except OSError:`` covers the handler body)."""
    lines = {lineno}
    start = module.statement_start(lineno)
    if start is not None:
        lines.add(start)
    return lines


def apply_suppressions(
    findings: Iterable[Finding], modules: List[SourceModule]
) -> List[Finding]:
    """Drop findings covered by an inline ``# repro: noqa`` comment."""
    by_path = {module.path: module for module in modules}
    kept: List[Finding] = []
    cache: Dict[str, Dict[int, Optional[Set[str]]]] = {}
    for finding in findings:
        module = by_path.get(finding.path)
        if module is None:
            kept.append(finding)
            continue
        if finding.path not in cache:
            cache[finding.path] = _suppressions(module)
        table = cache[finding.path]
        suppressed = False
        if table:
            for line in _statement_lines(module, finding.line):
                if line in table:
                    codes = table[line]
                    if codes is None or finding.code in codes:
                        suppressed = True
                        break
        if not suppressed:
            kept.append(finding)
    return kept


# -- analysis ----------------------------------------------------------------


def analyze_modules(
    modules: List[SourceModule],
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run every (selected) rule over parsed modules; suppressions
    applied; findings sorted by location."""
    config = config or AnalysisConfig()
    wanted = {code.upper() for code in select} if select else None
    findings: List[Finding] = []
    for rule in all_rules():
        if wanted is not None and rule.code not in wanted:
            continue
        if isinstance(rule, ModuleRule):
            for module in modules:
                findings.extend(rule.check_module(module, config))
        elif isinstance(rule, ProjectRule):
            findings.extend(rule.check_project(modules, config))
    if wanted is not None:
        # Rules sharing one pass (RA005/RA006) may emit under a code
        # other than their own; honor the selection on findings too.
        findings = [f for f in findings if f.code in wanted]
    findings = apply_suppressions(findings, modules)
    return sorted(findings, key=Finding.sort_key)


def analyze_paths(
    paths: Sequence[Union[str, Path]],
    config: Optional[AnalysisConfig] = None,
    select: Optional[Iterable[str]] = None,
) -> "tuple[List[Finding], List[SyntaxProblem]]":
    """Load ``.py`` files under ``paths`` and analyze them."""
    modules, problems = load_paths(paths)
    return analyze_modules(modules, config, select), problems

"""Finding model for the invariant linter.

A :class:`Finding` is one rule violation at one source location. The
tuple ``(path, line, col, code)`` identifies it for sorting and display;
``context`` — the stripped source line the finding points at — is what
the suppression baseline matches on, so baselined findings survive
unrelated line-number drift.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict

#: Finding severities, in increasing order of concern. Both fail the
#: ``check`` gate; the distinction is informational (warnings flag
#: contracts that are enforceable but advisory, e.g. a registered event
#: name nothing emits).
SEVERITY_WARNING = "warning"
SEVERITY_ERROR = "error"

SEVERITIES = (SEVERITY_WARNING, SEVERITY_ERROR)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one location."""

    code: str
    path: str
    line: int
    col: int
    message: str
    severity: str = SEVERITY_ERROR
    #: The stripped source line at ``line`` (baseline match key).
    context: str = ""
    #: Rule family slug (``determinism``, ``layering``, ...).
    family: str = ""

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def render(self) -> str:
        """One-line ``path:line:col: CODE [severity] message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.severity}] {self.message}"
        )

    def to_json(self) -> Dict[str, Any]:
        """JSON-able dict (the ``--format json`` finding shape)."""
        return {
            "code": self.code,
            "family": self.family,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "context": self.context,
        }

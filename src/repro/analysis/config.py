"""Project-specific configuration of the invariant linter.

The rules themselves are generic AST passes; everything that names this
codebase — which packages must be deterministic, the import DAG, where
the trace-event registry lives — is fixed here so tests can analyze
synthetic module trees under a custom configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Tuple

#: The enforced import DAG, as "top-level package -> packages it may
#: import from". This is the *actual* architecture of the codebase
#: (see docs/static-analysis.md for the diagram): the crowd platform is
#: a primitive that ``sorting``/``core`` orchestrate, ``experiments``
#: sits on top of everything, and nothing may import ``experiments``
#: back. ``obs`` is importable from anywhere but must itself stay a
#: leaf over ``exceptions`` and the ``io`` write helpers —
#: observability can never feed back into algorithm behaviour. The root package (``repro/__init__``) is
#: spelled ``""``; the bare ``import repro`` dependency is spelled
#: ``"repro"``.
DEFAULT_LAYERS: Dict[str, FrozenSet[str]] = {
    "exceptions": frozenset(),
    # The crowd-independent micro-task vocabulary (Preference and the
    # question formats): spoken by sorting, crowd, and core alike, so
    # it sits below all of them.
    "questions": frozenset({"exceptions"}),
    # Durable-write primitives (atomic replace + fsync): pure stdlib
    # over the filesystem, importable from any persistence path.
    "io": frozenset({"exceptions"}),
    # skyline gained obs when the sharded machine phase started emitting
    # shard.map/shard.merge spans and transfer counters; obs stays a
    # leaf, so this cannot feed back into algorithm behaviour.
    "skyline": frozenset({"exceptions", "obs"}),
    "data": frozenset({"exceptions"}),
    # obs additionally uses the durable-write helpers for its trace /
    # metrics exporters; io is itself a leaf over exceptions, so obs
    # still cannot feed back into algorithm behaviour.
    "obs": frozenset({"exceptions", "io"}),
    "incomplete": frozenset({"exceptions", "skyline", "data"}),
    "metrics": frozenset({"exceptions", "skyline", "data"}),
    "crowd": frozenset(
        {"exceptions", "questions", "io", "skyline", "data", "obs"}
    ),
    # sorting is a machine-side algorithm layer beside skyline/data; it
    # speaks the question vocabulary but never touches the crowd layer.
    "sorting": frozenset(
        {"exceptions", "questions", "skyline", "data", "obs"}
    ),
    "core": frozenset(
        {"exceptions", "questions", "io", "skyline", "data", "obs",
         "crowd", "sorting"}
    ),
    "query": frozenset(
        {"exceptions", "questions", "skyline", "data", "obs", "crowd",
         "sorting", "core"}
    ),
    # experiments may additionally reach the analysis tooling: the CLI
    # hosts `crowdsky --sanitize`, which wraps dispatch in the runtime
    # determinism sanitizer. The dependency is one-way — analysis
    # still imports nothing above io.
    "experiments": frozenset(
        {"exceptions", "questions", "io", "skyline", "data", "obs",
         "crowd", "sorting", "core", "query", "incomplete", "metrics",
         "analysis", "repro"}
    ),
    # The linter itself: pure stdlib plus the shared durable-write
    # helper for its own baseline persistence.
    "analysis": frozenset({"io"}),
    # repro/__init__ re-exports the public API but must not pull in the
    # experiment harness (or the linter) at import time.
    "": frozenset(
        {"exceptions", "questions", "io", "skyline", "data", "obs",
         "crowd", "sorting", "core", "query", "incomplete", "metrics"}
    ),
}


@dataclass(frozen=True)
class AnalysisConfig:
    """Knobs the rules consult; defaults describe this repository."""

    #: Root package name all scoped rules key off.
    root_package: str = "repro"

    #: Packages whose modules must be reproducible bit-for-bit: the
    #: determinism rules (RA001-RA003) only fire inside these.
    deterministic_packages: Tuple[str, ...] = (
        "repro.core",
        "repro.crowd",
        "repro.experiments",
    )

    #: Import DAG enforced by RA004 (top-level package -> allowed deps).
    layers: Dict[str, FrozenSet[str]] = field(
        default_factory=lambda: dict(DEFAULT_LAYERS)
    )

    #: Module holding the trace-event registry (``EVENT_ATTRS``).
    schema_module: str = "repro.obs.schema"
    #: Name of the registry mapping inside :attr:`schema_module`.
    schema_registry: str = "EVENT_ATTRS"
    #: Module fixing the canonical metric-name constants.
    metrics_module: str = "repro.obs.metrics"
    #: Prefix canonical metric names share.
    metric_prefix: str = "crowdsky_"

    #: Cell-runner strings (``"module:function"``) are checked when the
    #: module part starts with this prefix.
    runner_prefix: str = "repro."

    #: Modules that persist run artifacts across process lifetimes —
    #: RA012 bans truncating writes there in favour of the atomic
    #: helpers (:mod:`repro.io.atomic`) or append-only handles.
    persistence_modules: Tuple[str, ...] = (
        "repro.analysis.baseline",
        "repro.crowd.journal",
        "repro.experiments.bench",
        "repro.experiments.sweep",
        "repro.obs.exporters",
        "repro.obs.report",
    )

    #: Modules outside :attr:`deterministic_packages` that still carry
    #: a byte-identity promise, so RA003's ordering-hazard checks apply
    #: there too. The sharded skyline fan-out and the resume layer both
    #: postdate the original deterministic scoping.
    ordering_hazard_modules: Tuple[str, ...] = (
        "repro.skyline.sharded",
        "repro.core.resume",
    )

    #: Packages the RNG-taint walk (RA013) treats as out of scope even
    #: when called from deterministic code: the obs layer owns clocks
    #: by design, and the linter itself is never on a run path.
    taint_exempt_packages: Tuple[str, ...] = (
        "repro.obs",
        "repro.analysis",
    )

    #: Modules whose ``ProcessPoolExecutor`` submissions RA014 checks
    #: for transitive pickle-safety (module-level, closure-free,
    #: env-read-free callables).
    pool_modules: Tuple[str, ...] = (
        "repro.experiments.sweep",
        "repro.skyline.sharded",
    )

    #: Packages RA015 does not descend into when propagating the
    #: truncating-write ban: repro.io *is* the sanctioned write path.
    persistence_exempt_packages: Tuple[str, ...] = (
        "repro.io",
    )

    #: Modules that own the closure-transaction protocol — RA016's
    #: "add_answer outside a transaction" check skips them (they are
    #: the implementation, not a caller).
    transaction_owner_modules: Tuple[str, ...] = (
        "repro.core.preference",
    )

    def deterministic(self, module_name: str) -> bool:
        """Whether a dotted module name falls under RA001-RA003."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.deterministic_packages
        )

    def persistent(self, module_name: str) -> bool:
        """Whether a dotted module name falls under RA012."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.persistence_modules
        )

    def ordering_checked(self, module_name: str) -> bool:
        """Whether RA003 applies beyond the deterministic packages."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.ordering_hazard_modules
        )

    def taint_exempt(self, module_name: str) -> bool:
        """Whether RA013 skips paths passing through this module."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.taint_exempt_packages
        )

    def persistence_exempt(self, module_name: str) -> bool:
        """Whether RA015 treats this module as a sanctioned writer."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.persistence_exempt_packages
        )

    def pool_checked(self, module_name: str) -> bool:
        """Whether RA014 inspects pool submissions in this module."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.pool_modules
        )

    def transaction_owner(self, module_name: str) -> bool:
        """Whether RA016 treats this module as the protocol owner."""
        return any(
            module_name == pkg or module_name.startswith(pkg + ".")
            for pkg in self.transaction_owner_modules
        )

    def top_package(self, module_name: str) -> str:
        """``repro.core.engine`` -> ``core``; root modules map to their
        own name (``repro.exceptions`` -> ``exceptions``); the root
        package itself maps to ``""``."""
        root = self.root_package
        if module_name == root:
            return ""
        if not module_name.startswith(root + "."):
            return module_name.partition(".")[0]
        return module_name[len(root) + 1:].partition(".")[0]

"""Runtime determinism sanitizer: catch what static analysis cannot.

The static rules (RA001-RA003, RA013) see *code*; this module watches
*executions*. :class:`DeterminismSanitizer` is an opt-in context
manager that instruments the process's nondeterminism sources and
records every use with a full stack trace, without changing behaviour
— every patched function still delegates to the real one, so a run
under the sanitizer produces exactly the bytes it would have produced
anyway.

Watched sources (the sanitizer's threat model — see
docs/static-analysis.md for what it deliberately does *not* catch):

* **wall clock** — ``time.time``, ``time.time_ns``, ``time.ctime``,
  ``time.localtime``, ``time.gmtime``. Monotonic clocks
  (``perf_counter*``, ``process_time*``) stay unwatched: they feed
  durations, never result data.
* **global RNG** — the shared ``random`` module functions
  (``random.random``, ``random.randrange``, ...), whose state is
  call-order-dependent across the whole process. Seeded
  ``random.Random(seed)`` instances are fine and not recorded.
* **numpy global RNG** — ``numpy.random.<fn>`` module-level functions
  backed by the hidden global state (``numpy.random.seed`` callers
  included; seeded ``default_rng(seed)`` generators pass through
  unwatched).
* **os.urandom** — kernel entropy, unreproducible by construction
  (``random.SystemRandom`` bottoms out here too).

Implementation note: patching is the primary mechanism, not
``sys.addaudithook`` — CPython emits no audit events for ``time.*`` or
the ``random`` module, and ``os.urandom`` is only visible on some
platforms. An audit hook is still installed while active, as a
best-effort extra signal for filesystem-ordering reads
(``os.listdir`` / ``os.scandir`` — RA003's runtime counterpart), but
those are reported as *advisory* notes, not violations, because
listing a directory is fine when the caller sorts the result (which
the static rule already enforces).

Exclusions: frames from this module and from the watched modules'
internals are skipped when attributing a violation, so the reported
site is the project (or test) line that called the nondeterminism
source. ``allow_modules`` filters out violations whose attributed
frame lives in a module the caller declared exempt (the obs layer's
wall-clock timestamping, pytest internals, ...).
"""

from __future__ import annotations

import os
import random
import sys
import time
import traceback
from dataclasses import dataclass, field
from types import TracebackType
from typing import Callable, Dict, List, Optional, Tuple

try:  # numpy is a hard dependency of the repo, but stay importable
    import numpy as _numpy
except ImportError:  # pragma: no cover - the image bakes numpy in
    _numpy = None

#: Violation kinds, in reporting order.
KIND_WALL_CLOCK = "wall_clock"
KIND_GLOBAL_RNG = "global_rng"
KIND_NUMPY_GLOBAL_RNG = "numpy_global_rng"
KIND_OS_URANDOM = "os_urandom"
KIND_ADVISORY_LISTING = "advisory_listing"

#: ``time`` module attributes that read the wall clock.
_WALL_CLOCK_FUNCS = (
    "time", "time_ns", "ctime", "localtime", "gmtime",
)

#: ``random`` module functions backed by the hidden global Random().
_GLOBAL_RANDOM_FUNCS = (
    "random", "uniform", "randint", "randrange", "choice", "choices",
    "shuffle", "sample", "betavariate", "expovariate", "gauss",
    "normalvariate", "lognormvariate", "vonmisesvariate",
    "paretovariate", "weibullvariate", "triangular", "getrandbits",
    "randbytes", "seed",
)

#: ``numpy.random`` module-level functions backed by the global state.
_NUMPY_GLOBAL_FUNCS = (
    "random", "rand", "randn", "randint", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "beta", "binomial", "exponential", "gamma",
    "poisson", "seed", "bytes", "random_integers",
)

#: Audit events forwarded as advisory filesystem-ordering notes.
_ADVISORY_EVENTS = frozenset({"os.listdir", "os.scandir"})


@dataclass
class Violation:
    """One recorded use of a nondeterminism source."""

    kind: str
    source: str  # e.g. "time.time", "random.random", "os.urandom"
    stack: List[traceback.FrameSummary]
    site: Optional[traceback.FrameSummary] = None

    @property
    def location(self) -> str:
        if self.site is None:
            return "<unattributable>"
        return f"{self.site.filename}:{self.site.lineno}"

    def render(self) -> str:
        lines = [f"{self.kind}: {self.source} at {self.location}"]
        if self.site is not None and self.site.line:
            lines.append(f"    {self.site.line.strip()}")
        return "\n".join(lines)

    def render_stack(self) -> str:
        """Full formatted stack, innermost last (traceback order)."""
        header = f"{self.kind}: {self.source}\n"
        return header + "".join(
            traceback.format_list(self.stack)
        )


def _attribute(
    stack: List[traceback.FrameSummary],
) -> Optional[traceback.FrameSummary]:
    """The innermost frame not inside this module — the caller that
    actually touched the nondeterminism source."""
    here = __file__
    for frame in reversed(stack):
        if frame.filename != here:
            return frame
    return None


class DeterminismSanitizer:
    """Record-and-passthrough instrumentation of nondeterminism.

    Usage::

        with DeterminismSanitizer() as sanitizer:
            run_everything()
        sanitizer.check()  # raises SanitizerViolations on any record

    Re-entrant use of the patched functions from inside the sanitizer
    itself is safe (recording uses only monotonic bookkeeping). The
    sanitizer is process-global while active — nesting two instances
    is refused rather than silently double-patching.
    """

    _active: Optional["DeterminismSanitizer"] = None

    def __init__(
        self,
        allow_modules: Tuple[str, ...] = (),
        advisory_listings: bool = False,
    ) -> None:
        #: path fragments whose violations are dropped (e.g. the obs
        #: layer timestamping exports, which owns wall-clock reads)
        self.allow_modules = tuple(allow_modules)
        self.advisory_listings = advisory_listings
        self.violations: List[Violation] = []
        self.advisories: List[Violation] = []
        self._saved: List[Tuple[object, str, object]] = []
        self._hook_installed = False

    # -- lifecycle -----------------------------------------------------------

    def __enter__(self) -> "DeterminismSanitizer":
        if DeterminismSanitizer._active is not None:
            raise RuntimeError(
                "a DeterminismSanitizer is already active in this "
                "process; nesting would double-patch"
            )
        DeterminismSanitizer._active = self
        self._patch_all()
        if self.advisory_listings and not self._hook_installed:
            # Audit hooks cannot be removed (PEP 578); install once per
            # process and let the hook check the active instance.
            sys.addaudithook(_audit_hook)
            self._hook_installed = True
        return self

    def __exit__(
        self,
        exc_type: Optional[type],
        exc: Optional[BaseException],
        tb: Optional[TracebackType],
    ) -> None:
        self._unpatch_all()
        DeterminismSanitizer._active = None

    # -- recording -----------------------------------------------------------

    def record(self, kind: str, source: str) -> None:
        stack = traceback.extract_stack()[:-2]
        site = _attribute(stack)
        violation = Violation(
            kind=kind, source=source, stack=list(stack), site=site
        )
        if site is not None and any(
            fragment in site.filename for fragment in self.allow_modules
        ):
            return
        if kind == KIND_ADVISORY_LISTING:
            self.advisories.append(violation)
        else:
            self.violations.append(violation)

    def check(self) -> None:
        """Raise :class:`SanitizerViolations` if anything was caught."""
        if self.violations:
            raise SanitizerViolations(list(self.violations))

    def report(self) -> str:
        """Human-readable summary of everything recorded."""
        if not self.violations and not self.advisories:
            return "determinism sanitizer: no violations"
        lines = [
            f"determinism sanitizer: {len(self.violations)} "
            f"violation(s), {len(self.advisories)} advisory note(s)"
        ]
        for violation in self.violations:
            lines.append(violation.render())
        for advisory in self.advisories:
            lines.append(f"[advisory] {advisory.render()}")
        return "\n".join(lines)

    # -- patching ------------------------------------------------------------

    def _patch(self, owner, name: str, kind: str, source: str) -> None:
        original = getattr(owner, name, None)
        if original is None:
            return

        def wrapper(*args, **kwargs):
            self.record(kind, source)
            return original(*args, **kwargs)

        wrapper.__name__ = getattr(original, "__name__", name)
        wrapper._repro_sanitizer_original = original
        self._saved.append((owner, name, original))
        setattr(owner, name, wrapper)

    def _patch_all(self) -> None:
        for name in _WALL_CLOCK_FUNCS:
            self._patch(time, name, KIND_WALL_CLOCK, f"time.{name}")
        for name in _GLOBAL_RANDOM_FUNCS:
            self._patch(
                random, name, KIND_GLOBAL_RNG, f"random.{name}"
            )
        self._patch(os, "urandom", KIND_OS_URANDOM, "os.urandom")
        if _numpy is not None:
            for name in _NUMPY_GLOBAL_FUNCS:
                self._patch(
                    _numpy.random, name, KIND_NUMPY_GLOBAL_RNG,
                    f"numpy.random.{name}",
                )

    def _unpatch_all(self) -> None:
        while self._saved:
            owner, name, original = self._saved.pop()
            setattr(owner, name, original)


def _audit_hook(event: str, args) -> None:
    """Forward directory-listing audit events as advisory notes."""
    active = DeterminismSanitizer._active
    if active is None or not active.advisory_listings:
        return
    if event in _ADVISORY_EVENTS:
        active.record(KIND_ADVISORY_LISTING, event)


class SanitizerViolations(Exception):
    """Raised by :meth:`DeterminismSanitizer.check` on any violation."""

    def __init__(self, violations: List[Violation]) -> None:
        self.violations = violations
        summary = "; ".join(
            f"{v.kind} ({v.source}) at {v.location}"
            for v in violations[:5]
        )
        extra = len(violations) - 5
        if extra > 0:
            summary += f"; ... {extra} more"
        super().__init__(
            f"{len(violations)} determinism violation(s): {summary}"
        )


def sanitized(
    func: Callable,
    *args,
    allow_modules: Tuple[str, ...] = (),
    **kwargs,
):
    """Run ``func(*args, **kwargs)`` under a sanitizer.

    Returns ``(result, sanitizer)`` — the caller decides whether to
    ``check()`` (raise) or ``report()`` (print).
    """
    with DeterminismSanitizer(allow_modules=allow_modules) as sanitizer:
        result = func(*args, **kwargs)
    return result, sanitizer

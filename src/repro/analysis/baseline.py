"""The committed suppression baseline.

The baseline grandfathers known violations so the ``check`` gate can
demand *zero new findings* from day one. It is a JSON file of entries::

    {"version": 1,
     "entries": [{"code": "RA004", "path": "src/repro/...",
                  "context": "<stripped source line>",
                  "rationale": "why this violation is accepted"}]}

An entry matches a finding by ``(code, normalized path, context)`` —
the *source line text*, not the line number, so baselined findings
survive unrelated edits above them. ``check`` enforces baseline
hygiene itself: entries without a written rationale and entries that
no longer match anything (stale) are reported as ``RA000`` findings,
so the baseline can only shrink honestly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.findings import Finding, SEVERITY_ERROR
from repro.io.atomic import atomic_write_text

BASELINE_VERSION = 1

#: Default committed baseline filename (repo root).
DEFAULT_BASELINE = "analysis-baseline.json"

#: Pseudo-code for baseline-hygiene findings emitted by ``check``.
BASELINE_CODE = "RA000"

#: Rationale placeholder written by ``baseline --write`` for new
#: entries; ``check`` refuses it until a human replaces it.
TODO_RATIONALE = "TODO: justify or fix"


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding."""

    code: str
    path: str
    context: str
    rationale: str = ""

    def key(self) -> Tuple[str, str, str]:
        return (self.code, _normalize(self.path), self.context)

    def to_json(self) -> Dict[str, str]:
        return {
            "code": self.code,
            "path": self.path,
            "context": self.context,
            "rationale": self.rationale,
        }


def _normalize(path: str) -> str:
    return Path(path).as_posix().lstrip("./")


def _path_matches(a: str, b: str) -> bool:
    """Whether two paths name the same file, tolerating different
    invocation roots (``src/repro/x.py`` vs ``/repo/src/repro/x.py``)."""
    a, b = _normalize(a), _normalize(b)
    return a == b or a.endswith("/" + b) or b.endswith("/" + a)


def load_baseline(path: Union[str, Path]) -> List[BaselineEntry]:
    """Read a baseline file; missing file means an empty baseline."""
    file = Path(path)
    if not file.exists():
        return []
    data = json.loads(file.read_text(encoding="utf-8"))
    entries = []
    for raw in data.get("entries", []):
        entries.append(
            BaselineEntry(
                code=str(raw.get("code", "")),
                path=str(raw.get("path", "")),
                context=str(raw.get("context", "")),
                rationale=str(raw.get("rationale", "")),
            )
        )
    return entries


def save_baseline(
    path: Union[str, Path], entries: Iterable[BaselineEntry]
) -> None:
    """Write a baseline file (sorted, trailing newline, stable diffs)."""
    ordered = sorted(entries, key=BaselineEntry.key)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [entry.to_json() for entry in ordered],
    }
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")


@dataclass
class BaselineResult:
    """Outcome of filtering findings through a baseline."""

    new: List[Finding]
    matched: List[Finding]
    stale: List[BaselineEntry]
    missing_rationale: List[BaselineEntry]

    def gate_findings(self) -> List[Finding]:
        """Everything the ``check`` gate fails on: new findings plus
        RA000 hygiene findings for stale / rationale-less entries."""
        out = list(self.new)
        for entry in self.missing_rationale:
            out.append(
                Finding(
                    code=BASELINE_CODE,
                    path=entry.path,
                    line=0,
                    col=0,
                    message=(
                        f"baseline entry for {entry.code} has no "
                        "written rationale; justify it or fix the "
                        "violation"
                    ),
                    severity=SEVERITY_ERROR,
                    context=entry.context,
                    family="baseline",
                )
            )
        for entry in self.stale:
            out.append(
                Finding(
                    code=BASELINE_CODE,
                    path=entry.path,
                    line=0,
                    col=0,
                    message=(
                        f"stale baseline entry: {entry.code} no longer "
                        "fires at this context; remove the entry"
                    ),
                    severity=SEVERITY_ERROR,
                    context=entry.context,
                    family="baseline",
                )
            )
        return out


def apply_baseline(
    findings: List[Finding], entries: List[BaselineEntry]
) -> BaselineResult:
    """Split findings into baselined and new, and audit the entries."""
    table: Dict[Tuple[str, str], List[BaselineEntry]] = {}
    for entry in entries:
        table.setdefault((entry.code, entry.context), []).append(entry)
    used = set()
    new: List[Finding] = []
    matched: List[Finding] = []
    for finding in findings:
        candidates = table.get((finding.code, finding.context), [])
        entry = next(
            (e for e in candidates if _path_matches(finding.path, e.path)),
            None,
        )
        if entry is not None:
            used.add(entry.key())
            matched.append(finding)
        else:
            new.append(finding)
    stale = [e for e in entries if e.key() not in used]
    missing = [
        e for e in entries
        if e.key() in used
        and (not e.rationale.strip() or e.rationale.startswith("TODO"))
    ]
    return BaselineResult(
        new=new, matched=matched, stale=stale, missing_rationale=missing
    )


def entries_from_findings(
    findings: Iterable[Finding],
    existing: Iterable[BaselineEntry] = (),
) -> List[BaselineEntry]:
    """Baseline entries covering ``findings``, keeping rationales of
    existing entries that still match; new entries get the TODO
    placeholder."""
    rationales = {entry.key(): entry.rationale for entry in existing}
    out: Dict[Tuple[str, str, str], BaselineEntry] = {}
    for finding in findings:
        entry = BaselineEntry(
            code=finding.code,
            path=_normalize(finding.path),
            context=finding.context,
            rationale="",
        )
        kept = rationales.get(entry.key(), "")
        out[entry.key()] = BaselineEntry(
            code=entry.code,
            path=entry.path,
            context=entry.context,
            rationale=kept or TODO_RATIONALE,
        )
    return sorted(out.values(), key=BaselineEntry.key)

"""Persistence family: durable artifacts are written atomically.

RA012 bans truncating writes (``open(path, "w")``, ``Path.write_text``,
``Path.write_bytes``) inside the modules that persist run artifacts —
journal segments, sweep cache entries, analysis baselines, trace
exports. A truncating write zeroes the old content *before* the new
content lands, so a crash in between loses both versions; those paths
must route through :mod:`repro.io.atomic` (write-temp, fsync, rename)
or use append-only handles (``"a"``/``"ab"`` — the WAL pattern, which
never destroys previously written bytes).

The rule fires only in :attr:`AnalysisConfig.persistence_modules`;
ordinary modules may still scribble scratch files however they like.
Modes that are not static string literals are skipped — dynamically
computed modes are not checkable, and the repository has none.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, TYPE_CHECKING

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    ModuleRule,
    call_name,
    literal_strs,
    register,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import SourceModule

#: ``open`` spellings that reach the builtin truncating open.
OPEN_CALLS = frozenset({"open", "io.open", "builtins.open"})

#: pathlib convenience writers — always truncate-in-place.
TRUNCATING_METHODS = frozenset({"write_text", "write_bytes"})


def _open_mode(node: ast.Call) -> Optional[ast.AST]:
    """The mode argument node of an ``open`` call, if present."""
    for keyword in node.keywords:
        if keyword.arg == "mode":
            return keyword.value
    if len(node.args) >= 2:
        return node.args[1]
    return None


@register
class AtomicPersistenceRule(ModuleRule):
    """RA012: no truncating writes in persistence modules."""

    code = "RA012"
    family = "persistence"
    summary = (
        "persistence modules must write atomically (repro.io.atomic) "
        "or append-only, never via truncating open()/write_text()"
    )

    def check_module(
        self, module: "SourceModule", config: AnalysisConfig
    ) -> Iterator[Finding]:
        if not config.persistent(module.name):
            return
        imports = module.imports
        for node in module.calls():
            name = call_name(node, imports)
            if name in OPEN_CALLS:
                mode_node = _open_mode(node)
                if mode_node is None:
                    continue  # default mode "r"
                for mode in literal_strs(mode_node):
                    if "w" in mode or "x" in mode:
                        yield self.finding(
                            module,
                            node,
                            f"truncating open(..., {mode!r}) in a "
                            "persistence module: a crash mid-write "
                            "loses old and new content; use "
                            "repro.io.atomic or an append-mode handle",
                        )
                        break
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in TRUNCATING_METHODS
            ):
                yield self.finding(
                    module,
                    node,
                    f".{node.func.attr}() truncates in place in a "
                    "persistence module; use atomic_write_text/"
                    "atomic_write_bytes from repro.io.atomic",
                )

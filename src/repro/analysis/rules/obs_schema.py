"""Obs-schema conformance rules (RA005-RA007).

The trace-event registry (``repro.obs.schema.EVENT_ATTRS``) and the
canonical metric-name constants (``repro.obs.metrics``) are the
contract between emitters and every trace/metrics consumer. The
runtime validator only sees names that were actually emitted on a given
run; these rules close the gap statically:

* **RA005** — a string literal passed to ``tracer.event(...)`` that is
  not a registered event name (typo'd names ship silently otherwise).
* **RA006** — a registered event name no scanned emission site ever
  produces (dead schema entries rot the docs and the validator).
* **RA007** — a string literal passed to a metric constructor
  (``counter``/``gauge``/``histogram``) instead of the canonical
  constant from ``repro.obs.metrics``.

RA005/RA007 read both plain literals and two-branch conditional
expressions; dynamically computed names are skipped (the runtime
strict mode — ``REPRO_OBS_STRICT=1`` — covers those). RA006 only runs
when the schema module itself is part of the scanned tree, so scanning
a subpackage never yields false "never emitted" findings.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SEVERITY_WARNING
from repro.analysis.rules.base import (
    ProjectRule,
    literal_str,
    literal_strs,
    register,
)

METRIC_CONSTRUCTORS = frozenset({"counter", "gauge", "histogram"})


def _registry_entries(
    tree, registry_name: str
) -> Optional[Dict[str, ast.AST]]:
    """``{event name: key node}`` from the schema module's registry.

    ``tree`` may be an AST node or a pre-flattened node list.
    """
    nodes = tree if isinstance(tree, (list, tuple)) else ast.walk(tree)
    for node in nodes:
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == registry_name
                and isinstance(node.value, ast.Dict)
            ):
                entries: Dict[str, ast.AST] = {}
                for key in node.value.keys:
                    name = key and literal_str(key)
                    if name is not None:
                        entries[name] = key
                return entries
    return None


def _metric_constants(tree, prefix: str) -> Set[str]:
    """Canonical metric-name values defined in the metrics module.

    ``tree`` may be an AST node or a pre-flattened node list.
    """
    out: Set[str] = set()
    nodes = tree if isinstance(tree, (list, tuple)) else ast.walk(tree)
    for node in nodes:
        if not isinstance(node, ast.Assign):
            continue
        value = literal_str(node.value)
        if value is None or not value.startswith(prefix):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id.isupper():
                out.add(value)
    return out


def _event_calls(calls) -> Iterator[Tuple[ast.Call, List[str]]]:
    """Every ``<something>.event(...)`` call with its literal names.

    ``calls`` is an iterable of ``ast.Call`` nodes
    (``SourceModule.calls()``).
    """
    for node in calls:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "event"
            and node.args
        ):
            yield node, literal_strs(node.args[0])


@register
class ObsSchemaRule(ProjectRule):
    """RA005: unregistered trace event name at an emission site."""

    code = "RA005"
    family = "obs-schema"
    summary = (
        "tracer.event() name literal not registered in "
        "repro.obs.schema.EVENT_ATTRS"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        schema = next(
            (m for m in modules if m.name == config.schema_module), None
        )
        if schema is None:
            return
        registered = _registry_entries(schema.walk(), config.schema_registry)
        if registered is None:
            return
        emitted: Set[str] = set()
        for module in modules:
            if module.name == config.schema_module:
                continue
            if module.name.startswith(config.root_package + ".analysis"):
                continue
            for call, names in _event_calls(module.calls()):
                for name in names:
                    emitted.add(name)
                    if name not in registered:
                        yield self.finding(
                            module, call,
                            f"trace event {name!r} is not registered "
                            "in repro.obs.schema.EVENT_ATTRS; register "
                            "it (with its required attrs) or fix the "
                            "typo",
                        )
        never = sorted(set(registered) - emitted)
        unused = UnusedEventRule()
        for name in never:
            yield unused.finding(
                schema, registered[name],
                f"event {name!r} is registered in EVENT_ATTRS but no "
                "scanned emission site produces it; emit it or drop "
                "the entry",
            )


@register
class UnusedEventRule(ProjectRule):
    """RA006: registered event name never emitted.

    Findings are produced by :class:`ObsSchemaRule`'s project pass
    (both directions of the cross-check share one scan); this class
    exists so the code has registry metadata and docs.
    """

    code = "RA006"
    family = "obs-schema"
    severity = SEVERITY_WARNING
    summary = (
        "event registered in EVENT_ATTRS but never emitted by any "
        "scanned module"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        return iter(())


@register
class MetricLiteralRule(ProjectRule):
    """RA007: raw string literal used as a metric name."""

    code = "RA007"
    family = "obs-schema"
    summary = (
        "metric constructor called with a string literal instead of "
        "a canonical repro.obs.metrics constant"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        metrics = next(
            (m for m in modules if m.name == config.metrics_module), None
        )
        if metrics is None:
            return
        canonical = _metric_constants(metrics.walk(), config.metric_prefix)
        for module in modules:
            if module.name in (config.metrics_module, config.schema_module):
                continue
            if module.name.startswith(config.root_package + ".analysis"):
                continue
            for node in module.calls():
                if not (
                    isinstance(node.func, ast.Attribute)
                    and node.func.attr in METRIC_CONSTRUCTORS
                    and node.args
                ):
                    continue
                for name in literal_strs(node.args[0]):
                    if name in canonical:
                        yield self.finding(
                            module, node,
                            f"metric name {name!r} spelled as a "
                            "literal; import the canonical constant "
                            "from repro.obs.metrics",
                        )
                    elif name.startswith(config.metric_prefix):
                        yield self.finding(
                            module, node,
                            f"metric name {name!r} is not defined in "
                            "repro.obs.metrics; add a canonical "
                            "constant (with help text) and use it",
                        )

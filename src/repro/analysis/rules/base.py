"""Rule plumbing: the base classes, the registry and AST helpers.

A rule is a stateless object with a stable ``code`` (``RA001``...),
a ``family`` slug, and either a per-module pass (:class:`ModuleRule`,
sees one parsed module at a time) or a whole-project pass
(:class:`ProjectRule`, sees every module — for cross-module contracts
like the import DAG or schema/emission cross-checks). Register each
concrete rule with :func:`register`; :func:`all_rules` returns them in
code order.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, Iterator, List, Optional, TYPE_CHECKING

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding, SEVERITY_ERROR

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.analysis.engine import SourceModule


class Rule:
    """Base class: metadata plus the finding factory."""

    code: str = ""
    family: str = ""
    severity: str = SEVERITY_ERROR
    #: One-line description shown by ``repro-analysis rules``.
    summary: str = ""

    def finding(
        self,
        module: "SourceModule",
        node: ast.AST,
        message: str,
        severity: Optional[str] = None,
    ) -> Finding:
        """A finding anchored at ``node`` inside ``module``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            code=self.code,
            path=module.path,
            line=line,
            col=col,
            message=message,
            severity=severity or self.severity,
            context=module.line_at(line),
            family=self.family,
        )


class ModuleRule(Rule):
    """Rule checked one module at a time."""

    def check_module(
        self, module: "SourceModule", config: AnalysisConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """Rule needing the whole scanned tree at once."""

    def check_project(
        self, modules: List["SourceModule"], config: AnalysisConfig
    ) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Rule] = {}


def register(cls):
    """Class decorator: instantiate and index a rule by its code."""
    rule = cls()
    if not rule.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if rule.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {rule.code}")
    _REGISTRY[rule.code] = rule
    return cls


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_REGISTRY[code] for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Optional[Rule]:
    """The registered rule for ``code``, if any."""
    return _REGISTRY.get(code)


# -- AST helpers -------------------------------------------------------------


def import_map(tree) -> Dict[str, str]:
    """Map local alias -> dotted origin for every import in ``tree``.

    ``import numpy as np`` yields ``{"np": "numpy"}``;
    ``from time import time as now`` yields ``{"now": "time.time"}``.
    Star imports are ignored (nothing resolvable to track). ``tree``
    may be an AST node or an already-flattened node iterable (the
    engine passes ``SourceModule.walk()`` so the tree is only walked
    once per file).
    """
    mapping: Dict[str, str] = {}
    nodes = tree if isinstance(tree, (list, tuple)) else ast.walk(tree)
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    mapping[alias.asname] = alias.name
                else:
                    # `import a.b` binds the top package name `a`.
                    top = alias.name.partition(".")[0]
                    mapping[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports stay package-local
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{node.module}.{alias.name}"
    return mapping


def resolved_name(
    node: ast.AST, imports: Dict[str, str]
) -> Optional[str]:
    """Resolve a Name/Attribute chain to a dotted origin name.

    ``np.random.default_rng`` with ``{"np": "numpy"}`` resolves to
    ``"numpy.random.default_rng"``; an unimported bare name resolves to
    itself (so builtins like ``set`` and ``sorted`` keep their names);
    anything rooted in a call/subscript resolves to ``None``.
    """
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    head = imports.get(node.id, node.id)
    parts.append(head)
    return ".".join(reversed(parts))


def call_name(
    node: ast.Call, imports: Dict[str, str]
) -> Optional[str]:
    """The resolved dotted name a call targets, if statically known."""
    return resolved_name(node.func, imports)


def walk_with_parents(tree: ast.AST) -> Iterable[ast.AST]:
    """``ast.walk`` that first stamps every child's ``parent``."""
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            child._repro_parent = node  # type: ignore[attr-defined]
    return ast.walk(tree)


def parent_of(node: ast.AST) -> Optional[ast.AST]:
    """The parent stamped by :func:`walk_with_parents` (None at root)."""
    return getattr(node, "_repro_parent", None)


def literal_str(node: ast.AST) -> Optional[str]:
    """The value of a string-constant node, else ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def literal_strs(node: ast.AST) -> List[str]:
    """String values statically producible by ``node``.

    Handles plain constants and conditional expressions whose branches
    are both string constants (``"a" if flag else "b"``); anything else
    yields an empty list (dynamically computed — not checkable).
    """
    value = literal_str(node)
    if value is not None:
        return [value]
    if isinstance(node, ast.IfExp):
        branches = literal_strs(node.body) + literal_strs(node.orelse)
        if len(branches) == 2:
            return branches
    return []

"""Rule registry for the invariant linter.

Importing this package registers every built-in rule; use
:func:`all_rules` / :func:`get_rule` to enumerate them. Codes are
stable (``RA001``...) and grouped into seven families:

========  ==================  =========================================
code      family              invariant
========  ==================  =========================================
RA001     determinism         no wall-clock reads
RA002     determinism         no unseeded randomness
RA003     determinism         no set-iteration / unsorted listings
RA004     layering            package import DAG
RA005     obs-schema          emitted event names are registered
RA006     obs-schema          registered event names are emitted
RA007     obs-schema          metric names come from the constants
RA008     cache-purity        runners are module-level and env-free
RA009     cache-purity        runners take no mutable defaults
RA010     exception-hygiene   no bare ``except:``
RA011     exception-hygiene   no silent exception swallows
RA012     persistence         no truncating writes in persistence paths
RA013     interprocedural     no call path to clocks/unseeded RNG
RA014     interprocedural     pool submissions transitively picklable
RA015     interprocedural     no laundered truncating writes
RA016     interprocedural     spans/posting groups/verdicts balance
========  ==================  =========================================
"""

from repro.analysis.rules.base import (
    ModuleRule,
    ProjectRule,
    Rule,
    all_rules,
    get_rule,
)

# Importing the rule modules registers their rules (order fixes the
# registry; keep alphabetical by family file).
from repro.analysis.rules import determinism  # noqa: F401
from repro.analysis.rules import hygiene  # noqa: F401
from repro.analysis.rules import interprocedural  # noqa: F401
from repro.analysis.rules import layering  # noqa: F401
from repro.analysis.rules import obs_schema  # noqa: F401
from repro.analysis.rules import persistence  # noqa: F401
from repro.analysis.rules import purity  # noqa: F401

__all__ = [
    "ModuleRule",
    "ProjectRule",
    "Rule",
    "all_rules",
    "get_rule",
]

"""Interprocedural rules (RA013-RA016), built on the call graph.

The module-local determinism/persistence rules check *sites*; these
rules check *paths*. Each one walks :class:`repro.analysis.callgraph.
CallGraph` edges and reports at the **crossing call site** — the edge
where checked scope calls out into code that (transitively) reaches a
sink. One finding per crossing edge keeps the noise proportional to
the number of decisions a reviewer can actually make (change or
suppress that call), not to the number of paths behind it.

* **RA013** — RNG/clock taint: deterministic code calls out of the
  deterministic packages into a function that transitively reaches a
  wall-clock read or unseeded RNG. Module-local RA001/RA002 keep
  direct sites; this closes the "hidden behind one helper call" gap.
* **RA014** — pool pickle-safety: everything submitted to a process
  pool in the configured pool modules must resolve to a module-level
  project function (nested defs, lambdas and methods do not pickle by
  reference) whose transitive callees read no environment; runner
  strings that resolve to nested functions are flagged with the same
  precision.
* **RA015** — transitive persistence: RA012's truncating-write ban
  propagated through the graph — a persistence module may not launder
  a truncating write through a helper in an unchecked module.
* **RA016** — span/transaction balance: ``tracer.span(...)`` must be
  used as a context manager (or returned to a caller who will),
  journal posting groups opened with ``_write("post", ...)`` must
  commit on all non-raising paths, manual ``__enter__`` needs a paired
  ``__exit__``, and crowd-round code must batch verdicts through
  ``apply_verdicts`` instead of looping ``add_answer``.

Paths are rendered in messages as ``a -> b -> c`` dotted-function
chains so a finding is actionable without re-deriving the graph.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    ProjectRule,
    literal_str,
    parent_of,
    register,
)


def _graph_for(modules, config):
    """Build (and memoize on the module list) the project call graph.

    All four rules run against the same module list in one analysis
    pass; building the graph once and stashing it on the first parsed
    module keeps the full-repo interprocedural check well under the
    10s budget without threading state through the engine. The memo
    also records the list identity so a different module set never
    reuses a stale graph.
    """
    from repro.analysis.callgraph import CallGraph

    if modules:
        memo = getattr(modules[0], "_repro_callgraph", None)
        if memo is not None and memo[0] == id(modules):
            return memo[1]
    graph = CallGraph.build(modules, config)
    if modules:
        modules[0]._repro_callgraph = (id(modules), graph)
    return graph


def _chain(start_key, path) -> str:
    """``repro.a.f -> repro.b.g`` rendering of an edge path."""
    names = [f"{start_key[0]}.{start_key[1]}"]
    names += [f"{edge.callee[0]}.{edge.callee[1]}" for edge in path]
    return " -> ".join(names)


@register
class RngTaintRule(ProjectRule):
    """RA013: deterministic scope reaches a clock/RNG sink."""

    code = "RA013"
    family = "interprocedural"
    summary = (
        "call path from deterministic code reaches a wall-clock read "
        "or unseeded RNG outside the deterministic packages"
    )

    _SINKS = {"wall_clock", "unseeded_rng"}

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        graph = _graph_for(modules, config)
        by_name = {module.name: module for module in modules}
        reported: Set[Tuple[str, int, int, str]] = set()
        for key, info in graph.functions.items():
            if not config.deterministic(info.module):
                continue
            module = by_name.get(info.module)
            if module is None:
                continue
            for edge in graph.callees(key):
                callee_mod = edge.callee[0]
                # crossing edges only: the callee is outside checked
                # scope (inside it, RA001/RA002 or this rule at the
                # callee's own edges already cover the sink)
                if config.deterministic(callee_mod):
                    continue
                if config.taint_exempt(callee_mod):
                    continue
                yield from self._check_crossing(
                    graph, config, module, edge, reported
                )

    def _check_crossing(self, graph, config, module, edge, reported):
        hits = self._sink_paths(graph, config, edge.callee)
        for kind, path, sink in hits:
            anchor = (
                module.path,
                getattr(edge.node, "lineno", 1),
                getattr(edge.node, "col_offset", 0),
                kind,
            )
            if anchor in reported:
                continue
            reported.add(anchor)
            what = (
                "a wall-clock read"
                if kind == "wall_clock"
                else "unseeded randomness"
            )
            chain = _chain(edge.callee, path)
            yield self.finding(
                module, edge.node,
                f"deterministic code reaches {what} "
                f"(`{sink.detail}`) via {chain}; thread the value in "
                "explicitly or move the sink behind repro.obs",
            )

    def _sink_paths(self, graph, config, start):
        """``(kind, path, sink)`` for the first sink of each kind
        reachable from ``start`` (including ``start`` itself)."""
        found: Dict[str, Tuple[list, object]] = {}
        for sink in graph.sinks_of(start):
            if sink.kind in self._SINKS and sink.kind not in found:
                found[sink.kind] = ([], sink)
        for path, reached in graph.walk_paths(
            start, skip_module=config.taint_exempt
        ):
            if len(found) == len(self._SINKS):
                break
            for sink in graph.sinks_of(reached):
                if sink.kind in self._SINKS and sink.kind not in found:
                    found[sink.kind] = (path, sink)
        return [
            (kind, path, sink) for kind, (path, sink) in found.items()
        ]


@register
class PoolPickleSafetyRule(ProjectRule):
    """RA014: pool submissions must be module-level and env-free."""

    code = "RA014"
    family = "interprocedural"
    summary = (
        "process-pool submission (or runner string) must resolve to a "
        "module-level project function with no transitive env reads"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        graph = _graph_for(modules, config)
        by_name = {module.name: module for module in modules}
        for site in graph.submit_sites:
            if not config.pool_checked(site.module):
                continue
            module = by_name.get(site.module)
            if module is None:
                continue
            anchor = site.arg if site.arg is not None else site.node
            if site.unresolved is not None:
                yield self.finding(
                    module, anchor,
                    f"pool submission {site.unresolved}: workers "
                    "import their callable by name, so it must be a "
                    "module-level function in the project",
                )
                continue
            for target in site.targets:
                info = graph.function(target)
                if info is None:
                    continue
                if info.is_nested:
                    yield self.finding(
                        module, anchor,
                        f"pool submission resolves to nested function "
                        f"`{info.dotted}` — nested defs close over "
                        "their frame and cannot be pickled by "
                        "reference; hoist it to module level",
                    )
                    continue
                if info.is_method:
                    yield self.finding(
                        module, anchor,
                        f"pool submission resolves to method "
                        f"`{info.dotted}`; bound methods drag their "
                        "instance through pickle — submit a "
                        "module-level function instead",
                    )
                    continue
                yield from self._env_findings(
                    graph, config, module, anchor, target
                )

        # runner strings get the same structural check with graph
        # precision (RA008 reports unresolvable; this one says *why*)
        for ref in graph.runner_refs:
            if ref.target is None:
                continue
            info = graph.function(ref.target)
            module = by_name.get(ref.module)
            if info is None or module is None:
                continue
            if info.is_nested:
                yield self.finding(
                    module, ref.node,
                    f"runner {ref.target_module}:{ref.target_func} "
                    f"resolves to nested function `{info.dotted}` — "
                    "nested defs are unpicklable by reference, so the "
                    "worker process cannot import this cell; hoist it "
                    "to module level",
                )

    def _env_findings(self, graph, config, module, anchor, target):
        direct = [
            s for s in graph.sinks_of(target) if s.kind == "env_read"
        ]
        if direct:
            chain = f"{target[0]}.{target[1]}"
            yield self.finding(
                module, anchor,
                f"pool worker `{chain}` reads the environment "
                f"(`{direct[0].detail}`); worker processes may see a "
                "different env than the parent — pass the value "
                "through the submitted arguments",
            )
            return
        for path, reached in graph.walk_paths(
            target, skip_module=config.taint_exempt
        ):
            reads = [
                s for s in graph.sinks_of(reached)
                if s.kind == "env_read"
            ]
            if reads:
                chain = _chain(target, path)
                yield self.finding(
                    module, anchor,
                    f"pool worker transitively reads the environment "
                    f"(`{reads[0].detail}`) via {chain}; pass the "
                    "value through the submitted arguments",
                )
                return


@register
class TransitivePersistenceRule(ProjectRule):
    """RA015: truncating writes laundered through helpers."""

    code = "RA015"
    family = "interprocedural"
    summary = (
        "persistence-module code reaches a truncating write through a "
        "helper outside the checked modules"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        graph = _graph_for(modules, config)
        by_name = {module.name: module for module in modules}
        reported: Set[Tuple[str, int, int]] = set()
        for key, info in graph.functions.items():
            if not config.persistent(info.module):
                continue
            module = by_name.get(info.module)
            if module is None:
                continue
            for edge in graph.callees(key):
                callee_mod = edge.callee[0]
                # crossing edges only: writes inside persistence
                # modules are RA012's (module-local) job, and the
                # sanctioned write path (repro.io) is exempt
                if config.persistent(callee_mod):
                    continue
                if config.persistence_exempt(callee_mod):
                    continue
                hit = self._first_write(graph, config, edge.callee)
                if hit is None:
                    continue
                path, sink = hit
                anchor = (
                    module.path,
                    getattr(edge.node, "lineno", 1),
                    getattr(edge.node, "col_offset", 0),
                )
                if anchor in reported:
                    continue
                reported.add(anchor)
                chain = _chain(edge.callee, path)
                yield self.finding(
                    module, edge.node,
                    f"persistence code reaches a truncating write "
                    f"(`{sink.detail}`) via {chain}; route the write "
                    "through repro.io.atomic or an append-only handle",
                )

    def _first_write(self, graph, config, start):
        for sink in graph.sinks_of(start):
            if sink.kind == "truncating_write":
                return [], sink
        for path, reached in graph.walk_paths(
            start, skip_module=config.persistence_exempt
        ):
            for sink in graph.sinks_of(reached):
                if sink.kind == "truncating_write":
                    return path, sink
        return None


@register
class TransactionBalanceRule(ProjectRule):
    """RA016: spans, posting groups and verdict transactions balance."""

    code = "RA016"
    family = "interprocedural"
    summary = (
        "unbalanced span/posting-group/verdict transaction: spans must "
        "be `with`-managed, journal posts must commit, crowd rounds "
        "must batch through apply_verdicts"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        for module in modules:
            if config.taint_exempt(module.name):
                # repro.obs owns the span protocol; the linter itself
                # is never on a run path
                continue
            module.walk()  # ensure parent links are stamped
            yield from self._span_misuse(module)
            yield from self._enter_without_exit(module)
            yield from self._posting_groups(module)
            if (
                config.top_package(module.name) == "core"
                and not config.transaction_owner(module.name)
            ):
                yield from self._add_answer_loops(module)

    # -- span discipline -----------------------------------------------------

    def _span_misuse(self, module) -> Iterator[Finding]:
        for node in module.calls():
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "span"
            ):
                continue
            parent = parent_of(node)
            if isinstance(parent, ast.withitem):
                continue  # with tracer.span(...): — the intended shape
            if isinstance(parent, (ast.Return, ast.Yield)):
                continue  # factory delegating to its caller
            if isinstance(parent, ast.Attribute):
                continue  # tracer.span(...).attr — not a bare span
            yield self.finding(
                module, node,
                "`.span(...)` result is not entered as a context "
                "manager; a span that never exits skews self-time "
                "attribution for the whole trace — use "
                "`with tracer.span(...):`",
            )

    def _enter_without_exit(self, module) -> Iterator[Finding]:
        for func in module.walk():
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            enters: List[ast.Call] = []
            has_exit = False
            for node in ast.walk(func):
                if isinstance(node, ast.Call) and isinstance(
                    node.func, ast.Attribute
                ):
                    if node.func.attr == "__enter__":
                        enters.append(node)
                    elif node.func.attr == "__exit__":
                        has_exit = True
            if enters and not has_exit:
                yield self.finding(
                    module, enters[0],
                    "manual `.__enter__()` with no paired `.__exit__` "
                    "in this function; on an exception the resource "
                    "never closes — use a `with` block or call "
                    "`.__exit__` in a `finally`",
                )

    # -- journal posting groups ----------------------------------------------

    @staticmethod
    def _write_kind(node: ast.Call) -> Optional[str]:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "_write"
            and node.args
        ):
            return literal_str(node.args[0])
        return None

    def _posting_groups(self, module) -> Iterator[Finding]:
        for func in module.walk():
            if not isinstance(
                func, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            posts: List[ast.Call] = []
            commits: List[ast.Call] = []
            returns: List[ast.Return] = []
            for node in ast.walk(func):
                if isinstance(node, ast.Call):
                    kind = self._write_kind(node)
                    if kind == "post":
                        posts.append(node)
                    elif kind == "commit":
                        commits.append(node)
                elif isinstance(node, ast.Return):
                    returns.append(node)
            if not posts:
                continue
            if not commits:
                yield self.finding(
                    module, posts[0],
                    "posting group opened with `_write(\"post\", ...)` "
                    "but this function never writes the matching "
                    "`commit` record; recovery will discard the whole "
                    "group as a torn tail",
                )
                continue
            last_commit = max(c.lineno for c in commits)
            first_post = min(p.lineno for p in posts)
            for ret in returns:
                if first_post < ret.lineno < last_commit:
                    yield self.finding(
                        module, ret,
                        "return between `_write(\"post\", ...)` and "
                        "its `commit` leaves an uncommitted posting "
                        "group; commit (or raise) before returning",
                    )

    # -- verdict batching ----------------------------------------------------

    def _add_answer_loops(self, module) -> Iterator[Finding]:
        for node in module.calls():
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "add_answer"
            ):
                continue
            current = parent_of(node)
            in_loop = False
            while current is not None:
                if isinstance(
                    current, (ast.For, ast.AsyncFor, ast.While)
                ):
                    in_loop = True
                    break
                if isinstance(
                    current, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    break
                current = parent_of(current)
            if in_loop:
                yield self.finding(
                    module, node,
                    "`add_answer` called in a loop: each call runs a "
                    "closure update outside the per-round transaction "
                    "— batch the edges and commit once through "
                    "`apply_verdicts`",
                )

"""Determinism rules (RA001-RA003).

The sweep engine's byte-identical parallel/serial guarantee and its
content-addressed cache assume every cell is a pure function of
``(runner, config, seed)``. These rules statically forbid the three
ways that silently breaks inside the deterministic packages
(``repro.core`` / ``repro.crowd`` / ``repro.experiments``):

* **RA001** — wall-clock reads (``time.time()``, ``datetime.now()``,
  ...). Monotonic clocks (``perf_counter``) are allowed: they feed
  durations, not result data, and the obs layer owns them.
* **RA002** — unseeded randomness: module-level ``random.*`` /
  ``numpy.random.*`` functions (global-state RNGs) and
  ``default_rng()`` / ``Random()`` without an explicit seed.
* **RA003** — ordering hazards: iterating or materializing a ``set``
  (salted hashing makes the order vary per process), and directory
  listings (``os.listdir``, ``glob.glob``, ``Path.iterdir``) not
  wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    ModuleRule,
    call_name,
    parent_of,
    register,
)

#: Wall-clock reads (resolved dotted call targets).
WALL_CLOCK_CALLS = frozenset({
    "time.time",
    "time.time_ns",
    "time.ctime",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
})

#: Seed-taking numpy constructors (fine when given an argument).
NUMPY_SEEDED_CONSTRUCTORS = frozenset({
    "numpy.random.default_rng",
    "numpy.random.Generator",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.Philox",
    "numpy.random.BitGenerator",
})

#: Directory-listing calls whose order is filesystem-dependent.
LISTING_CALLS = frozenset({
    "os.listdir",
    "os.scandir",
    "glob.glob",
    "glob.iglob",
})
LISTING_METHODS = frozenset({"iterdir", "glob", "rglob"})

#: Order-insensitive consumers a set may flow into.
ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set",
    "frozenset", "bool",
})
#: Order-sensitive materializers.
ORDER_SENSITIVE_CALLS = frozenset({"list", "tuple", "enumerate", "iter"})


def _is_set_expr(node: ast.AST, set_names: Set[str]) -> bool:
    """Whether ``node`` statically evaluates to a ``set``."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in set_names:
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.BitXor, ast.Sub)
    ):
        # set algebra: s | t, s & t, s - t ...
        return _is_set_expr(node.left, set_names) and _is_set_expr(
            node.right, set_names
        )
    return False


def _set_typed_names(func: ast.AST) -> Set[str]:
    """Names assigned *only* set expressions within ``func``'s body.

    Deliberately conservative: a single non-set (re)assignment removes
    the name, and only simple ``name = ...`` targets are tracked.
    """
    candidates: Set[str] = set()
    disqualified: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
            value = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets = [node.target]
            value = node.value
        elif isinstance(node, ast.AugAssign):
            targets = [node.target]
            value = None  # |= keeps the type; treat as neutral
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            if value is None:
                continue
            if _is_set_expr(value, candidates):
                candidates.add(target.id)
            else:
                disqualified.add(target.id)
    return candidates - disqualified


@register
class WallClockRule(ModuleRule):
    """RA001: wall-clock reads in deterministic packages."""

    code = "RA001"
    family = "determinism"
    summary = (
        "wall-clock read (time.time/datetime.now/...) in a "
        "deterministic package; only repro.obs may read clocks"
    )

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        if not config.deterministic(module.name):
            return
        imports = module.imports
        for node in module.calls():
            name = call_name(node, imports)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    module, node,
                    f"wall-clock read `{name}()` breaks run "
                    "reproducibility; derive timestamps in repro.obs "
                    "or pass them in explicitly",
                )


@register
class UnseededRandomRule(ModuleRule):
    """RA002: unseeded / global-state randomness."""

    code = "RA002"
    family = "determinism"
    summary = (
        "unseeded randomness (module-level random/numpy.random use, "
        "default_rng() without a seed) in a deterministic package"
    )

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        if not config.deterministic(module.name):
            return
        imports = module.imports
        for node in module.calls():
            name = call_name(node, imports)
            if name is None:
                continue
            if name in NUMPY_SEEDED_CONSTRUCTORS or name == "random.Random":
                if self._unseeded(node):
                    yield self.finding(
                        module, node,
                        f"`{name}()` without an explicit seed is "
                        "process-dependent; thread the cell/run seed "
                        "through",
                    )
            elif name.startswith("random.") and name.count(".") == 1:
                yield self.finding(
                    module, node,
                    f"`{name}()` uses the global RNG (call-order "
                    "dependent); use a seeded np.random.Generator or "
                    "random.Random(seed) instance",
                )
            elif name.startswith("numpy.random."):
                yield self.finding(
                    module, node,
                    f"`{name}()` uses numpy's global RNG; use a "
                    "seeded np.random.default_rng(seed) instance",
                )

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if not node.args and not node.keywords:
            return True
        first: Optional[ast.expr] = node.args[0] if node.args else None
        if first is None:
            for keyword in node.keywords:
                if keyword.arg in {"seed", "x"}:
                    first = keyword.value
                    break
        return (
            isinstance(first, ast.Constant) and first.value is None
        )


@register
class OrderingHazardRule(ModuleRule):
    """RA003: set-iteration and unsorted directory listings."""

    code = "RA003"
    family = "determinism"
    summary = (
        "nondeterministic ordering: iterating/materializing a set, or "
        "an unsorted directory listing, in a deterministic package"
    )

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        # Ordering hazards are checked in the deterministic packages
        # plus the explicitly-opted-in ordering_hazard_modules (the
        # sharded skyline and resume layers postdate the original
        # deterministic scoping but carry the same byte-identity
        # promise).
        if not (
            config.deterministic(module.name)
            or config.ordering_checked(module.name)
        ):
            return
        imports = module.imports
        nodes = module.walk()

        funcs = [
            n for n in nodes
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        scope_sets: Dict[ast.AST, Set[str]] = {
            func: _set_typed_names(func) for func in funcs
        }

        def set_names_for(node: ast.AST) -> Set[str]:
            current = parent_of(node)
            while current is not None:
                if current in scope_sets:
                    return scope_sets[current]
                current = parent_of(current)
            return set()

        for node in nodes:
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter, set_names_for(node)):
                    yield self.finding(
                        module, node.iter,
                        "iterating a set: element order varies per "
                        "process (hash salting); iterate "
                        "sorted(<set>) instead",
                    )
            elif isinstance(node, ast.comprehension):
                # comprehensions have no lineno; anchor at the iterable
                if _is_set_expr(node.iter, set_names_for(node.iter)):
                    yield self.finding(
                        module, node.iter,
                        "comprehension over a set: element order "
                        "varies per process; use sorted(<set>)",
                    )
            elif isinstance(node, ast.Call):
                name = call_name(node, imports)
                if (
                    name in ORDER_SENSITIVE_CALLS
                    and node.args
                    and _is_set_expr(node.args[0], set_names_for(node))
                ):
                    yield self.finding(
                        module, node,
                        f"`{name}(<set>)` materializes salted hash "
                        "order; use sorted(<set>)",
                    )
                elif self._is_listing(node, name) and not self._sorted_parent(
                    node
                ):
                    yield self.finding(
                        module, node,
                        "directory listing order is "
                        "filesystem-dependent; wrap the call in "
                        "sorted(...)",
                    )

    @staticmethod
    def _is_listing(node: ast.Call, name: Optional[str]) -> bool:
        if name in LISTING_CALLS:
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in LISTING_METHODS
        )

    @staticmethod
    def _sorted_parent(node: ast.AST) -> bool:
        parent = parent_of(node)
        return (
            isinstance(parent, ast.Call)
            and isinstance(parent.func, ast.Name)
            and parent.func.id == "sorted"
            and parent.args
            and parent.args[0] is node
        )

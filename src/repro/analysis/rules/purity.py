"""Sweep-cache purity rules (RA008-RA009).

The result cache addresses a cell by ``(code fingerprint, runner,
config, seed)`` — nothing else. A runner that reads the environment,
or hides state in a mutable default argument, computes payloads the
cache key cannot see, so a warm cache silently serves wrong rows.
These rules check every ``"module:function"`` runner string whose
module part is inside the project:

* **RA008** — the runner must resolve to a *module-level* function in
  the scanned tree (the process pool imports it by name), and its body
  must not read the environment (``os.environ`` / ``os.getenv``).
* **RA009** — the runner must not take mutable default arguments
  (state surviving across cells inside one worker process).

Wall-clock and randomness inside runner bodies are covered by the
determinism rules (RA001/RA002) — runners live in
``repro.experiments``, which is inside the deterministic scope.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import (
    ProjectRule,
    literal_str,
    register,
    resolved_name,
)

#: Shape of a runner reference: dotted module, colon, identifier.
RUNNER_RE = re.compile(
    r"^(?P<module>[A-Za-z_][\w.]*):(?P<func>[A-Za-z_]\w*)$"
)

ENV_READS = frozenset({
    "os.environ",
    "os.getenv",
    "os.environb",
    "os.putenv",
})

MUTABLE_DEFAULT_CALLS = frozenset({
    "list", "dict", "set", "collections.defaultdict",
    "collections.OrderedDict",
})


def _runner_refs(tree, prefix: str) -> List[Tuple[ast.AST, str, str]]:
    """``(node, module, function)`` for every runner-shaped literal.

    ``tree`` may be an AST node or a pre-flattened node list
    (``SourceModule.walk()``).
    """
    out: List[Tuple[ast.AST, str, str]] = []
    nodes = tree if isinstance(tree, (list, tuple)) else ast.walk(tree)
    for node in nodes:
        value = literal_str(node)
        if value is None:
            continue
        match = RUNNER_RE.match(value)
        if match and match.group("module").startswith(prefix):
            out.append((node, match.group("module"), match.group("func")))
    return out


def _is_mutable_default(node: ast.expr, imports: Dict[str, str]) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return resolved_name(node.func, imports) in MUTABLE_DEFAULT_CALLS
    return False


def _env_reads(func: ast.AST, imports: Dict[str, str]) -> Iterator[ast.AST]:
    for node in ast.walk(func):
        if isinstance(node, (ast.Attribute, ast.Name)):
            if resolved_name(node, imports) in ENV_READS:
                yield node


@register
class RunnerPurityRule(ProjectRule):
    """RA008: cell runner unresolvable or environment-dependent."""

    code = "RA008"
    family = "cache-purity"
    summary = (
        'sweep runner ("module:function") must resolve to a '
        "module-level function with no environment reads"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        by_name = {module.name: module for module in modules}
        checked = set()
        for module in modules:
            if module.name.startswith(config.root_package + ".analysis"):
                continue
            for node, target_module, func_name in _runner_refs(
                module.walk(), config.runner_prefix
            ):
                key = (target_module, func_name)
                target = by_name.get(target_module)
                if target is None:
                    # Module outside the scanned tree: resolution is
                    # the runtime's problem (Cell.resolve_runner).
                    continue
                func = self._toplevel_function(target.tree, func_name)
                if func is None:
                    yield self.finding(
                        module, node,
                        f"runner {target_module}:{func_name} does not "
                        "resolve to a module-level function — the "
                        "process pool imports runners by name, so "
                        "nested/class-level functions cannot be cells",
                    )
                    continue
                if key in checked:
                    continue
                checked.add(key)
                imports = target.imports
                for read in _env_reads(func, imports):
                    yield self.finding(
                        target, read,
                        f"cell runner {func_name} reads the "
                        "environment: the cache key cannot see env "
                        "state, so cached payloads would go stale "
                        "silently — pass it through the cell config",
                    )

    @staticmethod
    def _toplevel_function(
        tree: ast.AST, name: str
    ) -> Optional[ast.FunctionDef]:
        for node in getattr(tree, "body", []):
            if isinstance(node, ast.FunctionDef) and node.name == name:
                return node
        return None


@register
class RunnerMutableDefaultRule(ProjectRule):
    """RA009: mutable default argument on a cell runner."""

    code = "RA009"
    family = "cache-purity"
    summary = (
        "cell runner takes a mutable default argument (worker-process "
        "state invisible to the cache key)"
    )

    def check_project(self, modules, config: AnalysisConfig) -> Iterator[Finding]:
        by_name = {module.name: module for module in modules}
        seen = set()
        for module in modules:
            for _, target_module, func_name in _runner_refs(
                module.walk(), config.runner_prefix
            ):
                key = (target_module, func_name)
                if key in seen:
                    continue
                seen.add(key)
                target = by_name.get(target_module)
                if target is None:
                    continue
                func = RunnerPurityRule._toplevel_function(
                    target.tree, func_name
                )
                if func is None:
                    continue
                imports = target.imports
                defaults = list(func.args.defaults) + [
                    d for d in func.args.kw_defaults if d is not None
                ]
                for default in defaults:
                    if _is_mutable_default(default, imports):
                        yield self.finding(
                            target, default,
                            f"cell runner {func_name} has a mutable "
                            "default argument; defaults persist "
                            "across cells in one worker process — "
                            "use None and construct inside",
                        )

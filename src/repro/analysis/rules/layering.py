"""Layering rule (RA004): enforce the package import DAG.

The architecture layers bottom-up as ``exceptions``/``skyline`` →
``data``/``obs`` → ``crowd`` → ``sorting`` → ``core`` → ``query`` →
``experiments`` (``incomplete``/``metrics`` ride at the data level).
Two invariants carry most of the weight:

* nothing imports ``experiments`` back — the evaluation harness stays
  a pure consumer, so algorithm behaviour can never depend on it;
* ``obs`` is importable from anywhere but itself imports only
  ``exceptions`` — observability can observe, never steer.

The allowed-dependency table lives in
:data:`repro.analysis.config.DEFAULT_LAYERS`.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Tuple

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleRule, register


def _imported_packages(
    tree, root: str
) -> List[Tuple[ast.AST, str]]:
    """``(node, dotted-module)`` for every import of the root package.

    ``tree`` may be an AST node or a pre-flattened node list.
    """
    out: List[Tuple[ast.AST, str]] = []
    nodes = tree if isinstance(tree, (list, tuple)) else ast.walk(tree)
    for node in nodes:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == root or alias.name.startswith(root + "."):
                    out.append((node, alias.name))
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level:
                continue  # relative: stays inside the same package
            if node.module == root or node.module.startswith(root + "."):
                out.append((node, node.module))
    return out


@register
class LayeringRule(ModuleRule):
    """RA004: cross-package import outside the allowed DAG."""

    code = "RA004"
    family = "layering"
    summary = (
        "import violates the package DAG (nothing imports "
        "experiments back; obs stays a leaf over exceptions)"
    )

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        root = config.root_package
        if module.name != root and not module.name.startswith(root + "."):
            return
        own = config.top_package(module.name)
        allowed = config.layers.get(own)
        if allowed is None:
            # Unknown package: only the hard invariants apply.
            allowed = frozenset(config.layers) - {"", "experiments"}
        for node, target in _imported_packages(module.walk(), root):
            if target == root:
                dep = "repro"
            else:
                dep = config.top_package(target)
            if dep == own:
                continue
            if dep in allowed:
                continue
            if dep == "experiments":
                message = (
                    f"`{module.name}` imports `{target}`: nothing may "
                    "import the experiment harness back — move shared "
                    "code below repro.experiments"
                )
            elif own == "obs":
                message = (
                    f"repro.obs imports `{target}`: the observability "
                    "layer must stay a leaf over repro.exceptions so "
                    "it can never influence algorithm behaviour"
                )
            else:
                message = (
                    f"`{module.name}` (layer `{own or 'repro'}`) may "
                    f"not import `{target}`; allowed dependencies: "
                    f"{', '.join(sorted(allowed)) or 'none'}"
                )
            yield self.finding(module, node, message)

"""Exception-hygiene rules (RA010-RA011).

Graceful degradation (PR 1) is an explicit, *accounted* decision: the
platform marks pairs unresolved and counts the fault. A bare or silent
``except`` is the opposite — an unaccounted loss of signal. These
rules apply to the whole tree:

* **RA010** — bare ``except:`` (catches ``SystemExit`` /
  ``KeyboardInterrupt`` too; always name the exception type).
* **RA011** — a handler that swallows the exception without a trace:
  its body is only ``pass`` / ``...`` / docstrings. Deliberate
  swallow sites (e.g. racing-cleanup in the sweep cache) carry an
  inline ``# repro: noqa RA011 - <rationale>`` allowlist comment.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.config import AnalysisConfig
from repro.analysis.findings import Finding
from repro.analysis.rules.base import ModuleRule, register


def _is_silent_body(body) -> bool:
    """True when a handler body does nothing observable."""
    for stmt in body:
        if isinstance(stmt, ast.Pass):
            continue
        if isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        ):
            continue  # docstring or `...`
        return False
    return True


@register
class BareExceptRule(ModuleRule):
    """RA010: bare ``except:`` clause."""

    code = "RA010"
    family = "exception-hygiene"
    summary = "bare `except:` — name the exception type(s)"

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        for node in module.walk():
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(
                    module, node,
                    "bare `except:` catches SystemExit and "
                    "KeyboardInterrupt; name the exception type(s)",
                )


@register
class SilentExceptRule(ModuleRule):
    """RA011: silently swallowed exception."""

    code = "RA011"
    family = "exception-hygiene"
    summary = (
        "exception swallowed without a trace (`except ...: pass`); "
        "narrow it, log it, or allowlist with `# repro: noqa RA011`"
    )

    def check_module(self, module, config: AnalysisConfig) -> Iterator[Finding]:
        for node in module.walk():
            if (
                isinstance(node, ast.ExceptHandler)
                and node.type is not None
                and _is_silent_body(node.body)
            ):
                yield self.finding(
                    module, node,
                    "exception swallowed without a trace; handle it, "
                    "narrow it, or annotate the deliberate swallow "
                    "with `# repro: noqa RA011 - <rationale>`",
                )

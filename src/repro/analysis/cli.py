"""``python -m repro.analysis`` / ``repro-analysis`` — the linter CLI.

Subcommands::

    check [PATHS...]     run the rules; exit 1 on non-baselined findings
    rules                list the rule registry
    baseline [PATHS...]  regenerate the suppression baseline

``check`` exits 0 only when the tree is clean modulo the committed
baseline *and* the baseline itself is healthy (every entry matches a
live finding and carries a written rationale). Output is human text by
default; ``--format json`` emits a stable machine-readable document.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import (
    DEFAULT_BASELINE,
    apply_baseline,
    entries_from_findings,
    load_baseline,
    save_baseline,
)
from repro.analysis.config import AnalysisConfig
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import all_rules

#: JSON output document version.
JSON_VERSION = 1


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-analysis",
        description=(
            "AST-based invariant linter: determinism, layering, "
            "obs-schema conformance, sweep-cache purity, exception "
            "hygiene (docs/static-analysis.md)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    check = sub.add_parser(
        "check", help="run the rules and gate on new findings"
    )
    check.add_argument(
        "paths", nargs="*", default=["src"],
        help="files/directories to analyze (default: src)",
    )
    check.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format (default: text)",
    )
    check.add_argument(
        "--baseline", default=DEFAULT_BASELINE,
        help=f"suppression baseline file (default: {DEFAULT_BASELINE})",
    )
    check.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report every finding)",
    )
    check.add_argument(
        "--select", default="",
        help="comma-separated rule codes to run (default: all)",
    )
    check.add_argument(
        "--changed", action="store_true",
        help=(
            "report findings only in files git sees as changed "
            "(staged, unstaged or untracked); the whole tree is "
            "still analyzed so cross-module rules stay sound. "
            "Implies --cache. The pre-commit recipe in "
            "CONTRIBUTING.md uses this."
        ),
    )
    check.add_argument(
        "--cache", action="store_true",
        help=(
            "serve unchanged files' findings from the "
            "content-addressed result cache "
            "($REPRO_ANALYSIS_CACHE_DIR or ~/.cache/crowdsky/"
            "analysis)"
        ),
    )
    check.add_argument(
        "--no-cache", action="store_true",
        help="bypass the result cache even with --changed",
    )

    rules = sub.add_parser("rules", help="list the rule registry")
    rules.add_argument(
        "--format", choices=("text", "json"), default="text",
    )

    baseline = sub.add_parser(
        "baseline", help="regenerate the suppression baseline"
    )
    baseline.add_argument("paths", nargs="*", default=["src"])
    baseline.add_argument("--baseline", default=DEFAULT_BASELINE)
    baseline.add_argument(
        "--write", action="store_true",
        help="write the baseline file (default: print what would be)",
    )
    baseline.add_argument("--select", default="")
    return parser


def _select(raw: str) -> Optional[List[str]]:
    codes = [code.strip() for code in raw.split(",") if code.strip()]
    return codes or None


def _git_changed_files() -> Optional[List[str]]:
    """Absolute paths of ``.py`` files git reports as changed
    (staged, unstaged, or untracked); ``None`` outside a work tree."""
    import subprocess

    try:
        proc = subprocess.run(
            ["git", "status", "--porcelain", "--untracked-files=all"],
            capture_output=True, text=True, timeout=30, check=True,
        )
        top = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            capture_output=True, text=True, timeout=30, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        return None
    changed: List[str] = []
    for line in proc.stdout.splitlines():
        # porcelain v1: two status columns, a space, then the path
        # (renames are "old -> new"; the new side is what exists)
        path = line[3:].split(" -> ")[-1].strip().strip('"')
        if path.endswith(".py"):
            changed.append(str(Path(top) / path))
    return changed


def _cmd_check(args: argparse.Namespace) -> int:
    config = AnalysisConfig()
    select = _select(args.select)
    use_cache = (args.cache or args.changed) and not args.no_cache
    cache = None
    if use_cache:
        from repro.analysis.cache import analyze_paths_cached

        findings, problems, cache = analyze_paths_cached(
            args.paths, config, select
        )
    else:
        findings, problems = analyze_paths(args.paths, config, select)

    changed: Optional[set] = None
    if args.changed:
        files = _git_changed_files()
        if files is None:
            print(
                "repro-analysis: --changed requires a git work tree",
                file=sys.stderr,
            )
            return 2
        changed = {str(Path(f).resolve()) for f in files}
        findings = [
            f for f in findings
            if str(Path(f.path).resolve()) in changed
        ]

    if args.no_baseline:
        gate = list(findings)
        matched = 0
    elif args.changed:
        # diff-scoped runs see a partial finding set, so baseline
        # health (stale entries, missing rationales) can't be judged;
        # only subtract baselined findings, don't gate the baseline
        result = apply_baseline(findings, load_baseline(args.baseline))
        gate = list(result.new)
        matched = len(result.matched)
    else:
        result = apply_baseline(findings, load_baseline(args.baseline))
        gate = result.gate_findings()
        matched = len(result.matched)

    if args.format == "json":
        document = {
            "version": JSON_VERSION,
            "findings": [finding.to_json() for finding in gate],
            "errors": [
                {"path": problem.path, "message": problem.message}
                for problem in problems
            ],
            "summary": {
                "checked_paths": list(args.paths),
                "findings": len(gate),
                "baselined": matched,
                "parse_errors": len(problems),
            },
        }
        if cache is not None:
            document["summary"]["cache"] = {
                "hits": cache.hits, "misses": cache.misses,
            }
        if changed is not None:
            document["summary"]["changed_files"] = len(changed)
        print(json.dumps(document, indent=2))
    else:
        for problem in problems:
            print(f"{problem.path}: parse error: {problem.message}",
                  file=sys.stderr)
        for finding in gate:
            print(finding.render())
        notes = []
        if matched:
            notes.append(f"{matched} baselined")
        if changed is not None:
            notes.append(f"diff-scoped to {len(changed)} file(s)")
        if cache is not None:
            notes.append(
                f"cache {cache.hits} hit(s) / {cache.misses} miss(es)"
            )
        suffix = f" ({'; '.join(notes)})" if notes else ""
        if gate:
            print(f"\n{len(gate)} finding(s){suffix}")
        else:
            print(f"clean{suffix}")
    return 1 if gate or problems else 0


def _cmd_rules(args: argparse.Namespace) -> int:
    rules = all_rules()
    if args.format == "json":
        print(json.dumps({
            "version": JSON_VERSION,
            "rules": [
                {
                    "code": rule.code,
                    "family": rule.family,
                    "severity": rule.severity,
                    "summary": rule.summary,
                }
                for rule in rules
            ],
        }, indent=2))
    else:
        for rule in rules:
            print(f"{rule.code}  {rule.family:<18} "
                  f"[{rule.severity}] {rule.summary}")
    return 0


def _cmd_baseline(args: argparse.Namespace) -> int:
    findings, problems = analyze_paths(
        args.paths, AnalysisConfig(), _select(args.select)
    )
    for problem in problems:
        print(f"{problem.path}: parse error: {problem.message}",
              file=sys.stderr)
    existing = load_baseline(args.baseline)
    entries = entries_from_findings(findings, existing)
    if args.write:
        save_baseline(args.baseline, entries)
        print(
            f"wrote {len(entries)} entr{'y' if len(entries) == 1 else 'ies'} "
            f"to {args.baseline}"
        )
        todo = [e for e in entries if e.rationale.startswith("TODO")]
        if todo:
            print(
                f"{len(todo)} entr{'y needs' if len(todo) == 1 else 'ies need'} "
                "a written rationale before `check` passes",
                file=sys.stderr,
            )
    else:
        for entry in entries:
            print(f"{entry.code} {entry.path}: {entry.context!r}"
                  f" — {entry.rationale}")
        print(f"\n{len(entries)} entr{'y' if len(entries) == 1 else 'ies'}"
              " (use --write to persist)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "check":
        return _cmd_check(args)
    if args.command == "rules":
        return _cmd_rules(args)
    return _cmd_baseline(args)

"""CrowdSky: Skyline Computation with Crowdsourcing — full reproduction.

Reproduces Lee, Lee & Kim, EDBT 2016 (DOI 10.5441/002/edbt.2016.14): a
crowd-enabled skyline engine that asks human workers pairwise questions
to fill missing (crowd) attributes, minimizing monetary cost via
dominating-set pruning, latency via parallel round scheduling, and
improving accuracy via dynamic majority voting.

Quick start::

    from repro import crowdsky, generate_synthetic, Distribution

    relation = generate_synthetic(500, num_known=4, num_crowd=1,
                                  distribution=Distribution.INDEPENDENT,
                                  seed=0)
    result = crowdsky(relation)
    print(result.summary())

See README.md for the architecture overview and examples/ for runnable
scenarios.
"""

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import (
    CrowdSkyConfig,
    PruningLevel,
    crowdsky,
    crowdsky_budgeted,
)
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.preference import ContradictionPolicy, PreferenceSystem
from repro.core.result import CrowdSkylineResult
from repro.core.resume import replay_run, resume_run
from repro.core.unary import unary_skyline
from repro.crowd.backends import (
    CrowdBackend,
    ReplayBackend,
    SimulatedBackend,
)
from repro.crowd.faults import FaultPlan, FaultStats
from repro.crowd.journal import (
    JournalWriter,
    RecoveredJournal,
    recover_journal,
)
from repro.crowd.platform import CrowdStats, SimulatedCrowd
from repro.crowd.retry import RetryPolicy
from repro.crowd.voting import DynamicVoting, StaticVoting
from repro.crowd.workers import (
    BernoulliWorker,
    DifficultyAwareWorker,
    PerfectWorker,
    SkilledWorker,
    SpammerWorker,
    WorkerPool,
)
from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)
from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import (
    BudgetExhaustedError,
    CrowdSkyError,
    FaultInjectionError,
    JournalError,
    JournalReplayError,
    QuestionTimeoutError,
    RetriesExhaustedError,
)
from repro.metrics.accuracy import (
    AccuracyReport,
    ak_skyline,
    ground_truth_skyline,
    precision_recall,
)
from repro.obs import (
    MetricsRegistry,
    Tracer,
    current_observation,
    observe,
    summarize_trace,
)
from repro.query.executor import execute_query
from repro.query.parser import parse_query
from repro.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)

__version__ = "1.0.0"

__all__ = [
    "AccuracyReport",
    "Attribute",
    "AttributeKind",
    "BernoulliWorker",
    "BudgetExhaustedError",
    "ContradictionPolicy",
    "CrowdBackend",
    "CrowdSkyConfig",
    "CrowdSkyError",
    "CrowdSkylineResult",
    "CrowdStats",
    "DifficultyAwareWorker",
    "Direction",
    "Distribution",
    "DynamicVoting",
    "FaultInjectionError",
    "FaultPlan",
    "FaultStats",
    "JournalError",
    "JournalReplayError",
    "JournalWriter",
    "MetricsRegistry",
    "MultiwayQuestion",
    "PairwiseQuestion",
    "PerfectWorker",
    "Preference",
    "PreferenceSystem",
    "PruningLevel",
    "QuestionTimeoutError",
    "RecoveredJournal",
    "Relation",
    "ReplayBackend",
    "RetriesExhaustedError",
    "RetryPolicy",
    "Schema",
    "SimulatedBackend",
    "SimulatedCrowd",
    "SkilledWorker",
    "SpammerWorker",
    "StaticVoting",
    "Tracer",
    "Tuple",
    "UnaryQuestion",
    "WorkerPool",
    "ak_skyline",
    "baseline_skyline",
    "crowdsky",
    "crowdsky_budgeted",
    "current_observation",
    "execute_query",
    "generate_synthetic",
    "ground_truth_skyline",
    "observe",
    "parallel_dset",
    "parallel_sl",
    "parse_query",
    "precision_recall",
    "recover_journal",
    "replay_run",
    "resume_run",
    "summarize_trace",
    "unary_skyline",
]

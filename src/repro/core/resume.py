"""Crash recovery: resume or replay a journaled crowd run.

A run started with a journal directory attached (``SimulatedCrowd(...,
journal=path)``) survives its process. :func:`resume_run` recovers the
journal (healing torn tails, see :func:`repro.crowd.journal
.recover_journal`), rebuilds the crowd from the header's recipe, and
*re-executes the algorithm from the beginning* with a
:class:`~repro.crowd.backends.ReplayBackend` serving the journaled
prefix — consuming no randomness and asking no fresh questions — then
hands over to a live backend restored to the last committed RNG
state. Because the platform derives all accounting from backend
outcomes, the resumed run's result, stats and continued journal are
byte-identical to an uninterrupted run (the crash-injection suite in
``tests/test_recovery.py`` proves this at every write point).

:func:`replay_run` is the zero-cost variant for *finished* journals:
no live backend, no writer — a question beyond the recorded postings
raises :class:`~repro.exceptions.JournalReplayError`, which is the
proof that a replay never spends a cent.

The dataset itself is not journaled (it can be arbitrarily large);
callers pass the relation and the header's fingerprint guards against
resuming someone else's journal.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.core.crowdsky import (
    CrowdSkyConfig,
    crowdsky,
    crowdsky_budgeted,
)
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.result import CrowdSkylineResult
from repro.crowd.backends import ReplayBackend
from repro.crowd.faults import FaultPlan
from repro.crowd.hits import HitLedger
from repro.crowd.journal import (
    JOURNAL_VERSION,
    JournalWriter,
    RecoveredJournal,
    recover_journal,
)
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.retry import RetryPolicy
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.data.relation import Relation, relation_fingerprint
from repro.exceptions import JournalError, JournalReplayError
from repro.obs import current_observation


def crowd_from_spec(
    relation: Relation, spec: Dict[str, Any]
) -> SimulatedCrowd:
    """Rebuild a crowd platform from a journal header's recipe.

    The recipe (written by
    :meth:`~repro.crowd.platform.SimulatedCrowd.journal_spec`) covers
    perfect/uniform pools, static voting, fault rates, the retry
    policy and seed-built HIT ledgers. RNG positions are *not* part of
    the recipe — the replay backend restores them from the journal's
    state snapshots.
    """
    faults = (
        FaultPlan(**spec["faults"]) if spec.get("faults") else None
    )
    retry = (
        RetryPolicy(**spec["retry"]) if spec.get("retry") else None
    )
    ledger = (
        HitLedger.from_spec(spec["ledger"]) if spec.get("ledger") else None
    )
    return SimulatedCrowd(
        relation,
        pool=WorkerPool.from_spec(spec["pool"]),
        voting=StaticVoting(omega=spec["voting"]["omega"]),
        max_questions=spec.get("max_questions"),
        ledger=ledger,
        faults=faults,
        retry=retry,
        strict=spec.get("strict"),
    )


def _check_header(
    recovered: RecoveredJournal, relation: Relation
) -> Dict[str, Any]:
    header = recovered.header
    if header is None:
        raise JournalError(
            f"journal {recovered.directory} has no header record; "
            "nothing to resume"
        )
    version = header.get("journal_version")
    if version != JOURNAL_VERSION:
        raise JournalError(
            f"journal {recovered.directory} uses format version "
            f"{version!r}, this build reads {JOURNAL_VERSION}"
        )
    recorded = header.get("relation", {}).get("fingerprint")
    if recorded is not None and recorded != relation_fingerprint(relation):
        raise JournalReplayError(
            "the journal was recorded against a different dataset "
            "(relation fingerprint mismatch); pass the relation the "
            "original run used"
        )
    return header


def _prepare_crowd(
    recovered: RecoveredJournal,
    relation: Relation,
    crowd: Optional[SimulatedCrowd],
    header: Dict[str, Any],
) -> SimulatedCrowd:
    if crowd is None:
        spec = header.get("spec")
        if spec is None:
            raise JournalError(
                "the journal header carries no crowd recipe (the "
                "original crowd used hand-built components); pass an "
                "equivalent crowd explicitly"
            )
        crowd = crowd_from_spec(relation, spec)
    return crowd


def _dispatch(
    header: Dict[str, Any],
    relation: Relation,
    crowd: SimulatedCrowd,
) -> CrowdSkylineResult:
    """Re-run the journaled algorithm with its recorded arguments."""
    algorithm = header.get("algorithm")
    run = header.get("run", {})
    raw_config = run.get("config")
    config = (
        CrowdSkyConfig.from_payload(raw_config) if raw_config else None
    )
    if algorithm == "crowdsky":
        return crowdsky(
            relation, crowd, config, visible_crowd=run.get("visible_crowd")
        )
    if algorithm == "crowdsky_budgeted":
        return crowdsky_budgeted(
            relation, run["max_questions"], crowd, config
        )
    if algorithm == "parallel_dset":
        return parallel_dset(
            relation, crowd, config, visible_crowd=run.get("visible_crowd")
        )
    if algorithm == "parallel_sl":
        return parallel_sl(
            relation, crowd, config, visible_crowd=run.get("visible_crowd")
        )
    raise JournalError(
        f"journal header names unknown algorithm {algorithm!r}"
    )


def _emit_resumed(header: Dict[str, Any], replay: ReplayBackend) -> None:
    observation = current_observation()
    if observation.enabled:
        observation.tracer.event(
            "run.resumed",
            algorithm=str(header.get("algorithm")),
            replayed=replay.replayed,
        )


def resume_run(
    journal: Union[RecoveredJournal, str, Path],
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    heal: bool = True,
) -> CrowdSkylineResult:
    """Continue an interrupted journaled run to completion.

    Parameters
    ----------
    journal:
        The journal directory (or an already-recovered
        :class:`~repro.crowd.journal.RecoveredJournal`).
    relation:
        The dataset the original run used; checked against the
        header's fingerprint.
    crowd:
        Optional replacement platform for runs whose crowd cannot be
        rebuilt from the header recipe. Its RNG state is overwritten
        from the journal at the replay→live handover, so only its
        component *kinds* must match the original.
    heal:
        Rewrite corrupted segments down to the valid prefix before
        resuming (required for the writer to append again).

    The resumed run continues journaling where the original stopped,
    and its result is byte-identical to a never-interrupted run.
    """
    recovered = (
        journal
        if isinstance(journal, RecoveredJournal)
        else recover_journal(journal, heal=heal)
    )
    header = _check_header(recovered, relation)
    crowd = _prepare_crowd(recovered, relation, crowd, header)
    replay = ReplayBackend(
        recovered.postings, header.get("state"), live=crowd.backend
    )
    crowd.install_backend(replay)
    crowd.install_journal(JournalWriter.resume(recovered))
    result = _dispatch(header, relation, crowd)
    _emit_resumed(header, replay)
    return result


def replay_run(
    journal: Union[RecoveredJournal, str, Path],
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
) -> CrowdSkylineResult:
    """Re-execute a *finished* journaled run at zero crowd cost.

    Pure-replay mode: no writer is attached and there is no live
    backend, so every answer comes from the journal and a question
    beyond the recorded postings raises
    :class:`~repro.exceptions.JournalReplayError`. Use this as a
    deterministic, free re-run of an expensive crowd execution (e.g.
    to re-collect traces or metrics with different observability
    settings).
    """
    recovered = (
        journal
        if isinstance(journal, RecoveredJournal)
        else recover_journal(journal, heal=False)
    )
    header = _check_header(recovered, relation)
    crowd = _prepare_crowd(recovered, relation, crowd, header)
    replay = ReplayBackend(
        recovered.postings, header.get("state"), live=None
    )
    crowd.install_backend(replay)
    crowd.install_journal(None)
    result = _dispatch(header, relation, crowd)
    _emit_resumed(header, replay)
    return result

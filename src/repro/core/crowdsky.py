"""The serial CrowdSky algorithm (paper Algorithm 1, §3).

``crowdsky`` minimizes monetary cost: one pair-wise question per round,
evaluation in ascending ``|DS(t)|`` order, with the pruning ladder

* **DSet** (§3.1) — restrict questions to dominating sets (Lemma 1),
* **P1** (§3.2) — evaluation ordering + dropping complete non-skyline
  tuples from later dominating sets (Corollary 1) + early termination of
  ``Q(t)`` once ``t`` is dominated,
* **P2** (§3.3) — reduce ``DS(t)`` to ``SKY_AC(DS(t))`` using the
  transitivity captured in the preference graph (Corollary 2),
* **P3** (§3.4) — probe pairs inside ``DS(t)`` ordered by descending
  ``freq(u, v)`` before generating ``Q(t)``.

The :class:`PruningLevel` presets mirror the paper's Figures 6-7 series
(``Baseline`` is :func:`repro.core.baseline.baseline_skyline`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Set

from repro.core.engine import (
    ExecutionContext,
    ask_pair,
    build_context,
    ensure_run_header,
    record_pref_stats,
    record_tuple,
    request_unresolved,
    tuple_trace,
)
from repro.core.preference import ContradictionPolicy
from repro.core.result import CrowdSkylineResult
from repro.core.tasks import TaskOutcome, TupleTask
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import Preference
from repro.data.relation import Relation
from repro.exceptions import BudgetExhaustedError
from repro.obs import current_observation, phase, run_span
from repro.obs.metrics import TUPLES_EVALUATED


class PruningLevel(enum.Enum):
    """The paper's ablation ladder over CrowdSky's pruning methods."""

    DSET = "DSet"
    P1 = "P1"
    P1_P2 = "P1+P2"
    P1_P2_P3 = "P1+P2+P3"

    @property
    def use_p1(self) -> bool:
        return self is not PruningLevel.DSET

    @property
    def use_p2(self) -> bool:
        return self in (PruningLevel.P1_P2, PruningLevel.P1_P2_P3)

    @property
    def use_p3(self) -> bool:
        return self is PruningLevel.P1_P2_P3


@dataclass(frozen=True)
class CrowdSkyConfig:
    """Execution options for CrowdSky and the parallel schedulers.

    Parameters
    ----------
    pruning:
        Which pruning methods are active (default: all, the full
        CrowdSky).
    policy:
        Contradiction handling for noisy crowds.
    ac_round_robin:
        Ask multi-attribute pairs one crowd attribute per round, skipping
        the rest once the pair's outcome is decided (the optional
        round-robin strategy mentioned in §6.1).
    probe_ascending:
        Ablation: probe pairs in ascending ``freq`` order (Algorithm 1
        line 11's literal wording) instead of the prose's descending.
    multiway:
        Probe with m-ary questions showing up to this many tuples at
        once (the §2.1 extension; effective with ``|AC| = 1``). The
        default 2 keeps the paper's pairwise format.
    backend:
        Preference-closure backend: ``'numpy'`` (packed uint64 closure
        matrices with bulk query kernels, the fast default),
        ``'bitset'`` (incremental Python-int bitset closure) or
        ``'reference'`` (the original set-based implementation). None
        defers to the ``REPRO_PREF_BACKEND`` environment variable. All
        backends produce identical questions, rounds and skylines — the
        differential suite pins them together.
    shards:
        Shard count for the machine phase (``1`` = the serial path).
        Any value yields byte-identical layers, dominating sets and
        question order (docs/sharding.md); ``tests/test_sharded.py``
        pins the equality.
    shard_jobs:
        Worker processes for the sharded machine phase; ``1`` computes
        shards inline (still skipping the serial path's duplicate
        dominance pass), ``> 1`` fans out over a
        ``ProcessPoolExecutor``.
    shard_partitioner:
        ``'range'`` (contiguous blocks) or ``'hash'`` (seeded hash
        assignment); see :data:`repro.skyline.sharded.PARTITIONERS`.
    """

    pruning: PruningLevel = PruningLevel.P1_P2_P3
    policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST
    ac_round_robin: bool = False
    probe_ascending: bool = False
    multiway: int = 2
    backend: Optional[str] = None
    shards: int = 1
    shard_jobs: int = 1
    shard_partitioner: str = "range"

    def to_payload(self) -> dict:
        """JSON-able form, recorded in a run's journal header."""
        return {
            "pruning": self.pruning.value,
            "policy": self.policy.value,
            "ac_round_robin": self.ac_round_robin,
            "probe_ascending": self.probe_ascending,
            "multiway": self.multiway,
            "backend": self.backend,
            "shards": self.shards,
            "shard_jobs": self.shard_jobs,
            "shard_partitioner": self.shard_partitioner,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "CrowdSkyConfig":
        """Inverse of :meth:`to_payload` (the resume path).

        The shard fields default when absent so journals written before
        the sharded machine phase existed still resume.
        """
        return cls(
            pruning=PruningLevel(payload["pruning"]),
            policy=ContradictionPolicy(payload["policy"]),
            ac_round_robin=payload["ac_round_robin"],
            probe_ascending=payload["probe_ascending"],
            multiway=payload["multiway"],
            backend=payload["backend"],
            shards=payload.get("shards", 1),
            shard_jobs=payload.get("shard_jobs", 1),
            shard_partitioner=payload.get("shard_partitioner", "range"),
        )


def crowdsky(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    config: Optional[CrowdSkyConfig] = None,
    visible_crowd: Optional[Iterable[int]] = None,
) -> CrowdSkylineResult:
    """Compute the crowdsourced skyline of ``relation`` serially.

    Parameters
    ----------
    relation:
        Dataset with at least one crowd attribute.
    crowd:
        Crowd platform; defaults to a perfect simulated crowd (the §3
        assumption). Pass a noisy :class:`SimulatedCrowd` for accuracy
        experiments.
    config:
        Pruning/selection options.
    visible_crowd:
        Tuple indices whose crowd values are stored in the database (the
        §2.2 partial-incompleteness extension): their mutual preferences
        are seeded into the preference graph and never crowdsourced.

    Returns
    -------
    CrowdSkylineResult
        Skyline indices plus full question/round/cost accounting.
    """
    config = config or CrowdSkyConfig()
    if crowd is None:
        crowd = SimulatedCrowd(relation)
    crowd.set_cost_context(scheduler="crowdsky")
    visible = (
        sorted(set(visible_crowd)) if visible_crowd is not None else None
    )
    ensure_run_header(
        crowd,
        "crowdsky",
        {"config": config.to_payload(), "visible_crowd": visible},
    )
    with run_span(
        "crowdsky", n=len(relation), pruning=config.pruning.value
    ) as span:
        context = build_context(
            relation,
            crowd,
            policy=config.policy,
            ac_round_robin=config.ac_round_robin,
            visible_crowd=visible,
            backend=config.backend,
            shards=config.shards,
            shard_jobs=config.shard_jobs,
            shard_partitioner=config.shard_partitioner,
        )
        result = _run_serial(context, config)
    if span is not None:
        result.wall_time_s = span.duration_s
    return result


def crowdsky_budgeted(
    relation: Relation,
    max_questions: int,
    crowd: Optional[SimulatedCrowd] = None,
    config: Optional[CrowdSkyConfig] = None,
) -> CrowdSkylineResult:
    """CrowdSky under a fixed question budget (the setting of [12]).

    The paper's CrowdSky computes a *complete* skyline by spending as
    many questions as its pruning requires; the prior work [12] instead
    fixes a budget and returns a best-effort answer. This extension runs
    CrowdSky until ``max_questions`` are spent, then finalizes with the
    paper's default-skyline semantics (§2.3): a tuple stays in the
    skyline unless some dominating-set member is already known to
    dominate it. With a generous budget the result equals the complete
    skyline; with zero budget it degrades to ``SKY_AK(R)`` plus every
    incomplete tuple.

    Returns a result with ``budget_exhausted`` and ``complete_tuples``
    populated.
    """
    config = config or CrowdSkyConfig()
    if crowd is None:
        crowd = SimulatedCrowd(relation)
    crowd.set_cost_context(scheduler="crowdsky_budgeted")
    crowd.set_budget(max_questions)
    ensure_run_header(
        crowd,
        "crowdsky_budgeted",
        {"config": config.to_payload(), "max_questions": max_questions},
    )
    with run_span(
        "crowdsky_budgeted", n=len(relation), budget=max_questions
    ) as span:
        result = _run_budgeted(relation, crowd, config, max_questions)
    if span is not None:
        result.wall_time_s = span.duration_s
    return result


def _run_budgeted(
    relation: Relation,
    crowd: SimulatedCrowd,
    config: CrowdSkyConfig,
    max_questions: int,
) -> CrowdSkylineResult:
    try:
        context = build_context(
            relation,
            crowd,
            policy=config.policy,
            ac_round_robin=config.ac_round_robin,
            backend=config.backend,
            shards=config.shards,
            shard_jobs=config.shard_jobs,
            shard_partitioner=config.shard_partitioner,
        )
    except BudgetExhaustedError:
        # Not even the degenerate-case preprocessing fit the budget. With
        # zero AC knowledge every tuple is incomparable and by default in
        # the skyline (§2.3).
        return CrowdSkylineResult(
            skyline=set(range(len(relation))),
            stats=crowd.stats,
            question_log=list(crowd.question_log),
            algorithm=f"CrowdSky[budget={max_questions}]",
            budget_exhausted=True,
            complete_tuples=0,
            degraded=True,
            fault_stats=crowd.fault_stats,
            metrics=crowd.metrics,
            cost_records=list(crowd.cost_records),
        )
    level = config.pruning
    order = context.eval_order() if level.use_p1 else [
        t for t in range(context.n) if t not in context.removed
    ]

    complete_non_skyline: Set[int] = set(context.removed)
    skyline: Set[int] = set()
    complete = len(context.removed)
    exhausted = False
    undecided: Set[int] = set()

    with phase("evaluate"):
        trace = tuple_trace()
        for t in order:
            if exhausted:
                undecided.add(t)
                continue
            if not context.dominating[t]:
                skyline.add(t)
                complete += 1
                record_tuple(context, trace, t, "skyline")
                continue
            context.crowd.set_cost_context(phase="evaluate", tuple=t)
            task = TupleTask(
                t,
                context.ds_in_eval_order(t),
                context.prefs,
                context.frequency,
                use_p1=level.use_p1,
                use_p2=level.use_p2,
                use_p3=level.use_p3,
                probe_ascending=config.probe_ascending,
                multiway=config.multiway,
            )
            task.activate(complete_non_skyline)
            try:
                request = task.advance()
                while request is not None:
                    ask_pair(context, request)
                    if request_unresolved(context, request):
                        task.abandon_request(request)
                    request = task.advance()
            except BudgetExhaustedError:
                exhausted = True
                undecided.add(t)
                continue
            complete += 1
            if task.outcome is TaskOutcome.NON_SKYLINE:
                complete_non_skyline.add(t)
            else:
                skyline.add(t)
            record_tuple(context, trace, t, task.outcome.value)

    context.crowd.set_cost_context(phase="finalize", tuple=None)
    # Default-skyline finalization for undecided tuples: keep them unless
    # a dominating-set member already dominates them in current knowledge
    # (any member counts — even a non-skyline one dominates t in A).
    # All candidate pairs are settled against the closure in one batch;
    # the undecided set is sorted once and reused (it is fixed here).
    undecided_order = sorted(undecided)
    finalize = context.prefs.resolve_pairs(
        (s, t) for t in undecided_order for s in context.dominating[t]
    )
    for t in undecided_order:
        dominated = any(
            all(
                rel is not None and rel is not Preference.RIGHT
                for rel in finalize[(s, t)]
            )
            for s in context.dominating[t]
        )
        if not dominated:
            skyline.add(t)

    record_pref_stats(context)
    return CrowdSkylineResult(
        skyline=skyline,
        stats=context.crowd.stats,
        question_log=list(context.crowd.question_log),
        algorithm=f"CrowdSky[{level.value}, budget={max_questions}]",
        rejected_answers=context.prefs.total_rejected(),
        budget_exhausted=exhausted or context.crowd.budget_degraded,
        complete_tuples=complete,
        degraded=exhausted or context.degraded,
        unresolved_pairs=sorted(context.unresolved_pairs),
        fault_stats=context.crowd.fault_stats,
        metrics=context.crowd.metrics,
        cost_records=list(context.crowd.cost_records),
    )


def _run_serial(
    context: ExecutionContext, config: CrowdSkyConfig
) -> CrowdSkylineResult:
    level = config.pruning
    if level.use_p1:
        order = context.eval_order()
    else:
        order = [t for t in range(context.n) if t not in context.removed]

    complete_non_skyline: Set[int] = set(context.removed)
    skyline: Set[int] = set()

    with phase("evaluate"):
        trace = tuple_trace()
        for t in order:
            if not context.dominating[t]:
                skyline.add(t)  # complete skyline tuple from start (§2.3)
                record_tuple(context, trace, t, "skyline")
                continue
            context.crowd.set_cost_context(phase="evaluate", tuple=t)
            task = TupleTask(
                t,
                context.ds_in_eval_order(t),
                context.prefs,
                context.frequency,
                use_p1=level.use_p1,
                use_p2=level.use_p2,
                use_p3=level.use_p3,
                probe_ascending=config.probe_ascending,
                multiway=config.multiway,
            )
            task.activate(complete_non_skyline)
            request = task.advance()
            while request is not None:
                ask_pair(context, request)
                if request_unresolved(context, request):
                    task.abandon_request(request)
                request = task.advance()
            if task.outcome is TaskOutcome.NON_SKYLINE:
                complete_non_skyline.add(t)
            else:
                skyline.add(t)
            record_tuple(context, trace, t, task.outcome.value)

    record_pref_stats(context)
    return CrowdSkylineResult(
        skyline=skyline,
        stats=context.crowd.stats,
        question_log=list(context.crowd.question_log),
        algorithm=f"CrowdSky[{level.value}]",
        rejected_answers=context.prefs.total_rejected(),
        degraded=context.degraded,
        unresolved_pairs=sorted(context.unresolved_pairs),
        fault_stats=context.crowd.fault_stats,
        budget_exhausted=context.crowd.budget_degraded,
        metrics=context.crowd.metrics,
        cost_records=list(context.crowd.cost_records),
    )

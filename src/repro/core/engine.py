"""Shared machinery between the serial and parallel schedulers.

Holds the execution context (dominance structures, preference system,
crowd handle) plus the primitives every scheduler needs: asking a pair as
one round, asking a batch of pairs as one round, and the degenerate-case
preprocessing of Algorithm 1 lines 1-3 (tuples with identical ``AK``
values).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple as TupleT, Union

import numpy as np

from repro.core.preference import ContradictionPolicy, PreferenceSystem
from repro.core.tasks import MultiwayRequest, PairRequest
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
)
from repro.data.relation import Relation, relation_fingerprint
from repro.exceptions import CrowdSkyError
from repro.obs import NOOP_TRACER, current_observation, phase
from repro.obs.metrics import (
    CLOSURE_UPDATES,
    PREF_CACHE_HITS,
    QUESTIONS_SAVED_TRANSITIVITY,
    TUPLES_EVALUATED,
)
from repro.skyline.dominating import (
    FrequencyOracle,
    dominating_sets,
    dominating_sets_from_matrix,
    evaluation_order,
)
from repro.skyline.dominance import dominance_matrix
from repro.skyline.sharded import PARTITIONERS, sharded_dominance_matrix


@dataclass
class ExecutionContext:
    """Everything a scheduler needs to evaluate tuples.

    Build one with :func:`build_context`; schedulers then share the
    preference system, dominance matrix, dominating sets and frequency
    oracle without recomputation.
    """

    relation: Relation
    crowd: SimulatedCrowd
    prefs: PreferenceSystem
    matrix: np.ndarray
    dominating: List[Set[int]]
    frequency: FrequencyOracle
    removed: Set[int] = field(default_factory=set)
    ac_round_robin: bool = False
    #: Question keys ``(u, v, attribute)`` the crowd permanently gave up
    #: on (fault-tolerant runs) — treated conservatively as incomparable.
    unresolved_pairs: Set[TupleT[int, int, int]] = field(
        default_factory=set
    )
    #: Memoized :meth:`eval_order` result and the ``removed`` snapshot it
    #: was computed against (``removed`` is mutated in place by callers).
    _order_cache: Optional[List[int]] = field(
        default=None, repr=False, compare=False
    )
    _order_removed: Optional[frozenset] = field(
        default=None, repr=False, compare=False
    )

    @property
    def degraded(self) -> bool:
        """Whether any question was given up on (pairs unresolved or the
        budget ran out in non-strict mode)."""
        return bool(self.unresolved_pairs) or self.crowd.budget_degraded

    @property
    def n(self) -> int:
        """Relation cardinality."""
        return len(self.relation)

    def eval_order(self) -> List[int]:
        """Tuples in ascending ``|DS(t)|`` order, preprocessed tuples
        excluded.

        The order is memoized (``dominating`` is fixed after
        :func:`build_context`) and recomputed only when ``removed`` has
        changed since the last call.
        """
        removed = frozenset(self.removed)
        if self._order_cache is None or self._order_removed != removed:
            order = evaluation_order(self.dominating)
            self._order_cache = [t for t in order if t not in removed]
            self._order_removed = removed
        return list(self._order_cache)

    def ds_in_eval_order(self, t: int) -> List[int]:
        """``DS(t)`` members sorted by their own evaluation position."""
        members = self.dominating[t]
        return sorted(members, key=lambda s: (len(self.dominating[s]), s))


def seed_visible_preferences(
    prefs: PreferenceSystem,
    relation: Relation,
    visible: Iterable[int],
) -> int:
    """Pre-populate ``T`` for tuples whose crowd values are stored.

    The paper's §2.2 notes that in real applications only a *subset* of
    tuples has missing values, and the stored values "can be represented
    by a pre-defined partial order". This seeds exactly that order: for
    every crowd attribute, the visible tuples are sorted by their stored
    (latent) value and chained with strict/tie edges — transitivity then
    derives all ``O(k²)`` pairwise relations from ``k − 1`` edges, so
    questions between two visible tuples are never asked.

    Returns the number of edges inserted.
    """
    visible = sorted(set(visible))
    if len(visible) < 2:
        return 0
    latent = relation.latent_matrix()
    edges = 0
    for attribute in range(relation.schema.num_crowd):
        ordered = sorted(visible, key=lambda t: (latent[t, attribute], t))
        for left, right in zip(ordered, ordered[1:]):
            if latent[left, attribute] < latent[right, attribute]:
                answer = Preference.LEFT
            else:
                answer = Preference.EQUAL
            # Machine-phase seeding precedes the first crowd round:
            # there is no open verdict transaction to batch into, and
            # these edges are derived (free), not crowd answers.
            prefs.add_answer(left, right, attribute, answer)  # repro: noqa RA016 - pre-round machine seeding, no transaction exists yet
            edges += 1
    return edges


def ensure_run_header(
    crowd: SimulatedCrowd, algorithm: str, run: Dict[str, object]
) -> None:
    """Write the journal header once, before any question is posted.

    Every run entry calls this right after the crowd exists and before
    :func:`build_context` (whose duplicate preprocessing may already
    ask rounds). The header pins down what a resume needs: the
    algorithm and its arguments, the dataset fingerprint, the crowd
    construction recipe (when reconstructible) and the backend's
    initial state. A resumed run arrives here with the header already
    on disk, so this is a no-op for it.
    """
    journal = crowd.journal
    if journal is None or journal.header_written:
        return
    journal.write_header(
        {
            "algorithm": algorithm,
            "run": run,
            "relation": {
                "fingerprint": relation_fingerprint(crowd.relation),
                "n": len(crowd.relation),
            },
            "spec": crowd.journal_spec(),
            "state": crowd.backend_state(),
        }
    )


def build_context(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ac_round_robin: bool = False,
    visible_crowd: Optional[Iterable[int]] = None,
    backend: Optional[str] = None,
    shards: int = 1,
    shard_jobs: int = 1,
    shard_partitioner: str = "range",
) -> ExecutionContext:
    """Prepare the machine-side structures and run the degenerate-case
    preprocessing (Algorithm 1 lines 1-3).

    ``visible_crowd`` lists tuples whose crowd values are stored rather
    than missing (the §2.2 partial-incompleteness extension); their
    mutual preferences are seeded into ``T`` for free. ``backend``
    selects the preference-closure implementation (``'bitset'`` |
    ``'reference'``; None = the ``REPRO_PREF_BACKEND`` default).

    ``shards > 1`` computes the dominance matrix shard-by-shard
    (optionally across ``shard_jobs`` worker processes) and reads the
    dominating sets off it; both are bit-identical to the serial path,
    so every downstream question is unchanged (docs/sharding.md).
    """
    if relation.schema.num_crowd < 1:
        raise CrowdSkyError(
            "crowd-enabled skyline needs at least one crowd attribute; "
            "use repro.skyline for machine-only skylines"
        )
    if shards < 1:
        raise CrowdSkyError(f"shards must be >= 1, got {shards}")
    if shard_jobs < 1:
        raise CrowdSkyError(f"shard_jobs must be >= 1, got {shard_jobs}")
    if shards > 1 and shard_partitioner not in PARTITIONERS:
        raise CrowdSkyError(
            f"unknown partitioner {shard_partitioner!r}; "
            f"pick from {sorted(PARTITIONERS)}"
        )
    if crowd is None:
        crowd = SimulatedCrowd(relation)
    if crowd.relation is not relation:
        raise CrowdSkyError("crowd platform was built for a different relation")

    with phase("build_context"):
        observation = current_observation()
        tracer = observation.tracer if observation.enabled else None
        n = len(relation)
        prefs = PreferenceSystem(
            n, relation.schema.num_crowd, policy, backend=backend
        )
        # Route the closure-transaction histogram into the same per-run
        # registry as every other crowd metric.
        prefs.attach_metrics(crowd.metrics)
        if visible_crowd is not None:
            edges = seed_visible_preferences(prefs, relation, visible_crowd)
            if tracer is not None:
                tracer.event("engine.visible_seed", edges=edges)
        # Sub-phase spans (profiled as self time by repro.obs.perf);
        # plain tracer spans, not phase(), so the phase_seconds counter
        # keeps its flat, non-overlapping semantics.
        spans = tracer if tracer is not None else NOOP_TRACER
        crowd.set_cost_context(phase="preprocess")
        with spans.span("engine.preprocess"):
            removed = preprocess_duplicates(relation, crowd, prefs)
        crowd.set_cost_context(phase=None)

        with spans.span("engine.dominance"):
            known = relation.known_matrix()
            if shards > 1:
                matrix = sharded_dominance_matrix(
                    known,
                    shards=shards,
                    partitioner=shard_partitioner,
                    jobs=shard_jobs,
                )
            else:
                matrix = dominance_matrix(known)
            frequency = FrequencyOracle(matrix)

        with spans.span("engine.dominating_sets"):
            if shards > 1:
                # The sharded path already holds the matrix; reading
                # DS(t) off its columns skips the serial path's second
                # quadratic pass and is equal by construction.
                dominating = dominating_sets_from_matrix(matrix)
            else:
                dominating = dominating_sets(known)
            if removed:
                dominating = [
                    {s for s in members if s not in removed}
                    for members in dominating
                ]

        context = ExecutionContext(
            relation=relation,
            crowd=crowd,
            prefs=prefs,
            matrix=matrix,
            dominating=dominating,
            frequency=frequency,
            removed=removed,
            ac_round_robin=ac_round_robin,
        )
    # Questions abandoned during preprocessing (non-strict faults) are
    # already terminal; carry them into the context's unresolved set.
    for key in crowd.unresolved_keys:
        if len(key) == 3 and not isinstance(key[0], tuple):
            context.unresolved_pairs.add(key)
    return context


def apply_answers(
    prefs: PreferenceSystem,
    answers: Dict[PairwiseQuestion, Preference],
) -> None:
    """Fold aggregated round answers into the preference system as one
    closure transaction (order preserved — acceptance under KEEP_FIRST
    is order-sensitive)."""
    prefs.apply_verdicts(
        [
            (question.left, question.right, question.attribute, answer)
            for question, answer in answers.items()
        ]
    )


def _request_decided(
    prefs: PreferenceSystem, request: PairRequest
) -> bool:
    """Whether further micro-questions on the request cannot change its
    conclusion.

    For a Q(t) dominance check ``(s, t)``, one attribute preferring ``t``
    already rules out ``s ≺_A t``. For probe pairs the pair must be fully
    known or certainly incomparable (opposite strict preferences)."""
    rels = prefs.pair_relations(request.left, request.right)
    has_left = Preference.LEFT in rels
    has_right = Preference.RIGHT in rels
    if request.dominance_check and has_right:
        return True  # right (= t) strictly preferred somewhere: no dominance
    if has_left and has_right:
        return True  # certainly incomparable in AC
    return None not in rels


def _request_attributes(
    prefs: PreferenceSystem, request: PairRequest
) -> List[int]:
    """Attributes to ask for a request: all of them for forced requests
    (no preference-tree inference in the DSet/P1 variants), otherwise only
    those not yet derivable."""
    if request.force:
        return list(range(prefs.num_attributes))
    return prefs.unknown_attributes(request.left, request.right)


def _note_unresolved(
    context: ExecutionContext, questions: Iterable[PairwiseQuestion]
) -> None:
    """Record the asked questions the crowd permanently gave up on."""
    unresolved = context.crowd.unresolved_keys
    if not unresolved:
        return
    for question in questions:
        key = question.key()
        if key in unresolved:
            context.unresolved_pairs.add(key)


def request_unresolved(
    context: ExecutionContext, request: Union[PairRequest, MultiwayRequest]
) -> bool:
    """Whether a just-asked request is permanently unresolvable.

    True when some attribute of the pair is still unknown (not even
    transitively derivable) *and* its question was given up on by the
    crowd — the scheduler must then abandon the request instead of
    re-emitting it forever. Partial answers (other attributes) stay in
    the preference system.
    """
    unresolved = context.crowd.unresolved_keys
    if not unresolved:
        return False
    if isinstance(request, MultiwayRequest):
        key = MultiwayQuestion(request.candidates, request.attribute).key()
        return key in unresolved
    prefs = context.prefs
    for attribute in prefs.unknown_attributes(request.left, request.right):
        key = PairwiseQuestion(
            request.left, request.right, attribute
        ).key()
        if key in unresolved:
            return True
    return False


def tuple_trace():
    """The active tracer for per-tuple events, or ``None`` when off."""
    observation = current_observation()
    return observation.tracer if observation.enabled else None


def record_tuple(context: ExecutionContext, trace, t: int, outcome: str) -> None:
    """Account one evaluated tuple: counter always, event when tracing."""
    context.crowd.count_metric(TUPLES_EVALUATED, outcome=outcome)
    if trace is not None:
        trace.event("engine.tuple", t=t, outcome=outcome)


def record_pref_stats(context: ExecutionContext) -> None:
    """Export the preference system's closure/memo tallies as metrics.

    Called once per run, right before the result is assembled — the
    memo-hit and closure-update counters are cumulative, so a single
    final increment keeps them cheap on the hot path.
    """
    prefs = context.prefs
    backend = prefs.backend
    if prefs.cache_hits:
        context.crowd.count_metric(
            PREF_CACHE_HITS, prefs.cache_hits, backend=backend
        )
    updates = prefs.closure_updates()
    if updates:
        context.crowd.count_metric(
            CLOSURE_UPDATES, updates, backend=backend
        )


def apply_multiway_answers(
    prefs: PreferenceSystem,
    answers: Dict[MultiwayQuestion, int],
) -> None:
    """Fold m-ary winners into the preference system.

    The chosen candidate is preferred over every other candidate of its
    question — ``k − 1`` strict edges per answer, committed as one
    closure transaction in the original expansion order."""
    prefs.apply_verdicts(
        [
            (winner, candidate, question.attribute, Preference.LEFT)
            for question, winner in answers.items()
            for candidate in question.candidates
            if candidate != winner
        ]
    )


def ask_pair(
    context: ExecutionContext, request: Union[PairRequest, MultiwayRequest]
) -> None:
    """Ask one request as a single round.

    Pair requests expand to ``|AC|`` micro-questions at once; multiway
    requests are a single m-ary micro-task (§2.1's extension).

    With ``ac_round_robin`` enabled (the extension §6.1 mentions but does
    not apply), the crowd attributes are asked one round at a time and
    the pair is abandoned as soon as its outcome is decided — trading
    rounds for fewer questions when ``|AC| > 1``.
    """
    prefs = context.prefs
    if isinstance(request, MultiwayRequest):
        question = MultiwayQuestion(request.candidates, request.attribute)
        apply_multiway_answers(
            prefs, context.crowd.ask_multiway_round([question])
        )
        return
    attributes = _request_attributes(prefs, request)
    if not request.force:
        saved = prefs.num_attributes - len(attributes)
        if saved:
            context.crowd.count_metric(QUESTIONS_SAVED_TRANSITIVITY, saved)
    if not attributes:
        return
    if context.ac_round_robin and len(attributes) > 1:
        for attribute in attributes:
            question = PairwiseQuestion(
                request.left, request.right, attribute
            )
            answers = context.crowd.ask_pairwise_round([question])
            apply_answers(prefs, answers)
            _note_unresolved(context, [question])
            if _request_decided(prefs, request):
                break
        return
    questions = [
        PairwiseQuestion(request.left, request.right, attribute)
        for attribute in attributes
    ]
    answers = context.crowd.ask_pairwise_round(questions)
    apply_answers(prefs, answers)
    _note_unresolved(context, questions)


def ask_batch(
    context: ExecutionContext,
    requests: Iterable[Union[PairRequest, MultiwayRequest]],
) -> None:
    """Ask a batch of requests together as one round (parallel
    schedulers). Pairwise and m-ary micro-tasks of the same batch are
    issued back to back, and the multiway posting is folded into the
    pairwise round's accounting (``same_round``) whenever the pairwise
    half actually executed one — a mixed batch costs exactly one latency
    round."""
    prefs = context.prefs
    questions: List[PairwiseQuestion] = []
    multiway: List[MultiwayQuestion] = []
    pair_requests: List[PairRequest] = []
    for request in requests:
        if isinstance(request, MultiwayRequest):
            multiway.append(
                MultiwayQuestion(request.candidates, request.attribute)
            )
        else:
            pair_requests.append(request)
    pairs = len(pair_requests)
    # One closure pass settles the whole candidate round: every pair is
    # resolved against the preference graphs at most once, however many
    # requests in the batch repeat it.
    resolved = prefs.resolve_pairs(
        (request.left, request.right) for request in pair_requests
    )
    for request in pair_requests:
        if request.force:
            attributes: List[int] = list(range(prefs.num_attributes))
        else:
            rels = resolved[(request.left, request.right)]
            attributes = [
                j for j, rel in enumerate(rels) if rel is None
            ]
            saved = prefs.num_attributes - len(attributes)
            if saved:
                context.crowd.count_metric(
                    QUESTIONS_SAVED_TRANSITIVITY, saved
                )
        for attribute in attributes:
            questions.append(
                PairwiseQuestion(request.left, request.right, attribute)
            )
    observation = current_observation()
    if observation.enabled and (questions or multiway):
        observation.tracer.event(
            "engine.batch",
            pairs=pairs,
            multiway=len(multiway),
            questions=len(questions),
        )
    spans = (
        observation.tracer if observation.enabled else NOOP_TRACER
    )
    rounds_before = context.crowd.stats.rounds
    if questions:
        answers = context.crowd.ask_pairwise_round(questions)
        with spans.span("engine.apply_answers", answers=len(answers)):
            apply_answers(prefs, answers)
        _note_unresolved(context, questions)
    if multiway:
        # Merge only when the pairwise half executed a round just now; a
        # fully cache-served (or empty) pairwise half means the multiway
        # posting is this batch's one round.
        multiway_answers = context.crowd.ask_multiway_round(
            multiway,
            same_round=context.crowd.stats.rounds > rounds_before,
        )
        with spans.span(
            "engine.apply_answers", answers=len(multiway_answers)
        ):
            apply_multiway_answers(prefs, multiway_answers)


def preprocess_duplicates(
    relation: Relation,
    crowd: SimulatedCrowd,
    prefs: PreferenceSystem,
) -> Set[int]:
    """Algorithm 1 lines 1-3: resolve tuples with identical ``AK`` values.

    For every group of tuples sharing all known values, pairwise
    questions identify tuples dominated purely in ``AC``; those are
    removed from further consideration (complete non-skyline tuples).
    Tuples tied on every crowd attribute both survive — neither
    dominates the other.

    Returns the removed tuple indices.
    """
    known = relation.known_matrix()
    groups: List[List[int]] = []
    if known.shape[0]:
        # Vectorized duplicate grouping. np.unique orders groups
        # lexicographically by row value; re-sorting by first member
        # restores the first-occurrence order the question sequence
        # (and thus the seeded crowd RNG stream) depends on. Stable
        # argsort keeps members ascending within each group.
        _, inverse, counts = np.unique(
            known, axis=0, return_inverse=True, return_counts=True
        )
        order = np.argsort(inverse.ravel(), kind="stable")
        groups = [
            [int(i) for i in members]
            for members in np.split(order, np.cumsum(counts)[:-1])
        ]
        groups.sort(key=lambda members: members[0])

    removed: Set[int] = set()
    for members in groups:
        if len(members) < 2:
            continue
        for i, u in enumerate(members):
            if u in removed:
                continue
            for v in members[i + 1:]:
                if v in removed or u in removed:
                    continue
                attributes = prefs.unknown_attributes(u, v)
                if attributes:
                    questions = [
                        PairwiseQuestion(u, v, a) for a in attributes
                    ]
                    apply_answers(prefs, crowd.ask_pairwise_round(questions))
                if prefs.ac_dominates(u, v):
                    removed.add(v)
                elif prefs.ac_dominates(v, u):
                    removed.add(u)
    return removed

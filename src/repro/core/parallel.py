"""Parallel question scheduling (paper §4).

Two schedulers reduce the number of rounds by asking independent
questions together, both built on the same per-tuple state machine and
pruning rules as serial CrowdSky (so they preserve its correctness,
paper §4.2):

* :func:`parallel_dset` (§4.1) — partitions tuples into groups of equal
  ``|DS(t)|`` (tuples within a group cannot dominate each other, Lemma 3,
  so (C1) dependencies cannot cross the group), processes groups
  sequentially, and runs tuples of a group in lockstep when their
  dominating sets are pairwise disjoint (no (C2) dependency). Each
  tuple's own question sequence stays sequential ((C3)).
* :func:`parallel_sl` (§4.2, Algorithm 2) — computes skyline layers and
  the covering graph; a tuple becomes active as soon as every direct
  dominator ``c(t)`` is complete. (C2) dependencies are deliberately
  violated — overlapping dominating sets may probe the same pair in one
  round — which the paper accepts for ~10% extra questions and a
  two-orders-of-magnitude round reduction. Duplicates inside a round are
  merged by the platform, and the extra questions emerge naturally from
  concurrent evaluation.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple as TupleT

import numpy as np

from repro.core.crowdsky import CrowdSkyConfig
from repro.core.engine import (
    ExecutionContext,
    ask_batch,
    build_context,
    ensure_run_header,
    record_pref_stats,
    record_tuple,
    request_unresolved,
    tuple_trace,
)
from repro.core.result import CrowdSkylineResult
from repro.core.tasks import PairRequest, TaskOutcome, TaskState, TupleTask
from repro.crowd.platform import SimulatedCrowd
from repro.data.relation import Relation
from repro.exceptions import CrowdSkyError
from repro.obs import phase, run_span
from repro.skyline.dominating import packed_bitset_rows
from repro.skyline.layers import covering_graph_from_matrix


def _make_task(
    context: ExecutionContext, t: int, config: CrowdSkyConfig
) -> TupleTask:
    level = config.pruning
    return TupleTask(
        t,
        context.ds_in_eval_order(t),
        context.prefs,
        context.frequency,
        use_p1=level.use_p1,
        use_p2=level.use_p2,
        use_p3=level.use_p3,
        probe_ascending=config.probe_ascending,
        multiway=config.multiway,
    )


def _finalize(
    context: ExecutionContext,
    task: TupleTask,
    skyline: Set[int],
    complete_non_skyline: Set[int],
) -> None:
    if task.outcome is TaskOutcome.NON_SKYLINE:
        complete_non_skyline.add(task.t)
    else:
        skyline.add(task.t)
    record_tuple(context, tuple_trace(), task.t, task.outcome.value)


def _result(
    context: ExecutionContext, skyline: Set[int], algorithm: str
) -> CrowdSkylineResult:
    record_pref_stats(context)
    return CrowdSkylineResult(
        skyline=skyline,
        stats=context.crowd.stats,
        question_log=list(context.crowd.question_log),
        algorithm=algorithm,
        rejected_answers=context.prefs.total_rejected(),
        degraded=context.degraded,
        unresolved_pairs=sorted(context.unresolved_pairs),
        fault_stats=context.crowd.fault_stats,
        budget_exhausted=context.crowd.budget_degraded,
        metrics=context.crowd.metrics,
        cost_records=list(context.crowd.cost_records),
    )


# ---------------------------------------------------------------------------
# ParallelDSet (§4.1)
# ---------------------------------------------------------------------------


def parallel_dset(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    config: Optional[CrowdSkyConfig] = None,
    visible_crowd: Optional[Iterable[int]] = None,
) -> CrowdSkylineResult:
    """CrowdSky with the dominating-set partitioning scheduler (§4.1)."""
    config = config or CrowdSkyConfig()
    if crowd is None:
        crowd = SimulatedCrowd(relation)
    crowd.set_cost_context(scheduler="parallel_dset")
    visible = (
        sorted(set(visible_crowd)) if visible_crowd is not None else None
    )
    ensure_run_header(
        crowd,
        "parallel_dset",
        {"config": config.to_payload(), "visible_crowd": visible},
    )
    with run_span(
        "parallel_dset", n=len(relation), pruning=config.pruning.value
    ) as span:
        context = build_context(
            relation,
            crowd,
            policy=config.policy,
            ac_round_robin=config.ac_round_robin,
            visible_crowd=visible,
            backend=config.backend,
            shards=config.shards,
            shard_jobs=config.shard_jobs,
            shard_partitioner=config.shard_partitioner,
        )

        skyline: Set[int] = set()
        complete_non_skyline: Set[int] = set(context.removed)

        with phase("evaluate"):
            # Group by |DS(t)|; the empty-DS group needs no questions.
            groups: Dict[int, List[int]] = {}
            for t in context.eval_order():
                groups.setdefault(len(context.dominating[t]), []).append(t)
            trace = tuple_trace()
            for t in groups.pop(0, []):
                skyline.add(t)
                record_tuple(context, trace, t, "skyline")

            for size in sorted(groups):
                # Charge each |DS(t)|-group's rounds as one "layer".
                context.crowd.set_cost_context(
                    phase="evaluate", layer=size
                )
                members = groups[size]
                for batch in _disjoint_batches(
                    context, members, complete_non_skyline
                ):
                    _run_lockstep(
                        context, batch, config, skyline, complete_non_skyline
                    )

        result = _result(
            context, skyline, f"ParallelDSet[{config.pruning.value}]"
        )
    if span is not None:
        result.wall_time_s = span.duration_s
    return result


def _disjoint_batches(
    context: ExecutionContext,
    members: List[int],
    complete_non_skyline: Set[int],
) -> List[List[int]]:
    """First-fit partition of a group into batches whose (pruned)
    dominating sets are pairwise disjoint — the (C2) independence check.

    Dominating sets are packed into rows of a uint64 matrix so a
    member's disjointness test against every open batch is one
    vectorized AND + ``any`` over the union rows instead of a Python
    loop. First-fit order (and therefore the batch composition and every
    downstream question) is identical to the scalar implementation."""
    n = context.n
    ds_rows = packed_bitset_rows(
        [context.dominating[t] for t in members], n
    )
    if complete_non_skyline:
        ds_rows &= ~packed_bitset_rows([complete_non_skyline], n)[0]
    batches: List[List[int]] = []
    unions = np.zeros_like(ds_rows)
    open_batches = 0
    for index, t in enumerate(members):
        ds = ds_rows[index]
        placed = -1
        if open_batches:
            conflict = (unions[:open_batches] & ds).any(axis=1)
            free = np.nonzero(~conflict)[0]
            if free.size:
                placed = int(free[0])
        if placed >= 0:
            batches[placed].append(t)
            unions[placed] |= ds
        else:
            batches.append([t])
            unions[open_batches] = ds
            open_batches += 1
    return batches


def _run_lockstep(
    context: ExecutionContext,
    batch: List[int],
    config: CrowdSkyConfig,
    skyline: Set[int],
    complete_non_skyline: Set[int],
) -> None:
    """Run a batch of independent tuples in lockstep rounds."""
    tasks = [_make_task(context, t, config) for t in batch]
    for task in tasks:
        task.activate(complete_non_skyline)
    active = list(tasks)
    while active:
        requests: List[TupleT[TupleTask, PairRequest]] = []
        still_active: List[TupleTask] = []
        for task in active:
            request = task.advance()
            if request is None:
                _finalize(context, task, skyline, complete_non_skyline)
            else:
                requests.append((task, request))
                still_active.append(task)
        if requests:
            ask_batch(context, [request for _, request in requests])
            for task, request in requests:
                if request_unresolved(context, request):
                    task.abandon_request(request)
        active = still_active


# ---------------------------------------------------------------------------
# ParallelSL (§4.2, Algorithm 2)
# ---------------------------------------------------------------------------


def parallel_sl(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    config: Optional[CrowdSkyConfig] = None,
    visible_crowd: Optional[Iterable[int]] = None,
) -> CrowdSkylineResult:
    """CrowdSky with the skyline-layer scheduler (Algorithm 2, §4.2)."""
    config = config or CrowdSkyConfig()
    if crowd is None:
        crowd = SimulatedCrowd(relation)
    crowd.set_cost_context(scheduler="parallel_sl")
    visible = (
        sorted(set(visible_crowd)) if visible_crowd is not None else None
    )
    ensure_run_header(
        crowd,
        "parallel_sl",
        {"config": config.to_payload(), "visible_crowd": visible},
    )
    with run_span(
        "parallel_sl", n=len(relation), pruning=config.pruning.value
    ) as span:
        context = build_context(
            relation,
            crowd,
            policy=config.policy,
            ac_round_robin=config.ac_round_robin,
            visible_crowd=visible,
            backend=config.backend,
            shards=config.shards,
            shard_jobs=config.shard_jobs,
            shard_partitioner=config.shard_partitioner,
        )

        cover = covering_graph_from_matrix(context.matrix)

        skyline: Set[int] = set()
        complete_non_skyline: Set[int] = set(context.removed)
        complete: Set[int] = set(context.removed)

        tasks: Dict[int, TupleTask] = {}
        order = context.eval_order()
        trace = tuple_trace()
        for t in order:
            if not context.dominating[t]:
                skyline.add(t)  # SL1: complete skyline tuples, C's seed
                complete.add(t)
                record_tuple(context, trace, t, "skyline")
            else:
                tasks[t] = _make_task(context, t, config)

        pending = [t for t in order if t in tasks]
        finished: Set[int] = set()

        with phase("evaluate"):
            wave = 0
            while len(finished) < len(tasks):
                wave += 1
                # Each activation wave is one "layer" for attribution.
                context.crowd.set_cost_context(
                    phase="evaluate", layer=wave
                )
                requests: Dict[int, PairRequest] = {}
                changed = True
                while changed:
                    changed = False
                    for t in pending:
                        if t in finished or t in requests:
                            continue
                        task = tasks[t]
                        if task.state is TaskState.PENDING:
                            if cover[t] <= complete:
                                task.activate(complete_non_skyline)
                            else:
                                continue
                        request = task.advance()
                        if request is None:
                            _finalize(
                                context, task, skyline, complete_non_skyline
                            )
                            complete.add(t)
                            finished.add(t)
                            changed = True
                        else:
                            requests[t] = request
                if not requests:
                    if len(finished) < len(tasks):  # pragma: no cover
                        raise CrowdSkyError(
                            "ParallelSL deadlock: tuples waiting on "
                            "incomplete dominators with no questions in "
                            "flight"
                        )
                    break
                ask_batch(context, requests.values())
                for t, request in requests.items():
                    if request_unresolved(context, request):
                        tasks[t].abandon_request(request)

        result = _result(
            context, skyline, f"ParallelSL[{config.pruning.value}]"
        )
    if span is not None:
        result.wall_time_s = span.duration_s
    return result

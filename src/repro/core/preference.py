"""The preference graph ``T`` over crowd attributes (paper §3.3).

Each crowd attribute maintains a preference graph: nodes are tuples, an
edge ``u → v`` records "``u`` preferred over ``v``", and reachability
gives transitive preferences. Crowds may also answer "equally
preferred"; tied tuples are merged into equivalence classes via
union-find, and edges connect class representatives.

Noisy crowds can produce answers that contradict earlier (transitively
derived) knowledge — e.g. three questions of one parallel round forming a
cycle. The paper does not discuss this case; the default
:attr:`ContradictionPolicy.KEEP_FIRST` keeps ``T`` acyclic by rejecting
the newcomer (first-arrival wins), and :attr:`ContradictionPolicy.RAISE`
turns contradictions into errors for the perfect-crowd setting.

Three interchangeable backends implement the graph:

* :class:`ReferencePreferenceGraph` — the original per-node
  ``Dict[int, Set[int]]`` adjacency with memoized DFS reachability.
  Kept as the executable specification; its descendant cache is
  invalidated *exactly* (only nodes whose reachable set can change).
* :class:`BitsetPreferenceGraph` — reachability as Python-int bitsets
  (one machine word per 64 tuples) with **incremental** transitive
  closure maintenance on every edge insert and tie merge. Queries are
  O(1) bit tests; updates touch only ancestors/descendants of the
  mutated classes.
* :class:`NumpyPreferenceGraph` — the same incremental closure with the
  per-class bitsets packed into ``(n, ceil(n/64))`` uint64 matrices, so
  an edge insert is one masked ``|=`` broadcast over every affected
  class row and tie merges are row ORs plus row retirement. It adds the
  bulk query kernels (:meth:`~NumpyPreferenceGraph.relations_batch`,
  :meth:`~NumpyPreferenceGraph.reachable_pairs`,
  :meth:`~NumpyPreferenceGraph.undominated_mask`) that answer whole
  arrays of pair queries in one shot — the default production backend.

Select the backend with the ``backend=`` constructor flag of
:func:`PreferenceGraph` / :class:`PreferenceSystem`, or globally with
the ``REPRO_PREF_BACKEND`` environment variable (``numpy`` | ``bitset``
| ``reference``). The differential suite
(``tests/test_preference_differential.py``) pins the three backends to
bit-for-bit identical observable state.

:class:`PreferenceSystem` bundles ``|AC|`` graphs and provides the
AC-level dominance tests used by the pruning rules (Corollaries 1-2,
Lemma 4), memoized per pair and exposed batch-wise through
:meth:`PreferenceSystem.resolve_pairs` so schedulers can settle a whole
candidate round in one closure pass. Round commits go through
:meth:`PreferenceSystem.apply_verdicts` — one *closure transaction* per
crowd round instead of one closure touch per answer.
"""

from __future__ import annotations

import enum
import os
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.crowd.questions import Preference
from repro.exceptions import CrowdSkyError, PreferenceConflictError
from repro.obs import current_observation
from repro.obs.metrics import CLOSURE_BATCH_SIZE

#: Environment variable selecting the default preference backend.
BACKEND_ENV_VAR = "REPRO_PREF_BACKEND"

#: Recognised backend names.
BACKEND_NUMPY = "numpy"
BACKEND_BITSET = "bitset"
BACKEND_REFERENCE = "reference"

#: All recognised backend names, fastest first.
BACKEND_NAMES = (BACKEND_NUMPY, BACKEND_BITSET, BACKEND_REFERENCE)


def default_backend() -> str:
    """The backend name selected by ``REPRO_PREF_BACKEND`` (default
    ``numpy``)."""
    name = os.environ.get(BACKEND_ENV_VAR, BACKEND_NUMPY).strip().lower()
    if name not in BACKEND_NAMES:
        raise CrowdSkyError(
            f"unknown preference backend {name!r} in ${BACKEND_ENV_VAR}; "
            f"expected one of {', '.join(repr(b) for b in BACKEND_NAMES)}"
        )
    return name


class ContradictionPolicy(enum.Enum):
    """What to do when a new answer contradicts derived knowledge."""

    KEEP_FIRST = "keep_first"
    RAISE = "raise"


def _iter_bits(bits: int) -> Iterable[int]:
    """Indices of the set bits of a Python-int bitset, ascending."""
    while bits:
        low = bits & -bits
        yield low.bit_length() - 1
        bits ^= low


class _BasePreferenceGraph:
    """Shared union-find, answer folding and introspection.

    Subclasses implement the reachability/closure layer through
    ``_reaches``, ``_add_edge`` and ``_merge_closure`` hooks. All
    observable state (relations, tie classes, rejected-answer counts,
    direct edges) is backend-independent — the differential test suite
    enforces this.
    """

    backend = "abstract"

    def __init__(
        self,
        n: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        self._n = n
        self._policy = policy
        self._parent = list(range(n))
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self.rejected_answers = 0
        #: Monotone mutation counter — lets :class:`PreferenceSystem`
        #: invalidate its pair memo lazily instead of eagerly.
        self.version = 0
        #: Closure maintenance work (node-set updates) — exported as the
        #: ``crowdsky_closure_updates_total`` observability counter.
        self.closure_updates = 0

    # -- union-find ------------------------------------------------------

    def _find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def _union(self, a: int, b: int) -> int:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        keep, drop = (ra, rb) if ra < rb else (rb, ra)
        self._parent[drop] = keep
        out = self._out.pop(drop, set())
        self._out.setdefault(keep, set()).update(out)
        for succ in out:
            # every edge target has an _in entry by construction
            succs_in = self._in[succ]
            succs_in.discard(drop)
            succs_in.add(keep)
        incoming = self._in.pop(drop, set())
        self._in.setdefault(keep, set()).update(incoming)
        for pred in incoming:
            preds_out = self._out[pred]
            preds_out.discard(drop)
            preds_out.add(keep)
        self._out.get(keep, set()).discard(keep)
        self._in.get(keep, set()).discard(keep)
        self._merge_closure(keep, drop)
        return keep

    # -- closure hooks (backend-specific) --------------------------------

    def _reaches(self, source: int, target: int) -> bool:
        """Is ``source ≺ target`` derivable (transitively)? Arguments are
        class representatives."""
        raise NotImplementedError

    def _add_edge(self, src: int, dst: int) -> None:
        """Insert the direct edge ``src → dst`` (representatives, not
        previously related) and update the closure."""
        raise NotImplementedError

    def _merge_closure(self, keep: int, drop: int) -> None:
        """Fold class ``drop`` into ``keep`` in the closure structures.

        Called after the adjacency rewiring of a tie merge; the two
        classes were not previously related in either direction."""
        raise NotImplementedError

    # -- public API ------------------------------------------------------

    def relation(self, u: int, v: int) -> Optional[Preference]:
        """The derivable relation between ``u`` and ``v``.

        Returns ``LEFT`` when ``u`` preferred, ``RIGHT`` when ``v``
        preferred, ``EQUAL`` when tied, ``None`` when unknown.
        """
        ru, rv = self._find(u), self._find(v)
        if ru == rv:
            return Preference.EQUAL
        if self._reaches(ru, rv):
            return Preference.LEFT
        if self._reaches(rv, ru):
            return Preference.RIGHT
        return None

    def knows(self, u: int, v: int) -> bool:
        """Whether any relation between ``u`` and ``v`` is derivable."""
        return self.relation(u, v) is not None

    def add_answer(self, u: int, v: int, answer: Preference) -> bool:
        """Record an aggregated crowd answer for the pair ``(u, v)``.

        Returns True when the answer was incorporated, False when it was
        rejected for contradicting derived knowledge (KEEP_FIRST policy).
        """
        known = self.relation(u, v)
        if known is not None:
            if known is answer:
                return True
            self.rejected_answers += 1
            if self._policy is ContradictionPolicy.RAISE:
                raise PreferenceConflictError(
                    f"answer {answer.value} for ({u}, {v}) contradicts "
                    f"derived relation {known.value}"
                )
            return False
        self.version += 1
        if answer is Preference.EQUAL:
            self._union(u, v)
            return True
        if answer is Preference.LEFT:
            src, dst = self._find(u), self._find(v)
        else:
            src, dst = self._find(v), self._find(u)
        self._out.setdefault(src, set()).add(dst)
        self._in.setdefault(dst, set()).add(src)
        self._add_edge(src, dst)
        return True

    def edges(self) -> List[tuple]:
        """All direct edges ``(u_rep, v_rep)`` — for inspection/tests."""
        return [
            (src, dst) for src, succs in self._out.items() for dst in succs
        ]

    def class_of(self, u: int) -> int:
        """Representative of ``u``'s tie class."""
        return self._find(u)


class ReferencePreferenceGraph(_BasePreferenceGraph):
    """The original set-based backend — kept as executable specification.

    Descendant sets are memoized per representative. Invalidation is
    *exact*: a mutation of class ``r`` only clears cached sets that can
    actually change — ``r``'s own and those of nodes already reaching
    ``r`` (historically a single ``add_edge`` cleared every cached set,
    which made closure maintenance quadratic-plus on long runs).
    """

    backend = BACKEND_REFERENCE

    def __init__(
        self,
        n: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        super().__init__(n, policy)
        self._descendants: Dict[int, Set[int]] = {}

    def _invalidate(self, *roots: int) -> None:
        """Drop cached descendant sets affected by a mutation of
        ``roots``: the roots' own caches plus any cache containing a
        root (i.e. of a node that reaches it)."""
        if not self._descendants:
            return
        affected = set(roots)
        self.closure_updates += 1
        self._descendants = {
            node: cached
            for node, cached in self._descendants.items()
            if node not in affected and not (affected & cached)
        }

    def _reaches(self, source: int, target: int) -> bool:
        if source == target:
            return False
        cached = self._descendants.get(source)
        if cached is None:
            cached = set()
            stack = [source]
            while stack:
                node = stack.pop()
                for succ in self._out.get(node, ()):
                    if succ not in cached:
                        cached.add(succ)
                        stack.append(succ)
            self._descendants[source] = cached
        return target in cached

    def _add_edge(self, src: int, dst: int) -> None:
        # Only src itself and nodes already reaching src gain
        # descendants; dst's reachable set is unchanged.
        self._invalidate(src)

    def _merge_closure(self, keep: int, drop: int) -> None:
        self._invalidate(keep, drop)

    def descendants(self, u: int) -> Set[int]:
        """Representatives strictly below ``u``'s class (computed or
        cached)."""
        root = self._find(u)
        self._reaches(root, -1)  # force/refresh the cache
        return set(self._descendants[root])


class BitsetPreferenceGraph(_BasePreferenceGraph):
    """Bitset-backed closure with incremental maintenance.

    Per class representative ``r`` the graph stores three Python-int
    bitsets over *original tuple indices* (so membership tests never
    need representative mapping):

    * ``_cls[r]`` — members of the tie class,
    * ``_desc[r]`` — every tuple in a class strictly below ``r``,
    * ``_anc[r]`` — every tuple in a class strictly above ``r``.

    ``add_edge(u, v)`` ORs ``below(v)`` into every class above-or-equal
    ``u`` and ``above(u)`` into every class below-or-equal ``v`` — the
    classic incremental-closure update, word-parallel on 64 tuples at a
    time. Tie merges union the two classes' bitsets and propagate the
    same way. Queries are single shift-and-mask bit tests.
    """

    backend = BACKEND_BITSET

    def __init__(
        self,
        n: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        super().__init__(n, policy)
        # Dense list storage: the hot update loops index by tuple id,
        # and a list subscript skips the dict hash entirely.
        self._desc: List[int] = [0] * n
        self._anc: List[int] = [0] * n
        self._cls: List[int] = [1 << i for i in range(n)]
        # Bit i set iff i is currently a class representative.
        self._reps_mask = (1 << n) - 1 if n else 0

    # -- bitset accessors ------------------------------------------------

    def _cls_bits(self, rep: int) -> int:
        return self._cls[rep]

    def descendants_bits(self, u: int) -> int:
        """Bitset of tuples in classes strictly below ``u``'s class."""
        return self._desc[self._find(u)]

    def ancestors_bits(self, u: int) -> int:
        """Bitset of tuples in classes strictly above ``u``'s class."""
        return self._anc[self._find(u)]

    def tie_class_bits(self, u: int) -> int:
        """Bitset of the members of ``u``'s tie class."""
        return self._cls_bits(self._find(u))

    # -- closure hooks ---------------------------------------------------

    def _reaches(self, source: int, target: int) -> bool:
        return bool(self._desc[source] >> target & 1)

    def _propagate(self, above: int, below: int, gain_below: int,
                   gain_above: int) -> None:
        """OR ``gain_below`` into every class above and ``gain_above``
        into every class below (the incremental-closure sweep).

        The bit-extraction loops are inlined — a generator here costs a
        frame resume per representative, which dominates the whole
        update at chain-shaped workloads.
        """
        desc = self._desc
        anc = self._anc
        up = above & self._reps_mask
        down = below & self._reps_mask
        bits = up
        while bits:
            low = bits & -bits
            bits ^= low
            desc[low.bit_length() - 1] |= gain_below
        bits = down
        while bits:
            low = bits & -bits
            bits ^= low
            anc[low.bit_length() - 1] |= gain_above
        # O(1) accounting: one closure entry per representative swept.
        self.closure_updates += bin(up).count("1") + bin(down).count("1")

    def _add_edge(self, src: int, dst: int) -> None:
        below = self._desc[dst] | self._cls[dst]
        above = self._anc[src] | self._cls[src]
        self._propagate(above, below, below, above)

    def _merge_closure(self, keep: int, drop: int) -> None:
        members = self._cls[keep] | self._cls[drop]
        below = self._desc[keep] | self._desc[drop]
        above = self._anc[keep] | self._anc[drop]
        self._cls[keep] = members
        self._desc[keep] = below
        self._anc[keep] = above
        self._cls[drop] = 0
        self._desc[drop] = 0
        self._anc[drop] = 0
        self._reps_mask &= ~(1 << drop)
        self._propagate(above, below, below | members, above | members)

    # -- fast queries ----------------------------------------------------

    def relation(self, u: int, v: int) -> Optional[Preference]:
        ru = self._find(u)
        if ru == self._find(v):
            return Preference.EQUAL
        # Closure bitsets carry member (not representative) indices, so
        # test v / u directly.
        if self._desc[ru] >> v & 1:
            return Preference.LEFT
        if self._anc[ru] >> v & 1:
            return Preference.RIGHT
        return None


class NumpyPreferenceGraph(_BasePreferenceGraph):
    """Packed-bit closure: one uint64 matrix row per tie class.

    The per-class bitsets of :class:`BitsetPreferenceGraph` become rows
    of three ``(n, ceil(n/64))`` uint64 matrices — ``_cls`` (class
    members), ``_desc`` (tuples strictly below) and ``_anc`` (tuples
    strictly above); row ``r`` is meaningful only while ``r`` is a class
    representative. The incremental Italiano-style update is then a
    masked broadcast: an edge insert ORs ``below(dst)`` into the rows of
    every representative above ``src`` (and symmetrically for
    ancestors) in one vectorized ``|=``, and a tie merge is two row ORs
    plus retirement of the dropped row.

    Beyond the scalar API the backend exposes bulk kernels —
    :meth:`relations_batch`, :meth:`reachable_pairs` and
    :meth:`undominated_mask` — which gather closure bits for whole
    arrays of pairs in one shot; :class:`PreferenceSystem` routes
    ``resolve_pairs`` and ``sky_ac`` through them.

    The closure-update accounting mirrors the bitset backend exactly
    (one update per representative row swept), so the deterministic
    pseudo-benchmarks pin both to the same counts.
    """

    backend = BACKEND_NUMPY

    def __init__(
        self,
        n: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        super().__init__(n, policy)
        self._words = words = max(1, (n + 63) >> 6)
        self._desc = np.zeros((n, words), dtype=np.uint64)
        self._anc = np.zeros((n, words), dtype=np.uint64)
        self._cls = np.zeros((n, words), dtype=np.uint64)
        if n:
            idx = np.arange(n, dtype=np.int64)
            self._cls[idx, idx >> 6] = np.uint64(1) << (
                idx & 63
            ).astype(np.uint64)
        # Row r is live (a class representative) iff _is_rep[r].
        self._is_rep = np.ones(n, dtype=bool)

    # -- row helpers -----------------------------------------------------

    def _rep_rows(self, row: np.ndarray) -> np.ndarray:
        """Indices of set bits in a packed row that are live
        representatives (the rows an update must sweep)."""
        bits = np.unpackbits(row.view(np.uint8), bitorder="little")
        hits = bits[: self._n].view(np.bool_) & self._is_rep
        return np.nonzero(hits)[0]

    def _broadcast(
        self,
        above: np.ndarray,
        below: np.ndarray,
        gain_below: np.ndarray,
        gain_above: np.ndarray,
    ) -> None:
        """OR ``gain_below`` into every representative row above and
        ``gain_above`` into every one below — the whole incremental
        closure sweep as two masked broadcasts."""
        up = self._rep_rows(above)
        down = self._rep_rows(below)
        if up.size:
            self._desc[up] |= gain_below
        if down.size:
            self._anc[down] |= gain_above
        # Same accounting as the bitset backend: one closure entry per
        # representative row swept.
        self.closure_updates += int(up.size) + int(down.size)

    # -- closure hooks ---------------------------------------------------

    def _reaches(self, source: int, target: int) -> bool:
        if target < 0:
            return False
        return bool(
            int(self._desc[source, target >> 6]) >> (target & 63) & 1
        )

    def _add_edge(self, src: int, dst: int) -> None:
        below = self._desc[dst] | self._cls[dst]
        above = self._anc[src] | self._cls[src]
        self._broadcast(above, below, below, above)

    def _merge_closure(self, keep: int, drop: int) -> None:
        members = self._cls[keep] | self._cls[drop]
        below = self._desc[keep] | self._desc[drop]
        above = self._anc[keep] | self._anc[drop]
        self._cls[keep] = members
        self._desc[keep] = below
        self._anc[keep] = above
        self._cls[drop] = 0
        self._desc[drop] = 0
        self._anc[drop] = 0
        self._is_rep[drop] = False
        self._broadcast(above, below, below | members, above | members)

    # -- fast scalar queries ---------------------------------------------

    def relation(self, u: int, v: int) -> Optional[Preference]:
        ru = self._find(u)
        if ru == self._find(v):
            return Preference.EQUAL
        word, bit = v >> 6, v & 63
        if int(self._desc[ru, word]) >> bit & 1:
            return Preference.LEFT
        if int(self._anc[ru, word]) >> bit & 1:
            return Preference.RIGHT
        return None

    # -- bulk query kernels ----------------------------------------------

    def find_roots(self, nodes: Sequence[int]) -> np.ndarray:
        """Class representatives of an array of tuple indices."""
        find = self._find
        return np.fromiter(
            (find(int(x)) for x in nodes), dtype=np.int64, count=len(nodes)
        )

    def relations_batch(
        self, us: Sequence[int], vs: Sequence[int]
    ) -> np.ndarray:
        """Relation codes for aligned pair arrays in one gather.

        Returns an int8 array: 0 = unknown, 1 = LEFT (``u`` preferred),
        2 = RIGHT, 3 = EQUAL — see :data:`RELATION_CODES`.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        ru = self.find_roots(us)
        rv = self.find_roots(vs)
        cols = vs >> 6
        shifts = (vs & 63).astype(np.uint64)
        one = np.uint64(1)
        left = (self._desc[ru, cols] >> shifts) & one
        right = (self._anc[ru, cols] >> shifts) & one
        codes = np.zeros(len(us), dtype=np.int8)
        codes[left != 0] = 1
        codes[right != 0] = 2
        codes[ru == rv] = 3
        return codes

    def reachable_pairs(
        self, us: Sequence[int], vs: Sequence[int]
    ) -> np.ndarray:
        """``u ≺ v`` (strict preference derivable) per aligned pair —
        one closure-bit gather for the whole array."""
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        ru = self.find_roots(us)
        bits = (
            self._desc[ru, vs >> 6] >> (vs & 63).astype(np.uint64)
        ) & np.uint64(1)
        return bits != 0

    def undominated_mask(self) -> np.ndarray:
        """Boolean mask over all tuples: True iff nothing is known to be
        strictly preferred over the tuple's class."""
        if not self._n:
            return np.zeros(0, dtype=bool)
        roots = self.find_roots(np.arange(self._n, dtype=np.int64))
        has_ancestor = self._anc.any(axis=1)
        return ~has_ancestor[roots]


#: Backend name → graph class.
GRAPH_BACKENDS = {
    BACKEND_NUMPY: NumpyPreferenceGraph,
    BACKEND_BITSET: BitsetPreferenceGraph,
    BACKEND_REFERENCE: ReferencePreferenceGraph,
}


def PreferenceGraph(
    n: int,
    policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    backend: Optional[str] = None,
):
    """Build a preference graph with the selected backend.

    ``backend`` is ``'numpy'``, ``'bitset'`` or ``'reference'``; None
    falls back to the ``REPRO_PREF_BACKEND`` environment variable, then
    ``'numpy'``. (Factory function — kept callable like the historical
    class so existing ``PreferenceGraph(n)`` call sites are unaffected.)
    """
    name = backend if backend is not None else default_backend()
    try:
        cls = GRAPH_BACKENDS[name]
    except KeyError:
        raise CrowdSkyError(
            f"unknown preference backend {name!r}; expected one of "
            f"{', '.join(repr(b) for b in BACKEND_NAMES)}"
        ) from None
    return cls(n, policy)


#: A pair's derivable relation on every crowd attribute (None = unknown).
PairRelations = Tuple[Optional[Preference], ...]

#: One aggregated crowd verdict: ``(left, right, attribute, answer)``.
Verdict = Tuple[int, int, int, Preference]

#: :meth:`NumpyPreferenceGraph.relations_batch` code → relation.
RELATION_CODES: Tuple[Optional[Preference], ...] = (
    None, Preference.LEFT, Preference.RIGHT, Preference.EQUAL
)

#: Orientation flip as a dict lookup — the memo fill path calls this
#: once per attribute per miss, where a method call measurably shows up.
_FLIPPED: Dict[Optional[Preference], Optional[Preference]] = {
    None: None,
    Preference.LEFT: Preference.RIGHT,
    Preference.RIGHT: Preference.LEFT,
    Preference.EQUAL: Preference.EQUAL,
}


class PreferenceSystem:
    """One preference graph per crowd attribute.

    Provides the AC-level predicates used by the pruning machinery. All
    predicates are *knowledge-relative*: they return what is currently
    derivable from answered questions, never consulting latent values.

    Per-pair relation vectors are memoized; the memo is invalidated
    lazily via the graphs' mutation counters, so bursts of dominance
    tests between crowd answers (``sky_ac``, probing, Q(t) checks) hit
    the closure at most once per pair.
    """

    def __init__(
        self,
        n: int,
        num_attributes: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
        backend: Optional[str] = None,
    ):
        if num_attributes < 1:
            raise ValueError("need at least one crowd attribute")
        self._n = n
        self.backend = (
            backend if backend is not None else default_backend()
        )
        self.graphs = [
            PreferenceGraph(n, policy, backend=self.backend)
            for _ in range(num_attributes)
        ]
        self._memo: Dict[Tuple[int, int], PairRelations] = {}
        self._memo_version = 0
        #: Pair lookups answered from the memo — exported as the
        #: ``crowdsky_pref_cache_hits_total`` observability counter.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Optional run-local metrics registry (the crowd's); receives
        #: the ``crowdsky_closure_batch_size`` histogram alongside the
        #: globally installed observation.
        self._run_metrics = None

    def attach_metrics(self, registry) -> None:
        """Attach the run-local metrics registry (the crowd platform's)
        so verdict transactions record their batch-size histogram into
        the same per-run registry as every other crowd metric."""
        self._run_metrics = registry

    @property
    def num_attributes(self) -> int:
        """``|AC|``."""
        return len(self.graphs)

    # -- memoized pair resolution ---------------------------------------

    def _current_version(self) -> int:
        return sum(graph.version for graph in self.graphs)

    def pair_relations(self, u: int, v: int) -> PairRelations:
        """Derivable relations of ``(u, v)`` on every crowd attribute,
        memoized until the next accepted answer."""
        version = self._current_version()
        if version != self._memo_version:
            self._memo.clear()
            self._memo_version = version
        key = (u, v)
        rels = self._memo.get(key)
        if rels is not None:
            self.cache_hits += 1
            return rels
        self.cache_misses += 1
        rels = tuple(graph.relation(u, v) for graph in self.graphs)
        self._memo[key] = rels
        self._memo[(v, u)] = tuple(_FLIPPED[rel] for rel in rels)
        return rels

    def resolve_pairs(
        self, pairs: Iterable[Tuple[int, int]]
    ) -> Dict[Tuple[int, int], PairRelations]:
        """Settle many pairs in one closure pass.

        Returns ``{(u, v): per-attribute relations}`` for every distinct
        input pair. Schedulers use this to test a whole candidate round
        (batch building, probe ladders, budget finalization) against the
        closure at once instead of re-querying pair by pair.

        Duplicate and symmetric pairs are collapsed before the closure
        is touched: memo-served pairs never reach the backend, and of an
        ``(u, v)`` / ``(v, u)`` twin only one orientation is computed
        (the other is its flip). Under the numpy backend the remaining
        misses resolve through one :meth:`~NumpyPreferenceGraph.
        relations_batch` gather per attribute. Under an active trace
        each pass is one ``pref.resolve`` span, so the profiler can set
        closure time against crowd time.
        """
        unique = dict.fromkeys(pairs)
        observation = current_observation()
        if observation.enabled:
            with observation.tracer.span(
                "pref.resolve", pairs=len(unique), backend=self.backend
            ):
                return self._resolve_unique(unique)
        return self._resolve_unique(unique)

    def _resolve_unique(
        self, unique: Dict[Tuple[int, int], None]
    ) -> Dict[Tuple[int, int], PairRelations]:
        version = self._current_version()
        if version != self._memo_version:
            self._memo.clear()
            self._memo_version = version
        memo = self._memo
        out: Dict[Tuple[int, int], PairRelations] = {}
        missing: List[Tuple[int, int]] = []
        for pair in unique:
            rels = memo.get(pair)
            if rels is not None:
                out[pair] = rels
            else:
                missing.append(pair)
        self.cache_hits += len(out)
        if not missing:
            return out
        # Canonicalize symmetric twins: each unordered pair hits the
        # closure once; the reverse orientation is a memo flip.
        canonical: List[Tuple[int, int]] = []
        seen: Set[Tuple[int, int]] = set()
        for u, v in missing:
            key = (u, v) if u <= v else (v, u)
            if key not in seen:
                seen.add(key)
                canonical.append(key)
        self.cache_misses += len(canonical)
        self.cache_hits += len(missing) - len(canonical)
        if isinstance(self.graphs[0], NumpyPreferenceGraph):
            us = np.fromiter(
                (p[0] for p in canonical), dtype=np.int64,
                count=len(canonical),
            )
            vs = np.fromiter(
                (p[1] for p in canonical), dtype=np.int64,
                count=len(canonical),
            )
            per_attr = [
                graph.relations_batch(us, vs) for graph in self.graphs
            ]
            for index, key in enumerate(canonical):
                rels = tuple(
                    RELATION_CODES[codes[index]] for codes in per_attr
                )
                memo[key] = rels
                memo[(key[1], key[0])] = tuple(
                    _FLIPPED[rel] for rel in rels
                )
        else:
            for key in canonical:
                rels = tuple(
                    graph.relation(key[0], key[1]) for graph in self.graphs
                )
                memo[key] = rels
                memo[(key[1], key[0])] = tuple(
                    _FLIPPED[rel] for rel in rels
                )
        for pair in missing:
            out[pair] = memo[pair]
        return out

    # -- closure transactions -------------------------------------------

    def apply_verdicts(self, batch: Iterable[Verdict]) -> int:
        """Ingest one round's aggregated verdicts as a single closure
        transaction.

        ``batch`` is an iterable of ``(left, right, attribute, answer)``
        tuples. Verdicts are applied strictly in the given order — under
        :attr:`ContradictionPolicy.KEEP_FIRST` acceptance is
        order-sensitive, so the transaction never reorders answers; what
        it batches is everything *around* the per-edge closure update:
        one ``pref.apply_verdicts`` span, one
        ``crowdsky_closure_batch_size`` histogram observation and one
        ``pref.batch`` trace event per round instead of per answer.

        Returns the number of accepted (non-contradicting) verdicts.
        """
        verdicts = batch if isinstance(batch, list) else list(batch)
        if not verdicts:
            return 0
        observation = current_observation()
        if observation.enabled:
            with observation.tracer.span(
                "pref.apply_verdicts",
                verdicts=len(verdicts),
                backend=self.backend,
            ):
                accepted = self._apply_verdicts(verdicts)
            observation.tracer.event(
                "pref.batch",
                verdicts=len(verdicts),
                accepted=accepted,
                backend=self.backend,
            )
            observation.metrics.histogram(CLOSURE_BATCH_SIZE).observe(
                len(verdicts)
            )
        else:
            accepted = self._apply_verdicts(verdicts)
        if self._run_metrics is not None:
            self._run_metrics.histogram(CLOSURE_BATCH_SIZE).observe(
                len(verdicts)
            )
        return accepted

    def _apply_verdicts(self, verdicts: List[Verdict]) -> int:
        graphs = self.graphs
        accepted = 0
        for u, v, attribute, answer in verdicts:
            if graphs[attribute].add_answer(u, v, answer):
                accepted += 1
        return accepted

    # -- AC-level predicates --------------------------------------------

    def relation(self, u: int, v: int, attribute: int) -> Optional[Preference]:
        """Derivable relation on one crowd attribute."""
        return self.pair_relations(u, v)[attribute]

    def add_answer(
        self, u: int, v: int, attribute: int, answer: Preference
    ) -> bool:
        """Record an aggregated answer on one crowd attribute."""
        return self.graphs[attribute].add_answer(u, v, answer)

    def unknown_attributes(self, u: int, v: int) -> List[int]:
        """Crowd attributes on which ``(u, v)`` is not yet derivable."""
        return [
            j
            for j, rel in enumerate(self.pair_relations(u, v))
            if rel is None
        ]

    def fully_known(self, u: int, v: int) -> bool:
        """Whether the pair is derivable on every crowd attribute."""
        return None not in self.pair_relations(u, v)

    def weakly_prefers_all(self, u: int, v: int) -> bool:
        """``u ⪯_AC v`` derivable: on every attribute ``u ≺ v`` or tie."""
        for rel in self.pair_relations(u, v):
            if rel is None or rel is Preference.RIGHT:
                return False
        return True

    def ac_dominates(self, u: int, v: int) -> bool:
        """``u ≺_AC v`` derivable: weakly preferred everywhere, strictly
        somewhere."""
        strict = False
        for rel in self.pair_relations(u, v):
            if rel is None or rel is Preference.RIGHT:
                return False
            if rel is Preference.LEFT:
                strict = True
        return strict

    def cannot_dominate(self, u: int, v: int) -> bool:
        """``u ≺_A v`` is already ruled out: some crowd attribute is
        known to strictly prefer ``v``."""
        return any(
            rel is Preference.RIGHT for rel in self.pair_relations(u, v)
        )

    def ac_equal(self, u: int, v: int) -> bool:
        """``u =_AC v`` derivable on every crowd attribute."""
        return all(
            rel is Preference.EQUAL for rel in self.pair_relations(u, v)
        )

    def sky_ac(self, members: Sequence[int]) -> List[int]:
        """``SKY_AC`` of a tuple subset under current knowledge (§3.3).

        Removes members strictly AC-dominated by another member, and
        deduplicates fully-tied members (keeping the lowest index) — a
        tied twin answers the same questions, so asking both is
        redundant. Order of the survivors follows ``members``.
        """
        if len(members) < 2:
            return list(members)
        if isinstance(self.graphs[0], NumpyPreferenceGraph):
            return self._sky_ac_numpy(members)
        if self.num_attributes == 1 and isinstance(
            self.graphs[0], BitsetPreferenceGraph
        ):
            return self._sky_ac_bitset(members)
        survivors: List[int] = []
        for v in members:
            dominated = False
            for u in members:
                if u == v:
                    continue
                rels = self.pair_relations(u, v)
                if all(
                    rel is not None and rel is not Preference.RIGHT
                    for rel in rels
                ):
                    if any(rel is Preference.LEFT for rel in rels):
                        dominated = True  # u ≺_AC v
                        break
                    if u < v:
                        dominated = True  # full tie: keep lowest index
                        break
            if not dominated:
                survivors.append(v)
        return survivors

    def _sky_ac_bitset(self, members: Sequence[int]) -> List[int]:
        """Single-attribute fast path: one ancestor-mask test per member.

        With ``|AC| = 1``, ``u ≺_AC v`` is plain reachability, so ``v``
        survives iff no other member sits strictly above it and no
        lower-indexed member shares its tie class — three bitset ANDs
        per member instead of ``O(k)`` pair queries.
        """
        graph = self.graphs[0]
        member_mask = 0
        for m in members:
            member_mask |= 1 << m
        survivors: List[int] = []
        for v in members:
            others = member_mask & ~(1 << v)
            if graph.ancestors_bits(v) & others:
                continue  # some member strictly preferred over v
            tied = graph.tie_class_bits(v) & others
            if tied and (tied & ((1 << v) - 1)):
                continue  # a lower-indexed fully-tied twin is kept
            survivors.append(v)
        return survivors

    def _sky_ac_numpy(self, members: Sequence[int]) -> List[int]:
        """Vectorized ``SKY_AC`` for any ``|AC|`` (numpy backend).

        For every member ``v`` the survivorship test of the generic loop
        — "is some other member ``u`` weakly preferred on every
        attribute and strictly somewhere (or a fully-tied lower-index
        twin)?" — becomes per-attribute row gathers combined with
        bitwise AND/OR, then one masked ``any`` per member. Equivalent
        to the generic loop bit for bit: ``v``'s own bit never appears
        in an ancestor row, so self-comparison is excluded for free.
        """
        m = np.fromiter(members, dtype=np.int64, count=len(members))
        words = self.graphs[0]._words
        one = np.uint64(1)
        member_bits = one << (m & 63).astype(np.uint64)
        member_mask = np.zeros(words, dtype=np.uint64)
        np.bitwise_or.at(member_mask, m >> 6, member_bits)
        weak_all = strict_any = tie_all = None
        for graph in self.graphs:
            roots = graph.find_roots(m)
            anc = graph._anc[roots]
            cls = graph._cls[roots]
            if weak_all is None:
                weak_all = anc | cls
                strict_any = anc
                tie_all = cls
            else:
                weak_all &= anc | cls
                strict_any = strict_any | anc
                tie_all = tie_all & cls
        dominated = ((weak_all & strict_any) & member_mask).any(axis=1)
        # Fully-tied twins: v is dropped iff a lower-indexed member
        # shares its class on every attribute. Build per-member "bits
        # strictly below v" masks and test the all-attribute tie rows.
        cols = np.arange(words, dtype=np.int64)[None, :]
        vw = (m >> 6)[:, None]
        below_v = np.where(cols < vw, ~np.uint64(0), np.uint64(0))
        below_v[cols == vw] = member_bits - one
        tied = ((tie_all & member_mask) & below_v).any(axis=1)
        keep = ~(dominated | tied)
        return [v for v, kept in zip(members, keep) if kept]

    def total_rejected(self) -> int:
        """Total contradicted answers across all attributes."""
        return sum(graph.rejected_answers for graph in self.graphs)

    def closure_updates(self) -> int:
        """Total closure-maintenance updates across all attributes."""
        return sum(graph.closure_updates for graph in self.graphs)

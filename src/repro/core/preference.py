"""The preference graph ``T`` over crowd attributes (paper §3.3).

Each crowd attribute maintains a :class:`PreferenceGraph`: nodes are
tuples, an edge ``u → v`` records "``u`` preferred over ``v``", and
reachability gives transitive preferences. Crowds may also answer
"equally preferred"; tied tuples are merged into equivalence classes via
union-find, and edges connect class representatives.

Noisy crowds can produce answers that contradict earlier (transitively
derived) knowledge — e.g. three questions of one parallel round forming a
cycle. The paper does not discuss this case; the default
:attr:`ContradictionPolicy.KEEP_FIRST` keeps ``T`` acyclic by rejecting
the newcomer (first-arrival wins), and :attr:`ContradictionPolicy.RAISE`
turns contradictions into errors for the perfect-crowd setting.

:class:`PreferenceSystem` bundles ``|AC|`` graphs and provides the
AC-level dominance tests used by the pruning rules (Corollaries 1-2,
Lemma 4).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set

from repro.crowd.questions import Preference
from repro.exceptions import PreferenceConflictError


class ContradictionPolicy(enum.Enum):
    """What to do when a new answer contradicts derived knowledge."""

    KEEP_FIRST = "keep_first"
    RAISE = "raise"


class PreferenceGraph:
    """Strict preferences + tie classes over ``n`` tuples, one attribute."""

    def __init__(
        self,
        n: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        self._n = n
        self._policy = policy
        self._parent = list(range(n))
        self._out: Dict[int, Set[int]] = {}
        self._in: Dict[int, Set[int]] = {}
        self._descendants: Dict[int, Set[int]] = {}
        self.rejected_answers = 0

    def _invalidate(self) -> None:
        self._descendants.clear()

    # -- union-find ------------------------------------------------------

    def _find(self, x: int) -> int:
        root = x
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[x] != root:  # path compression
            self._parent[x], x = root, self._parent[x]
        return root

    def _union(self, a: int, b: int) -> int:
        ra, rb = self._find(a), self._find(b)
        if ra == rb:
            return ra
        keep, drop = (ra, rb) if ra < rb else (rb, ra)
        self._parent[drop] = keep
        out = self._out.pop(drop, set())
        self._out.setdefault(keep, set()).update(out)
        for succ in out:
            succs_in = self._in.get(succ)
            if succs_in is not None:
                succs_in.discard(drop)
                succs_in.add(keep)
        incoming = self._in.pop(drop, set())
        self._in.setdefault(keep, set()).update(incoming)
        for pred in incoming:
            preds_out = self._out.get(pred)
            if preds_out is not None:
                preds_out.discard(drop)
                preds_out.add(keep)
        self._out.get(keep, set()).discard(keep)
        self._in.get(keep, set()).discard(keep)
        self._invalidate()
        return keep

    # -- reachability ----------------------------------------------------

    def _reaches(self, source: int, target: int) -> bool:
        """Is ``source ≺ target`` derivable (transitively)?

        Descendant sets are memoized per representative and invalidated
        on every mutation — pruning performs many reachability queries
        between consecutive answers.
        """
        if source == target:
            return False
        cached = self._descendants.get(source)
        if cached is None:
            cached = set()
            stack = [source]
            while stack:
                node = stack.pop()
                for succ in self._out.get(node, ()):
                    if succ not in cached:
                        cached.add(succ)
                        stack.append(succ)
            self._descendants[source] = cached
        return target in cached

    # -- public API ------------------------------------------------------

    def relation(self, u: int, v: int) -> Optional[Preference]:
        """The derivable relation between ``u`` and ``v``.

        Returns ``LEFT`` when ``u`` preferred, ``RIGHT`` when ``v``
        preferred, ``EQUAL`` when tied, ``None`` when unknown.
        """
        ru, rv = self._find(u), self._find(v)
        if ru == rv:
            return Preference.EQUAL
        if self._reaches(ru, rv):
            return Preference.LEFT
        if self._reaches(rv, ru):
            return Preference.RIGHT
        return None

    def knows(self, u: int, v: int) -> bool:
        """Whether any relation between ``u`` and ``v`` is derivable."""
        return self.relation(u, v) is not None

    def add_answer(self, u: int, v: int, answer: Preference) -> bool:
        """Record an aggregated crowd answer for the pair ``(u, v)``.

        Returns True when the answer was incorporated, False when it was
        rejected for contradicting derived knowledge (KEEP_FIRST policy).
        """
        known = self.relation(u, v)
        if known is not None:
            if known is answer:
                return True
            self.rejected_answers += 1
            if self._policy is ContradictionPolicy.RAISE:
                raise PreferenceConflictError(
                    f"answer {answer.value} for ({u}, {v}) contradicts "
                    f"derived relation {known.value}"
                )
            return False
        if answer is Preference.EQUAL:
            self._union(u, v)
            return True
        if answer is Preference.LEFT:
            src, dst = self._find(u), self._find(v)
        else:
            src, dst = self._find(v), self._find(u)
        self._out.setdefault(src, set()).add(dst)
        self._in.setdefault(dst, set()).add(src)
        self._invalidate()
        return True

    def edges(self) -> List[tuple]:
        """All direct edges ``(u_rep, v_rep)`` — for inspection/tests."""
        return [
            (src, dst) for src, succs in self._out.items() for dst in succs
        ]

    def class_of(self, u: int) -> int:
        """Representative of ``u``'s tie class."""
        return self._find(u)


class PreferenceSystem:
    """One :class:`PreferenceGraph` per crowd attribute.

    Provides the AC-level predicates used by the pruning machinery. All
    predicates are *knowledge-relative*: they return what is currently
    derivable from answered questions, never consulting latent values.
    """

    def __init__(
        self,
        n: int,
        num_attributes: int,
        policy: ContradictionPolicy = ContradictionPolicy.KEEP_FIRST,
    ):
        if num_attributes < 1:
            raise ValueError("need at least one crowd attribute")
        self._n = n
        self.graphs = [PreferenceGraph(n, policy) for _ in range(num_attributes)]

    @property
    def num_attributes(self) -> int:
        """``|AC|``."""
        return len(self.graphs)

    def relation(self, u: int, v: int, attribute: int) -> Optional[Preference]:
        """Derivable relation on one crowd attribute."""
        return self.graphs[attribute].relation(u, v)

    def add_answer(
        self, u: int, v: int, attribute: int, answer: Preference
    ) -> bool:
        """Record an aggregated answer on one crowd attribute."""
        return self.graphs[attribute].add_answer(u, v, answer)

    def unknown_attributes(self, u: int, v: int) -> List[int]:
        """Crowd attributes on which ``(u, v)`` is not yet derivable."""
        return [
            j for j, graph in enumerate(self.graphs) if not graph.knows(u, v)
        ]

    def fully_known(self, u: int, v: int) -> bool:
        """Whether the pair is derivable on every crowd attribute."""
        return not self.unknown_attributes(u, v)

    def weakly_prefers_all(self, u: int, v: int) -> bool:
        """``u ⪯_AC v`` derivable: on every attribute ``u ≺ v`` or tie."""
        for graph in self.graphs:
            rel = graph.relation(u, v)
            if rel is None or rel is Preference.RIGHT:
                return False
        return True

    def ac_dominates(self, u: int, v: int) -> bool:
        """``u ≺_AC v`` derivable: weakly preferred everywhere, strictly
        somewhere."""
        strict = False
        for graph in self.graphs:
            rel = graph.relation(u, v)
            if rel is None or rel is Preference.RIGHT:
                return False
            if rel is Preference.LEFT:
                strict = True
        return strict

    def cannot_dominate(self, u: int, v: int) -> bool:
        """``u ≺_A v`` is already ruled out: some crowd attribute is
        known to strictly prefer ``v``."""
        return any(
            graph.relation(u, v) is Preference.RIGHT
            for graph in self.graphs
        )

    def ac_equal(self, u: int, v: int) -> bool:
        """``u =_AC v`` derivable on every crowd attribute."""
        return all(
            graph.relation(u, v) is Preference.EQUAL for graph in self.graphs
        )

    def sky_ac(self, members: Sequence[int]) -> List[int]:
        """``SKY_AC`` of a tuple subset under current knowledge (§3.3).

        Removes members strictly AC-dominated by another member, and
        deduplicates fully-tied members (keeping the lowest index) — a
        tied twin answers the same questions, so asking both is
        redundant. Order of the survivors follows ``members``.
        """
        survivors: List[int] = []
        for v in members:
            dominated = False
            for u in members:
                if u == v:
                    continue
                if self.ac_dominates(u, v):
                    dominated = True
                    break
                if self.ac_equal(u, v) and u < v:
                    dominated = True
                    break
            if not dominated:
                survivors.append(v)
        return survivors

    def total_rejected(self) -> int:
        """Total contradicted answers across all attributes."""
        return sum(graph.rejected_answers for graph in self.graphs)

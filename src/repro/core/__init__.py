"""The paper's primary contribution: CrowdSky and its schedulers.

* :mod:`repro.core.preference` — the preference graph ``T`` over crowd
  attributes (§3.3) with tie classes and transitive inference,
* :mod:`repro.core.tasks` — the per-tuple evaluation state machine
  implementing the pruning ladder DSet / P1 / P2 / P3 (§3.1-§3.4),
* :mod:`repro.core.crowdsky` — serial CrowdSky (Algorithm 1),
* :mod:`repro.core.parallel` — ParallelDSet (§4.1) and ParallelSL
  (Algorithm 2, §4.2),
* :mod:`repro.core.baseline` — the tournament-sort Baseline,
* :mod:`repro.core.unary` — the unary-question baseline simulating [12],
* :mod:`repro.core.result` — the result/trace container.
"""

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import CrowdSkyConfig, PruningLevel, crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.preference import (
    BitsetPreferenceGraph,
    ContradictionPolicy,
    PreferenceGraph,
    PreferenceSystem,
    ReferencePreferenceGraph,
    default_backend,
)
from repro.core.result import CrowdSkylineResult
from repro.core.unary import unary_skyline

__all__ = [
    "BitsetPreferenceGraph",
    "ContradictionPolicy",
    "CrowdSkyConfig",
    "CrowdSkylineResult",
    "PreferenceGraph",
    "PreferenceSystem",
    "PruningLevel",
    "ReferencePreferenceGraph",
    "baseline_skyline",
    "crowdsky",
    "default_backend",
    "parallel_dset",
    "parallel_sl",
    "unary_skyline",
]

"""Per-tuple evaluation state machine (paper §3.1-§3.4).

A :class:`TupleTask` drives one tuple ``t`` through the CrowdSky pipeline:

1. **Activation** — apply P1 (drop complete non-skyline tuples from
   ``DS(t)``, Corollary 1) and P2 (reduce to ``SKY_AC(DS(t))`` under
   current knowledge, Corollary 2), then build the probing pair list
   ``P(t)`` ordered by descending ``freq(u, v)`` (§3.4 — see DESIGN.md on
   the prose/pseudocode discrepancy).
2. **Probing (P3)** — ask pairs inside ``DS(t)``; each resolved pair
   removes its less-preferred member and all of that member's pending
   pairs.
3. **Asking** — generate ``Q(t) = {(s, t) | s ∈ DS(t)}``; stop early as
   soon as some ``s`` dominates ``t`` (complete non-skyline tuple); if
   every ``s`` fails to dominate, ``t`` is a complete skyline tuple.

The task communicates with its scheduler through :meth:`advance`: it
returns the next *pair* that needs crowd input, consuming for free every
step already derivable from the preference system ``T``. Schedulers
(serial, ParallelDSet, ParallelSL) differ only in how they interleave
``advance`` calls and batch the emitted pairs into rounds.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple as TupleT

from repro.core.preference import PreferenceSystem
from repro.crowd.questions import Preference
from repro.skyline.dominating import FrequencyOracle


class TaskState(enum.Enum):
    """Lifecycle of a tuple evaluation."""

    PENDING = "pending"
    PROBING = "probing"
    ASKING = "asking"
    DONE = "done"


class TaskOutcome(enum.Enum):
    """Completion status of a tuple (Definition 4)."""

    SKYLINE = "skyline"
    NON_SKYLINE = "non-skyline"


@dataclass(frozen=True)
class PairRequest:
    """A pair whose (partially) unknown preferences must be asked.

    ``force`` requests the full pair even when parts are transitively
    derivable — used by the DSet/P1 variants, which predate the
    preference-tree inference introduced with P2 (§3.3).
    """

    left: int
    right: int
    force: bool = False
    #: True for Q(t) questions "does left dominate right?", where a single
    #: attribute preferring ``right`` already settles the outcome — the
    #: round-robin extension uses this to skip the remaining attributes.
    dominance_check: bool = False


@dataclass(frozen=True)
class MultiwayRequest:
    """An m-ary probing request: which of these tuples is most preferred?

    Emitted instead of probe pairs when the engine runs with
    ``multiway > 2`` (the §2.1 extension); the winner's answer yields
    ``k − 1`` preference edges at once.
    """

    candidates: TupleT[int, ...]
    attribute: int = 0


class TupleTask:
    """Evaluation of one tuple ``t`` against its dominating set.

    Parameters
    ----------
    t:
        The tuple index under evaluation.
    dominating_set:
        ``DS(t)`` members in evaluation order (ascending ``|DS(s)|``).
    prefs:
        The shared preference system ``T``.
    frequency:
        ``freq(u, v)`` oracle for probing order.
    use_p1, use_p2, use_p3:
        Pruning toggles (all off = the paper's plain "DSet" variant, all
        on = full CrowdSky).
    probe_ascending:
        Ablation switch: probe pairs in *ascending* ``freq`` order (the
        literal reading of Algorithm 1 line 11) instead of the prose's
        descending order.
    multiway:
        Probe with m-ary questions of up to this many tuples (§2.1's
        extension; only effective with a single crowd attribute).
    """

    def __init__(
        self,
        t: int,
        dominating_set: Sequence[int],
        prefs: PreferenceSystem,
        frequency: FrequencyOracle,
        use_p1: bool = True,
        use_p2: bool = True,
        use_p3: bool = True,
        probe_ascending: bool = False,
        multiway: int = 2,
    ):
        if multiway < 2:
            raise ValueError("multiway group size must be at least 2")
        self.t = t
        self._ds: List[int] = list(dominating_set)
        self._prefs = prefs
        self._frequency = frequency
        self._use_p1 = use_p1
        self._use_p2 = use_p2
        self._use_p3 = use_p3
        self._probe_ascending = probe_ascending
        # m-ary probing only collapses groups cleanly on one attribute;
        # with several crowd attributes the winner need not dominate.
        self._multiway = multiway if prefs.num_attributes == 1 else 2
        self._asked_groups: Set[TupleT[int, ...]] = set()
        self._probe_pairs: List[TupleT[int, int]] = []
        self._ask_index = 0
        self._requested: Set[int] = set()
        #: DS members whose Q(t) question the crowd gave up on — treated
        #: conservatively as unable to dominate ``t``.
        self._abandoned: Set[int] = set()
        self.state = TaskState.PENDING
        self.outcome: Optional[TaskOutcome] = None

    @property
    def abandoned_members(self) -> Set[int]:
        """DS members skipped because their question was unresolvable."""
        return set(self._abandoned)

    @property
    def dominating_set(self) -> List[int]:
        """The (pruned) dominating set as it currently stands."""
        return list(self._ds)

    def activate(self, complete_non_skyline: Set[int]) -> None:
        """Apply activation-time pruning and enter the probing phase."""
        if self.state is not TaskState.PENDING:
            raise RuntimeError(f"task {self.t} activated twice")
        if self._use_p1:
            self._ds = [s for s in self._ds if s not in complete_non_skyline]
        if self._use_p2:
            self._ds = self._prefs.sky_ac(self._ds)
        if self._use_p3 and len(self._ds) > 1:
            self._probe_pairs = self._sorted_probe_pairs(self._ds)
        self.state = TaskState.PROBING

    def _sorted_probe_pairs(
        self, members: Sequence[int]
    ) -> List[TupleT[int, int]]:
        members = list(members)
        freq = self._frequency.freq_matrix(members)
        pairs = [
            (members[i], members[j], int(freq[i, j]))
            for i in range(len(members))
            for j in range(i + 1, len(members))
        ]
        # Highest pruning power first (§3.4 prose; Algorithm 1 line 11
        # says ascending — see DESIGN.md); deterministic index tie-break.
        sign = 1 if self._probe_ascending else -1
        pairs.sort(key=lambda p: (sign * p[2], p[0], p[1]))
        return [(u, v) for u, v, _ in pairs]

    def _remove_member(self, member: int) -> None:
        self._ds = [s for s in self._ds if s != member]
        self._probe_pairs = [
            pair for pair in self._probe_pairs if member not in pair
        ]

    def _resolve_probe_pair(self, u: int, v: int) -> bool:
        """Try to settle a probe pair from current knowledge.

        One pair-relations snapshot answers all four predicates
        (dominates either way, fully tied, fully known) in a single
        closure pass. Returns True when the pair is settled (and
        removed)."""
        rels = self._prefs.pair_relations(u, v)
        if None not in rels:
            left = Preference.LEFT in rels
            right = Preference.RIGHT in rels
            if left and not right:
                self._remove_member(v)  # u ≺_AC v
                return True
            if right and not left:
                self._remove_member(u)  # v ≺_AC u
                return True
            if not left and not right:
                self._remove_member(max(u, v))  # fully tied twins
                return True
            # Known but incomparable across crowd attributes (|AC| > 1):
            # neither member prunes the other; drop the pair.
            self._probe_pairs = [
                pair for pair in self._probe_pairs if pair != (u, v)
            ]
            return True
        return False

    def abandon_request(self, request) -> None:
        """Give up on an unresolvable request (fault tolerance).

        Called by a scheduler when the crowd permanently failed the
        emitted request (retries exhausted, deadline missed, or budget
        gone in non-strict mode). The request is resolved
        *conservatively* — no pruning is derived from it:

        * an abandoned probe pair keeps both members in ``DS(t)``,
        * an abandoned multiway probe skips the rest of the probing
          phase (probing is an optimization, never required),
        * an abandoned ``Q(t)`` question treats its DS member as unable
          to dominate ``t`` — ``t`` stays a skyline candidate, so the
          degraded skyline can only gain tuples, never lose true ones.
        """
        if isinstance(request, MultiwayRequest):
            self._probe_pairs = []
            if self.state is TaskState.PROBING:
                self.state = TaskState.ASKING
            return
        if self.state is TaskState.PROBING:
            pair = (request.left, request.right)
            flipped = (request.right, request.left)
            self._probe_pairs = [
                p for p in self._probe_pairs if p != pair and p != flipped
            ]
        elif self.state is TaskState.ASKING:
            self._abandoned.add(request.left)

    def advance(self) -> Optional[PairRequest]:
        """Return the next pair needing crowd input, or None when done.

        All steps derivable from ``T`` are consumed without emitting a
        request; callers must re-invoke :meth:`advance` after feeding the
        answers of an emitted request into the preference system.
        """
        if self.state is TaskState.PENDING:
            raise RuntimeError(f"task {self.t} not activated")

        while self.state is TaskState.PROBING and self._multiway > 2:
            # m-ary probing: consume derivable knowledge, then ask the
            # next group of up to k mutually-unresolved members.
            self._ds = self._prefs.sky_ac(self._ds)
            if len(self._ds) <= 1 or not self._use_p3:
                self.state = TaskState.ASKING
                break
            group = tuple(self._ds[: self._multiway])
            if group in self._asked_groups:  # pragma: no cover - guarded
                raise RuntimeError(
                    f"multiway probing made no progress on {group}"
                )
            self._asked_groups.add(group)
            return MultiwayRequest(group)

        if self.state is TaskState.PROBING and len(self._probe_pairs) > 1:
            # Warm the pair memo for the whole remaining ladder in one
            # closure pass (one bulk kernel call under the numpy
            # backend); the head-by-head resolution below then runs on
            # memo hits until the next crowd answer. Pure prefetch — no
            # state changes, so the emitted questions are unchanged.
            live = set(self._ds)
            self._prefs.resolve_pairs(
                (u, v)
                for u, v in self._probe_pairs
                if u in live and v in live
            )

        while self.state is TaskState.PROBING:
            if not self._probe_pairs:
                self.state = TaskState.ASKING
                break
            u, v = self._probe_pairs[0]
            if u not in self._ds or v not in self._ds:
                self._probe_pairs.pop(0)
                continue
            if self._resolve_probe_pair(u, v):
                continue
            return PairRequest(u, v)

        if (
            self.state is TaskState.ASKING
            and self._use_p2
            and len(self._ds) - self._ask_index > 1
        ):
            # Same bulk prefetch for the Q(t) ladder: settle every
            # remaining (s, t) dominance check in one closure pass, then
            # scan on memo hits.
            self._prefs.resolve_pairs(
                (s, self.t)
                for s in self._ds[self._ask_index:]
                if s not in self._abandoned
            )

        while self.state is TaskState.ASKING:
            if self._ask_index >= len(self._ds):
                if self.outcome is None:
                    self.outcome = TaskOutcome.SKYLINE
                self.state = TaskState.DONE
                break
            s = self._ds[self._ask_index]
            if s in self._abandoned:
                # Unresolvable question: conservatively assume s does not
                # dominate t and move on.
                self._ask_index += 1
                continue
            if not self._use_p2 and s not in self._requested:
                # Without P2 there is no preference-tree inference: every
                # question of Q(t) is asked outright (§3.1-§3.2).
                self._requested.add(s)
                return PairRequest(s, self.t, force=True,
                                   dominance_check=True)
            rels = self._prefs.pair_relations(s, self.t)
            if all(
                rel is not None and rel is not Preference.RIGHT
                for rel in rels
            ):
                # s ⪯_AC t derivable; with s ≺_AK t this gives s ≺_A t:
                # t is a complete non-skyline tuple (Definition 4) — the
                # remaining questions of Q(t) are unnecessary in every
                # variant.
                self.outcome = TaskOutcome.NON_SKYLINE
                self.state = TaskState.DONE
                break
            if None not in rels or (
                self._use_p2 and Preference.RIGHT in rels
            ):
                # Fully answered, or dominance already ruled out by a
                # partial answer (e.g. from round-robin asking) — either
                # way s cannot make t a non-skyline tuple.
                self._ask_index += 1
                continue
            return PairRequest(s, self.t, dominance_check=True)

        if self.state is TaskState.DONE and self.outcome is None:
            self.outcome = TaskOutcome.SKYLINE
        return None

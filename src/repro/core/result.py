"""Result container for crowd-enabled skyline executions."""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Any, Dict, List, Optional, Set, Tuple as TupleT

from repro.crowd.faults import FaultStats
from repro.crowd.platform import (
    CrowdStats,
    DEFAULT_PRICE,
    QUESTIONS_PER_HIT,
)
from repro.crowd.questions import PairwiseQuestion, Preference
from repro.crowd.voting import DEFAULT_OMEGA
from repro.data.relation import Relation
from repro.obs.metrics import (
    DEGRADED_ANSWERS,
    MetricsRegistry,
    RETRIES,
    TIMEOUTS,
)


@dataclass
class CrowdSkylineResult:
    """Outcome of a crowd-enabled skyline computation.

    Attributes
    ----------
    skyline:
        Tuple indices of the crowdsourced skyline ``SKY_A(R)``.
    stats:
        Question/round/cost accounting from the crowd platform.
    question_log:
        The asked micro-questions in execution order, as
        ``(round, question, aggregated answer)`` — enables the golden
        trace tests against the paper's worked examples.
    algorithm:
        Name of the algorithm/scheduler that produced the result.
    rejected_answers:
        Aggregated answers rejected for contradicting earlier knowledge
        (only nonzero with noisy crowds).
    """

    skyline: Set[int]
    stats: CrowdStats
    question_log: List[TupleT[int, PairwiseQuestion, Preference]] = field(
        default_factory=list
    )
    algorithm: str = "crowdsky"
    rejected_answers: int = 0
    #: Budgeted runs: did the question budget run out before completion?
    budget_exhausted: bool = False
    #: Budgeted runs: tuples whose status was definitively decided.
    complete_tuples: Optional[int] = None
    #: Fault-tolerant runs: True when some question was permanently given
    #: up on (retries exhausted, deadline missed, or budget gone) — the
    #: skyline is then a conservative superset: unresolved pairs were
    #: treated as incomparable, so no true skyline tuple was dropped.
    degraded: bool = False
    #: The question keys ``(u, v, attribute)`` the crowd gave up on.
    unresolved_pairs: List[TupleT[int, int, int]] = field(
        default_factory=list
    )
    #: Injected-fault tallies (None when no fault plan was attached).
    fault_stats: Optional[FaultStats] = None
    #: Run-local metrics registry of the crowd platform that produced
    #: this result — the single source for fault/retry numbers in
    #: :meth:`summary` and :meth:`round_table` (``stats`` remains as a
    #: fallback for hand-built results).
    metrics: Optional[MetricsRegistry] = None
    #: Wall-clock seconds of the run, stamped when a trace was active
    #: (``repro.obs.observe``); None otherwise.
    wall_time_s: Optional[float] = None
    #: One dict per executed crowd posting (round index, format,
    #: question/assignment/retry/fault counts, attribution context) —
    #: see ``SimulatedCrowd.cost_records``. Feeds :meth:`cost_breakdown`.
    cost_records: List[Dict[str, Any]] = field(default_factory=list)

    @classmethod
    def resume(
        cls,
        journal,
        relation: Relation,
        crowd=None,
    ) -> "CrowdSkylineResult":
        """Resume an interrupted journaled run (see
        :func:`repro.core.resume.resume_run`).

        ``journal`` is the journal directory (or a recovered journal);
        ``relation`` must be the dataset the original run used. The
        import is deferred: the resume machinery pulls in every
        algorithm entry point, which this module must not.
        """
        from repro.core.resume import resume_run

        return resume_run(journal, relation, crowd=crowd)

    def cost_breakdown(
        self,
        price: float = DEFAULT_PRICE,
        omega: int = DEFAULT_OMEGA,
        per_hit: int = QUESTIONS_PER_HIT,
    ) -> Dict[str, Any]:
        """Charge the run's money back to what caused each round.

        Aggregates :attr:`cost_records` by round (merged multiway
        postings share their predecessor round's HIT arithmetic, like
        :meth:`CrowdStats.hit_cost`) and attributes each round's HITs to
        the context recorded when it executed — scheduler, phase, layer
        and tuple dimensions. ``total_cost`` is computed with the exact
        expression the ledger uses, so it equals
        ``stats.hit_cost(price, omega, per_hit)`` bit for bit whenever
        the records cover the whole run.
        """
        dimensions = ("scheduler", "phase", "layer", "tuple")
        per_round: Dict[int, Dict[str, Any]] = {}
        order: List[int] = []
        questions = 0
        retried = 0
        assignments = 0
        faults = 0
        for record in self.cost_records:
            index = record["round"]
            entry = per_round.get(index)
            if entry is None:
                entry = per_round[index] = {
                    "questions": 0,
                    "context": record.get("context", {}),
                }
                order.append(index)
            entry["questions"] += record["questions"]
            questions += record["questions"]
            retried += record.get("retried", 0)
            assignments += record.get("assignments", 0)
            faults += record.get("faults", 0)
        total_hits = 0
        by_dimension: Dict[str, Dict[str, Dict[str, Any]]] = {
            dim: {} for dim in dimensions
        }
        for index in order:
            entry = per_round[index]
            hits = ceil(entry["questions"] / per_hit)
            total_hits += hits
            for dim in dimensions:
                value = entry["context"].get(dim)
                key = "(unattributed)" if value is None else str(value)
                bucket = by_dimension[dim].setdefault(
                    key, {"rounds": 0, "questions": 0, "hits": 0}
                )
                bucket["rounds"] += 1
                bucket["questions"] += entry["questions"]
                bucket["hits"] += hits
        for groups in by_dimension.values():
            for bucket in groups.values():
                bucket["cost"] = price * omega * bucket["hits"]
        return {
            "price": price,
            "omega": omega,
            "questions_per_hit": per_hit,
            "rounds": len(order),
            "questions": questions,
            "retried": retried,
            "assignments": assignments,
            "faults": faults,
            "hits": total_hits,
            "total_cost": price * omega * total_hits,
            "by_scheduler": by_dimension["scheduler"],
            "by_phase": by_dimension["phase"],
            "by_layer": by_dimension["layer"],
            "by_tuple": by_dimension["tuple"],
        }

    def _metric_total(self, name: str, fallback: int) -> int:
        """A counter total from the attached registry, or ``fallback``
        (the legacy ``CrowdStats`` field) when none is attached."""
        if self.metrics is None:
            return fallback
        return int(self.metrics.total(name))

    def skyline_labels(self, relation: Relation) -> Set[str]:
        """The skyline as human-readable labels."""
        return {relation.label(i) for i in sorted(self.skyline)}

    def asked_pairs(self) -> List[TupleT[int, int]]:
        """The asked pairs (tuple-index pairs) in order, attributes merged."""
        seen = []
        last: Optional[TupleT[int, int]] = None
        for _, question, _ in self.question_log:
            pair = (question.left, question.right)
            if pair != last:
                seen.append(pair)
            last = pair
        return seen

    def round_table(self, relation: Optional[Relation] = None) -> List[dict]:
        """Per-round question listing (the shape of the paper's Table 3).

        Returns one row per executed round with the asked pairs, labelled
        when a relation is provided.
        """
        by_round: dict = {}
        for round_number, question, _ in self.question_log:
            if relation is not None:
                pair = (
                    f"({relation.label(question.left)}, "
                    f"{relation.label(question.right)})"
                )
            else:
                pair = f"({question.left}, {question.right})"
            by_round.setdefault(round_number, []).append(pair)
        retried = self.stats.retried_per_round
        show_faults = (
            self._metric_total(RETRIES, self.stats.retries) > 0
            or self._metric_total(TIMEOUTS, self.stats.timeouts) > 0
        )
        rows = []
        for round_number, pairs in sorted(by_round.items()):
            row = {"round": round_number, "questions": ", ".join(pairs)}
            if show_faults:
                # round_sizes[i] belongs to round i + 1.
                index = round_number - 1
                row["retried"] = (
                    retried[index] if 0 <= index < len(retried) else 0
                )
            rows.append(row)
        return rows

    def summary(self, relation: Optional[Relation] = None) -> str:
        """One-line human-readable summary.

        Fault/retry numbers come from the attached metrics registry
        (the platform's own accounting); total wall-clock time is
        appended when the run executed under an active trace
        (:func:`repro.obs.observe`).
        """
        labels = ""
        if relation is not None:
            labels = " {" + ", ".join(
                sorted(relation.label(i) for i in self.skyline)
            ) + "}"
        text = (
            f"{self.algorithm}: |skyline|={len(self.skyline)}{labels} "
            f"questions={self.stats.questions} rounds={self.stats.rounds} "
            f"cost=${self.stats.hit_cost():.2f}"
        )
        stats = self.stats
        retries = self._metric_total(RETRIES, stats.retries)
        timeouts = self._metric_total(TIMEOUTS, stats.timeouts)
        degraded_answers = self._metric_total(
            DEGRADED_ANSWERS, stats.degraded_answers
        )
        if retries or timeouts or degraded_answers:
            text += (
                f" retries={retries} timeouts={timeouts} "
                f"degraded_answers={degraded_answers}"
            )
        if self.degraded:
            text += (
                f" DEGRADED (unresolved_pairs={len(self.unresolved_pairs)})"
            )
        if self.wall_time_s is not None:
            text += f" wall={self.wall_time_s:.3f}s"
        return text

"""The unary-question baseline simulating Lofi et al. [12] (paper §6.1).

[12] assesses missing values with *quantitative* (unary) questions: each
tuple is rated in isolation and the ratings induce the missing column.
The paper simulates this format by drawing, for every tuple, an estimate
from a normal distribution centred on the tuple's actual crowd-attribute
value; the skyline is then computed machine-side over known values plus
the estimates.

All unary questions are independent, so the whole column is collected in
a single round per crowd attribute (one-shot strategy) — cheap in latency
but, as §6.1 shows, less accurate than CrowdSky's pairwise comparisons
because workers lack global knowledge of the value scale.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.result import CrowdSkylineResult
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import UnaryQuestion
from repro.crowd.voting import DEFAULT_OMEGA
from repro.data.relation import Relation
from repro.exceptions import CrowdSkyError
from repro.obs import phase, run_span
from repro.skyline.bnl import bnl_skyline


def unary_skyline(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    omega: int = DEFAULT_OMEGA,
) -> CrowdSkylineResult:
    """Compute the crowdsourced skyline from unary value estimates.

    Parameters
    ----------
    relation:
        Dataset with at least one crowd attribute.
    crowd:
        Crowd platform; its workers' ``answer_unary`` model supplies the
        noisy estimates (a perfect crowd reproduces the true skyline).
    omega:
        Workers per unary question; their estimates are averaged.
    """
    if relation.schema.num_crowd < 1:
        raise CrowdSkyError("unary baseline needs at least one crowd attribute")
    if crowd is None:
        crowd = SimulatedCrowd(relation)

    n = len(relation)
    m = relation.schema.num_crowd
    with run_span("unary", n=n, omega=omega) as span:
        estimates = np.empty((n, m), dtype=float)
        with phase("estimate"):
            for attribute in range(m):
                questions = [UnaryQuestion(i, attribute) for i in range(n)]
                answers = crowd.ask_unary_round(questions, omega=omega)
                for question, value in answers.items():
                    estimates[question.tuple_index, attribute] = value

        with phase("machine_skyline"):
            augmented = np.hstack([relation.known_matrix(), estimates])
            skyline = set(bnl_skyline(augmented))

        result = CrowdSkylineResult(
            skyline=skyline,
            stats=crowd.stats,
            algorithm="Unary[12]",
            metrics=crowd.metrics,
        )
    if span is not None:
        result.wall_time_s = span.duration_s
    return result

"""The sort-based Baseline (paper §3, §6).

The Baseline crowdsources a *total order* of all tuples on every crowd
attribute via tournament sort, then computes the skyline machine-side
over the known values plus the crowdsourced ranks. It obtains every
missing preference — far more than needed for a skyline — which is
exactly the waste CrowdSky's dominating sets eliminate.

Latency: every comparison depends on earlier match outcomes, so the
Baseline runs one question per round (its round count equals its fresh
question count), matching its placement in Figures 8-9 and 12(b).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.result import CrowdSkylineResult
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import PairwiseQuestion, Preference
from repro.data.relation import Relation
from repro.exceptions import CrowdSkyError
from repro.obs import phase, run_span
from repro.skyline.bnl import bnl_skyline
from repro.sorting.comparators import crowd_comparator
from repro.sorting.tournament import tournament_sort


def crowd_ranks(
    relation: Relation, crowd: SimulatedCrowd, attribute: int
) -> np.ndarray:
    """Crowdsource a rank column for one crowd attribute.

    Tuples the crowd judged equal (adjacent in the total order with a
    cached ``EQUAL`` answer) receive the same rank so that neither
    spuriously dominates the other.
    """
    n = len(relation)
    order = tournament_sort(range(n), crowd_comparator(crowd, attribute))
    ranks = np.empty(n, dtype=float)
    rank = 0
    previous: Optional[int] = None
    for position, t in enumerate(order):
        if previous is not None:
            answer = crowd.cached_answer(
                PairwiseQuestion(previous, t, attribute)
            )
            if answer is not Preference.EQUAL:
                rank = position
        ranks[t] = rank
        previous = t
    return ranks


def bitonic_crowd_ranks(
    relation: Relation, crowd: SimulatedCrowd, attribute: int
) -> np.ndarray:
    """Crowdsource a rank column via a bitonic network (§3's alternative).

    Unlike the tournament, a bitonic network is oblivious: every stage's
    comparisons are independent, so the whole stage is asked as *one*
    round — ``O(log² n)`` rounds at the price of ``O(n log² n)``
    questions. Previously answered pairs are served from the platform
    cache.
    """
    from repro.sorting.bitonic import bitonic_sort

    n = len(relation)

    def prefetch(pairs):
        crowd.ask_pairwise_round(
            [PairwiseQuestion(a, b, attribute) for a, b in pairs]
        )

    def compare(a: int, b: int) -> Preference:
        answer = crowd.cached_answer(PairwiseQuestion(a, b, attribute))
        assert answer is not None, "stage prefetch must answer every pair"
        return answer

    order = bitonic_sort(range(n), compare, on_stage=prefetch)
    ranks = np.empty(n, dtype=float)
    rank = 0
    previous: Optional[int] = None
    for position, t in enumerate(order):
        if previous is not None:
            answer = crowd.cached_answer(
                PairwiseQuestion(previous, t, attribute)
            )
            if answer is not Preference.EQUAL:
                rank = position
        ranks[t] = rank
        previous = t
    return ranks


def baseline_skyline(
    relation: Relation,
    crowd: Optional[SimulatedCrowd] = None,
    sort: str = "tournament",
) -> CrowdSkylineResult:
    """Compute the crowdsourced skyline via full crowd sorting.

    Parameters
    ----------
    relation:
        Dataset with at least one crowd attribute.
    crowd:
        Crowd platform (perfect by default).
    sort:
        ``"tournament"`` (the paper's default: fewest questions, fully
        serial) or ``"bitonic"`` (more questions, but each network stage
        is one parallel round — ``O(log² n)`` rounds).
    """
    if relation.schema.num_crowd < 1:
        raise CrowdSkyError("Baseline needs at least one crowd attribute")
    if sort not in ("tournament", "bitonic"):
        raise CrowdSkyError(f"unknown Baseline sort {sort!r}")
    if crowd is None:
        crowd = SimulatedCrowd(relation)

    ranker = crowd_ranks if sort == "tournament" else bitonic_crowd_ranks
    with run_span("baseline", n=len(relation), sort=sort) as span:
        with phase("crowd_sort"):
            rank_columns: List[np.ndarray] = [
                ranker(relation, crowd, attribute)
                for attribute in range(relation.schema.num_crowd)
            ]
        with phase("machine_skyline"):
            augmented = np.hstack(
                [relation.known_matrix()]
                + [column[:, None] for column in rank_columns]
            )
            skyline = set(bnl_skyline(augmented))

        result = CrowdSkylineResult(
            skyline=skyline,
            stats=crowd.stats,
            question_log=list(crowd.question_log),
            algorithm=f"Baseline[{sort}]",
            metrics=crowd.metrics,
        )
    if span is not None:
        result.wall_time_s = span.duration_s
    return result

"""Durable filesystem primitives shared by every persistence path.

The sweep cache, the vote journal, and the analysis baseline all write
through :mod:`repro.io.atomic` — one audited write-fsync-rename code
path instead of three ad-hoc ones (enforced by analysis rule RA012).
"""

from __future__ import annotations

from repro.io.atomic import (
    atomic_write_bytes,
    atomic_write_text,
    fsync_dir,
)

__all__ = ["atomic_write_bytes", "atomic_write_text", "fsync_dir"]

"""Atomic, optionally durable file replacement.

The pattern: write the full payload to a same-directory temp file,
optionally ``fsync`` it, then ``os.replace`` it over the target. A
reader therefore sees either the old content or the new content,
never a torn mix — and with ``durable=True`` the rename itself is
persisted by fsyncing the parent directory, so a crash immediately
after the call cannot roll the file back.

This is the single durable-write code path of the repository
(analysis rule RA012): cache entries, journal segments, and baseline
files must route through these helpers rather than open-coding
``open(path, "w")``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Union

PathLike = Union[str, Path]


def fsync_dir(directory: PathLike) -> None:
    """Persist directory-level metadata (entry creates/renames).

    A no-op on platforms that refuse to open directories; on POSIX it
    makes a preceding ``os.replace`` in ``directory`` crash-durable.
    """
    try:
        fd = os.open(os.fspath(directory), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def atomic_write_bytes(
    path: PathLike, data: bytes, durable: bool = False
) -> None:
    """Atomically replace ``path`` with ``data``.

    ``durable=True`` additionally fsyncs the temp file before the
    rename and the parent directory after it; leave it off for caches
    where a lost entry merely costs a recompute.
    """
    target = Path(path)
    tmp = target.with_name(f".{target.name}.tmp.{os.getpid()}")
    fd = os.open(
        os.fspath(tmp), os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
    except BaseException:
        try:
            os.unlink(os.fspath(tmp))
        # The original write failure is re-raised below; a secondary
        # unlink failure must not mask it.
        except OSError:  # repro: noqa RA011 - best-effort temp cleanup
            pass
        raise
    os.replace(os.fspath(tmp), os.fspath(target))
    if durable:
        fsync_dir(target.parent)


def atomic_write_text(
    path: PathLike,
    text: str,
    encoding: str = "utf-8",
    durable: bool = False,
) -> None:
    """Atomically replace ``path`` with ``text`` (see
    :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode(encoding), durable=durable)

"""Question and answer formats for crowd micro-tasks (paper §2.1).

This vocabulary is deliberately crowd-independent: the sorting
substrate, the core engine, and the crowd platform all speak it, so it
sits below every one of those layers in the import DAG (RA004). The
old location, :mod:`repro.crowd.questions`, remains as a re-export
shim.

The paper adopts the *qualitative* format: a pair-wise question ``(s, t)``
with ternary answers (``s`` preferred / ``t`` preferred / equally
preferred), symmetric in its arguments. The *quantitative* (unary) format
of Lofi et al. [12] is also modelled for the accuracy comparison (§6.1).

When ``|AC| = m > 1`` the pair ``(s, t)`` expands into ``m`` micro-
questions, one per crowd attribute — hence every question carries the
index of the crowd attribute it refers to.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple as TupleT


class Preference(enum.Enum):
    """Ternary answer to a pairwise question, relative to ``(left, right)``."""

    LEFT = "left"
    RIGHT = "right"
    EQUAL = "equal"

    def flipped(self) -> "Preference":
        """The answer as seen from the swapped pair ``(right, left)``."""
        if self is Preference.LEFT:
            return Preference.RIGHT
        if self is Preference.RIGHT:
            return Preference.LEFT
        return Preference.EQUAL

    def opposite(self) -> "Preference":
        """The *wrong* strict answer — used by worker error models."""
        return self.flipped()


@dataclass(frozen=True)
class PairwiseQuestion:
    """A pairwise micro-question: which of two tuples is preferred on one
    crowd attribute?

    ``left``/``right`` are tuple indices; ``attribute`` is the crowd
    attribute index within ``AC`` (0-based). Questions are symmetric:
    ``(s, t)`` and ``(t, s)`` are the same micro-task; :meth:`key` gives
    the canonical identity used for caching/deduplication.
    """

    left: int
    right: int
    attribute: int = 0

    def __post_init__(self) -> None:
        if self.left == self.right:
            raise ValueError("pairwise question needs two distinct tuples")

    def key(self) -> TupleT[int, int, int]:
        """Order-insensitive identity of the micro-task."""
        lo, hi = sorted((self.left, self.right))
        return (lo, hi, self.attribute)

    def canonical(self) -> "PairwiseQuestion":
        """The same question with ``left < right``."""
        if self.left < self.right:
            return self
        return PairwiseQuestion(self.right, self.left, self.attribute)

    def __repr__(self) -> str:
        return f"({self.left}, {self.right})@C{self.attribute}"


@dataclass(frozen=True)
class MultiwayQuestion:
    """An m-ary micro-question: which of ``k`` tuples is most preferred?

    §2.1 notes the qualitative format "can be extended to an m-ary
    format"; showing a worker several items at once ("which of these
    four movies is the most romantic?") resolves ``k − 1`` pairwise
    preferences with a single micro-task. The answer is the *tuple
    index* of the chosen candidate.
    """

    candidates: TupleT[int, ...]
    attribute: int = 0

    def __post_init__(self) -> None:
        if len(self.candidates) < 2:
            raise ValueError("multiway question needs at least two tuples")
        if len(set(self.candidates)) != len(self.candidates):
            raise ValueError("multiway question candidates must be distinct")

    def key(self) -> TupleT:
        """Order-insensitive identity of the micro-task."""
        return (tuple(sorted(self.candidates)), self.attribute)

    def __repr__(self) -> str:
        inner = ", ".join(str(c) for c in self.candidates)
        return f"({inner})@C{self.attribute}"


@dataclass(frozen=True)
class UnaryQuestion:
    """A quantitative micro-question: rate one tuple on one crowd attribute.

    Models the unary format of [12]; workers return a numeric estimate of
    the latent value.
    """

    tuple_index: int
    attribute: int = 0

    def __repr__(self) -> str:
        return f"u({self.tuple_index})@C{self.attribute}"

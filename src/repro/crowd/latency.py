"""Wall-clock latency estimation for crowd executions (paper §2.1, §6.2).

The paper measures latency in *rounds* under the assumption that each
round takes a fixed amount of time [25]. §6.2 reports the average
working time per HIT on AMT: 22 s for Q1 (rectangles), 49 s for Q2
(movies) and 1 min 33 s for Q3 (pitchers) — "implying that Q3 is the
most difficult task".

This module turns round counts into estimated wall-clock time. Within a
round all HITs run in parallel across workers, but a round cannot start
before the previous one finished (the adaptive strategy's dependency),
so

.. math::  T ≈ rounds · (t_{hit} + t_{overhead})

where ``t_overhead`` models posting/acceptance delay per round.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crowd.platform import CrowdStats

#: §6.2's measured mean working seconds per HIT.
SECONDS_PER_HIT_Q1 = 22.0
SECONDS_PER_HIT_Q2 = 49.0
SECONDS_PER_HIT_Q3 = 93.0

#: Default posting/acceptance overhead per round (AMT queueing).
DEFAULT_ROUND_OVERHEAD = 30.0


@dataclass(frozen=True)
class LatencyEstimate:
    """Estimated wall-clock latency of a crowd execution."""

    rounds: int
    seconds: float
    #: Idle rounds spent waiting out retry backoff (fault-tolerant runs).
    backoff_rounds: int = 0

    @property
    def hours(self) -> float:
        """The estimate in hours."""
        return self.seconds / 3600.0

    def __str__(self) -> str:
        if self.seconds < 120:
            return f"{self.seconds:.0f}s"
        if self.seconds < 7200:
            return f"{self.seconds / 60:.1f}min"
        return f"{self.hours:.1f}h"


def estimate_latency(
    stats: CrowdStats,
    seconds_per_hit: float = SECONDS_PER_HIT_Q2,
    round_overhead: float = DEFAULT_ROUND_OVERHEAD,
) -> LatencyEstimate:
    """Estimate wall-clock time from round counts.

    Parameters
    ----------
    stats:
        The execution's :class:`CrowdStats`.
    seconds_per_hit:
        Mean working time of one HIT (§6.2's per-query measurements are
        exported as module constants).
    round_overhead:
        Fixed posting/acceptance delay added per round.

    Notes
    -----
    HITs *within* a round run concurrently (independent questions,
    different workers), so a round costs one HIT time regardless of how
    many questions it contains — which is exactly why the paper
    minimizes rounds rather than questions for latency.

    Fault-tolerant runs add latency in two ways, both reflected here:
    re-posted questions execute as further rounds (already inside
    ``stats.rounds``), and retry backoff spends idle rounds
    (``stats.backoff_rounds``) that cost one round overhead each but no
    HIT working time — nothing is posted while backing off.
    """
    if seconds_per_hit < 0 or round_overhead < 0:
        raise ValueError("latency parameters must be non-negative")
    backoff = stats.backoff_rounds
    seconds = (
        stats.rounds * (seconds_per_hit + round_overhead)
        + backoff * round_overhead
    )
    return LatencyEstimate(
        rounds=stats.rounds, seconds=seconds, backoff_rounds=backoff
    )

"""Compatibility shim: the question vocabulary moved to
:mod:`repro.questions`.

The pairwise/multiway/unary micro-task formats are crowd-*independent*
vocabulary — the sorting substrate and the crowd platform both speak
them, so they live below either layer. Import from
:mod:`repro.questions`; this module re-exports the same class objects
so existing ``isinstance`` checks and pickles keep working.
"""

from __future__ import annotations

from repro.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)

__all__ = [
    "MultiwayQuestion",
    "PairwiseQuestion",
    "Preference",
    "UnaryQuestion",
]

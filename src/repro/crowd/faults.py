"""Deterministic fault injection for the simulated platform.

The paper's platform model (§2.1, §6.2) assumes every posted HIT comes
back answered at the end of its round. Real AMT executions do not:
assignments are abandoned, HITs expire unanswered, the platform throws
transient errors, and spam crews occasionally grab a whole HIT. This
module injects exactly those failure modes into
:class:`~repro.crowd.platform.SimulatedCrowd`, deterministically, from a
seed that is *independent* of the worker-answer randomness:

* **worker abandonment** — an individual assignment never returns; the
  question aggregates over the remaining votes (a *degraded* answer) or,
  if every assignment is abandoned, fails the round entirely,
* **HIT expiry** — a whole HIT misses its round deadline; all of its
  questions come back unanswered,
* **transient platform error** — a question fails this round for
  platform reasons (posting error, review glitch) and must be re-posted,
* **spam burst** — a spam crew answers a whole HIT uniformly at random;
  the answers *do* come back, but carry no signal.

Because the plan draws from its own generator, attaching a
``FaultPlan`` with all rates at ``0.0`` leaves the main answer stream —
and therefore the skyline, stats and trace — byte-identical to a run
without any plan. Everything injected is tallied in
:class:`FaultStats`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import CrowdPlatformError


class HitOutcome(enum.Enum):
    """Per-HIT fault roll: delivered normally, expired, or spammed."""

    OK = "ok"
    EXPIRED = "expired"
    SPAM = "spam"


@dataclass
class FaultStats:
    """Tally of everything a :class:`FaultPlan` injected."""

    abandoned_assignments: int = 0
    expired_hits: int = 0
    spam_bursts: int = 0
    transient_errors: int = 0
    #: Questions that failed their round because of an injected fault
    #: (expired HIT, transient error, or full abandonment).
    failed_questions: int = 0

    def total_events(self) -> int:
        """Number of injected fault events across all modes."""
        return (
            self.abandoned_assignments
            + self.expired_hits
            + self.spam_bursts
            + self.transient_errors
        )

    def as_dict(self) -> Dict[str, int]:
        """The tallies as a plain dict (for reports and tests)."""
        return {
            "abandoned_assignments": self.abandoned_assignments,
            "expired_hits": self.expired_hits,
            "spam_bursts": self.spam_bursts,
            "transient_errors": self.transient_errors,
            "failed_questions": self.failed_questions,
        }

    def merge(self, other: "FaultStats") -> "FaultStats":
        """Combine two executions' tallies."""
        return FaultStats(
            abandoned_assignments=self.abandoned_assignments
            + other.abandoned_assignments,
            expired_hits=self.expired_hits + other.expired_hits,
            spam_bursts=self.spam_bursts + other.spam_bursts,
            transient_errors=self.transient_errors + other.transient_errors,
            failed_questions=self.failed_questions + other.failed_questions,
        )


def _check_rate(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise CrowdPlatformError(f"{name} must be within [0, 1]")
    return float(value)


@dataclass
class FaultPlan:
    """Seeded, deterministic fault-injection configuration.

    Parameters
    ----------
    abandonment_rate:
        Probability that an individual worker assignment never returns.
    hit_timeout_rate:
        Probability that a whole HIT expires unanswered this round.
    transient_error_rate:
        Probability that a question fails its round to a platform error.
    spam_burst_rate:
        Probability that a whole HIT is answered by a spam crew
        (uniform random answers — delivered, but signal-free).
    seed:
        Seed of the plan's private generator. Fault decisions never
        consume the platform's answer randomness, so the same worker
        seed with and without a zero-rate plan produces identical runs.
    """

    abandonment_rate: float = 0.0
    hit_timeout_rate: float = 0.0
    transient_error_rate: float = 0.0
    spam_burst_rate: float = 0.0
    seed: Optional[int] = None
    stats: FaultStats = field(default_factory=FaultStats, repr=False)

    def __post_init__(self) -> None:
        _check_rate("abandonment_rate", self.abandonment_rate)
        _check_rate("hit_timeout_rate", self.hit_timeout_rate)
        _check_rate("transient_error_rate", self.transient_error_rate)
        _check_rate("spam_burst_rate", self.spam_burst_rate)
        if self.hit_timeout_rate + self.spam_burst_rate > 1.0:
            raise CrowdPlatformError(
                "hit_timeout_rate + spam_burst_rate must not exceed 1"
            )
        self._rng = np.random.default_rng(self.seed)

    @property
    def rng(self) -> np.random.Generator:
        """The plan's private generator (spam answers draw from it)."""
        return self._rng

    def any_faults(self) -> bool:
        """Whether any failure mode has a nonzero rate."""
        return (
            self.abandonment_rate > 0.0
            or self.hit_timeout_rate > 0.0
            or self.transient_error_rate > 0.0
            or self.spam_burst_rate > 0.0
        )

    # -- per-event rolls (each consumes exactly one draw, so decision
    # -- sequences stay aligned across runs of the same seed) ----------

    def roll_hit(self) -> HitOutcome:
        """Fate of one posted HIT this round."""
        u = float(self._rng.random())
        if u < self.hit_timeout_rate:
            self.stats.expired_hits += 1
            return HitOutcome.EXPIRED
        if u < self.hit_timeout_rate + self.spam_burst_rate:
            self.stats.spam_bursts += 1
            return HitOutcome.SPAM
        return HitOutcome.OK

    def roll_transient(self) -> bool:
        """Whether one question hits a transient platform error."""
        failed = float(self._rng.random()) < self.transient_error_rate
        if failed:
            self.stats.transient_errors += 1
        return failed

    def roll_abandonment(self) -> bool:
        """Whether one worker assignment is abandoned."""
        abandoned = float(self._rng.random()) < self.abandonment_rate
        if abandoned:
            self.stats.abandoned_assignments += 1
        return abandoned

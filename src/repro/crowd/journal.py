"""The write-ahead vote journal: durable crowd runs.

A crowd run spends money and wall-clock on answers; a process crash
must not throw them away. When a journal is attached to
:class:`~repro.crowd.platform.SimulatedCrowd`, every *posting* — one
backend execution of a pairwise/multiway/unary batch — is appended as
a group of checksummed records **before** its results are applied,
and fsynced as a unit (fsync-on-round). A crashed run therefore
leaves a journal whose committed prefix is exactly the set of rounds
whose answers were paid for, and
:func:`repro.core.resume.resume_run` re-executes the run with a
:class:`~repro.crowd.backends.ReplayBackend` serving that prefix —
deterministically, at zero cost, asking zero fresh questions.

Format. A journal is a directory of append-only segments
(``wal-000001.jsonl`` …), each a sequence of JSON records::

    {"seq": n, "epoch": e, "type": t, "data": {...}, "crc": c}

``seq`` increases by one per record across the whole journal; ``crc``
is a CRC-32 over the canonical serialization of the other fields. A
posting is the group ``post`` (question keys, format), then one
``vote`` / ``fault`` / ``verdict`` record per question, closed by a
``commit`` record snapshotting the backend state (RNG positions,
fault tallies). ``epoch`` is the monotonic posting counter: every
``post`` opens epoch ``e+1`` and only a matching ``commit`` makes it
durable. ``header`` and ``budget`` records stand alone between
postings. Segments rotate at posting boundaries, so no group ever
spans two files.

Recovery. :func:`recover_journal` scans segments in order and keeps
the longest valid prefix: records with correct checksums, strictly
increasing ``seq``, strictly increasing posting epochs, and properly
closed groups. Anything after the first violation — a torn tail from
a mid-write crash, a flipped bit, a duplicated epoch, a zero-byte
segment — is dropped; with ``heal=True`` the surviving prefix is
rewritten in place (atomically, via :mod:`repro.io.atomic`) so the
journal is append-ready again. Dropping anything surfaces a
``journal.recovered`` trace event; recovery never raises on corrupt
content.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.crowd.backends import (
    MultiwayOutcome,
    PairwiseOutcome,
    RecordedPosting,
    STATUS_ANSWERED,
    UnaryOutcome,
)
from repro.exceptions import JournalError, JournalReplayError
from repro.io.atomic import atomic_write_bytes, fsync_dir
from repro.obs import current_observation
from repro.obs.logging import get_logger
from repro.obs.metrics import JOURNAL_FSYNC_SECONDS, LATENCY_BUCKETS_S
from repro.questions import Preference

#: Bump when the record layout changes (refuses to resume across).
JOURNAL_VERSION = 1

#: Segment filename pattern: ``wal-<6-digit index>.jsonl``.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".jsonl"

#: Default segment rotation threshold.
DEFAULT_SEGMENT_BYTES = 4 * 1024 * 1024

_GROUP_TYPES = frozenset({"vote", "fault", "verdict"})
_STANDALONE_TYPES = frozenset({"header", "budget", "note"})

_log = get_logger(__name__)


def _crc(seq: int, epoch: int, type: str, data: Any) -> int:
    payload = json.dumps(
        [seq, epoch, type, data], sort_keys=True, separators=(",", ":")
    )
    return zlib.crc32(payload.encode("utf-8")) & 0xFFFFFFFF


def _encode(seq: int, epoch: int, type: str, data: Any) -> bytes:
    record = {
        "seq": seq,
        "epoch": epoch,
        "type": type,
        "data": data,
        "crc": _crc(seq, epoch, type, data),
    }
    return (
        json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def segment_name(index: int) -> str:
    """Filename of the ``index``-th segment (1-based)."""
    return f"{SEGMENT_PREFIX}{index:06d}{SEGMENT_SUFFIX}"


def segment_paths(directory: Union[str, Path]) -> List[Path]:
    """The journal's segment files, in journal order."""
    root = Path(directory)
    if not root.is_dir():
        return []
    return [
        p
        for p in sorted(root.iterdir())
        if p.name.startswith(SEGMENT_PREFIX)
        and p.name.endswith(SEGMENT_SUFFIX)
    ]


# -- outcome (de)serialization ------------------------------------------------


def _key_to_json(format: str, key: Tuple) -> List:
    if format == "multiway":
        return [[int(c) for c in key[0]], int(key[1])]
    return [int(x) for x in key]


def _key_from_json(format: str, raw: List) -> Tuple:
    if format == "multiway":
        return (tuple(int(c) for c in raw[0]), int(raw[1]))
    return tuple(int(x) for x in raw)


def _outcome_records(
    format: str, outcomes: List[Any]
) -> Iterator[Tuple[str, Dict[str, Any]]]:
    """The per-question records of one posting, in outcome order."""
    for outcome in outcomes:
        q = _key_to_json(format, outcome.key)
        if format == "pairwise":
            if outcome.votes:
                yield "vote", {
                    "q": q,
                    "votes": [v.value for v in outcome.votes],
                }
            if outcome.status != STATUS_ANSWERED:
                yield "fault", {"q": q, "kind": outcome.status}
            elif outcome.spam:
                yield "fault", {"q": q, "kind": "spam"}
            yield "verdict", {
                "q": q,
                "status": outcome.status,
                "omega": outcome.omega,
                "answer": (
                    outcome.answer.value
                    if outcome.answer is not None
                    else None
                ),
                "degraded": outcome.degraded,
                "spam": outcome.spam,
            }
        elif format == "multiway":
            yield "vote", {"q": q, "votes": [int(v) for v in outcome.votes]}
            yield "verdict", {
                "q": q,
                "omega": outcome.omega,
                "winner": int(outcome.winner),
            }
        else:  # unary
            yield "vote", {
                "q": q,
                "votes": [float(e) for e in outcome.estimates],
            }
            yield "verdict", {
                "q": q,
                "omega": outcome.omega,
                "value": float(outcome.value),
            }


def _outcomes_from_group(
    format: str, records: List[Dict[str, Any]]
) -> List[Any]:
    """Rebuild backend outcomes from one posting's record group."""
    votes_by_key: Dict[Tuple, List] = {}
    outcomes: List[Any] = []
    for record in records:
        data = record["data"]
        key = _key_from_json(format, data["q"])
        if record["type"] == "vote":
            votes_by_key[key] = data["votes"]
        elif record["type"] == "verdict":
            if format == "pairwise":
                raw_votes = votes_by_key.get(key, [])
                answer = data.get("answer")
                outcomes.append(
                    PairwiseOutcome(
                        key=key,
                        status=data["status"],
                        omega=int(data["omega"]),
                        votes=[Preference(v) for v in raw_votes],
                        answer=(
                            Preference(answer)
                            if answer is not None
                            else None
                        ),
                        degraded=bool(data["degraded"]),
                        spam=bool(data["spam"]),
                    )
                )
            elif format == "multiway":
                outcomes.append(
                    MultiwayOutcome(
                        key=key,
                        omega=int(data["omega"]),
                        votes=[
                            int(v) for v in votes_by_key.get(key, [])
                        ],
                        winner=int(data["winner"]),
                    )
                )
            else:  # unary
                outcomes.append(
                    UnaryOutcome(
                        key=key,
                        omega=int(data["omega"]),
                        estimates=[
                            float(v) for v in votes_by_key.get(key, [])
                        ],
                        value=float(data["value"]),
                    )
                )
    return outcomes


# -- recovery -----------------------------------------------------------------


@dataclass
class RecoveredJournal:
    """Everything salvaged from a journal directory."""

    directory: Path
    header: Optional[Dict[str, Any]] = None
    postings: List[RecordedPosting] = field(default_factory=list)
    #: Standalone records other than the header (budget decisions …).
    events: List[Dict[str, Any]] = field(default_factory=list)
    #: Backend snapshot of the last committed posting (None when no
    #: posting committed — resume starts from the header state).
    last_state: Optional[Dict[str, Any]] = None
    #: Continuation points for an appending writer.
    last_seq: int = 0
    last_epoch: int = 0
    #: Whether anything invalid was found (and, with ``heal``, dropped).
    truncated: bool = False
    problems: List[str] = field(default_factory=list)
    #: Records kept / dropped across all segments.
    kept_records: int = 0
    dropped_records: int = 0


class _Scanner:
    """Single pass over the segment files, tracking validity."""

    def __init__(self) -> None:
        self.result: Optional[RecoveredJournal] = None
        self.last_seq = 0
        self.last_post_epoch = 0
        self.open_group: Optional[Dict[str, Any]] = None

    def feed(self, record: Dict[str, Any]) -> Optional[str]:
        """Apply one structurally valid record; returns a problem
        string (stop scanning) or None (record accepted)."""
        assert self.result is not None
        seq, epoch = record["seq"], record["epoch"]
        type = record["type"]
        if seq != self.last_seq + 1:
            return f"seq jumped from {self.last_seq} to {seq}"
        if type == "post":
            if self.open_group is not None:
                return "post inside an open posting group"
            if epoch != self.last_post_epoch + 1:
                return (
                    f"posting epoch {epoch} after epoch "
                    f"{self.last_post_epoch} (duplicated or skipped)"
                )
            self.open_group = {"post": record, "records": []}
        elif type in _GROUP_TYPES:
            if self.open_group is None:
                return f"{type} record outside a posting group"
            self.open_group["records"].append(record)
        elif type == "commit":
            if self.open_group is None:
                return "commit without an open posting group"
            post = self.open_group["post"]
            if epoch != post["epoch"]:
                return (
                    f"commit epoch {epoch} does not match posting "
                    f"epoch {post['epoch']}"
                )
            data = post["data"]
            format = data["format"]
            self.result.postings.append(
                RecordedPosting(
                    epoch=epoch,
                    format=format,
                    keys=[
                        _key_from_json(format, raw)
                        for raw in data["keys"]
                    ],
                    outcomes=_outcomes_from_group(
                        format, self.open_group["records"]
                    ),
                    state=record["data"]["state"],
                    retried=int(data.get("retried", 0)),
                    omega=data.get("omega"),
                )
            )
            self.result.last_state = record["data"]["state"]
            self.last_post_epoch = epoch
            self.open_group = None
        elif type in _STANDALONE_TYPES:
            if self.open_group is not None:
                return f"{type} record inside a posting group"
            if type == "header":
                if self.result.header is not None:
                    return "second header record"
                self.result.header = record["data"]
            else:
                self.result.events.append(record)
        else:
            return f"unknown record type {type!r}"
        self.last_seq = seq
        return None


def _parse_line(line: bytes) -> Optional[Dict[str, Any]]:
    """Decode and checksum one record line; None when invalid."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (ValueError, UnicodeDecodeError):
        return None
    if not isinstance(record, dict):
        return None
    for name in ("seq", "epoch", "crc"):
        if not isinstance(record.get(name), int):
            return None
    if not isinstance(record.get("type"), str) or "data" not in record:
        return None
    expected = _crc(
        record["seq"], record["epoch"], record["type"], record["data"]
    )
    if record["crc"] != expected:
        return None
    return record


def recover_journal(
    directory: Union[str, Path], heal: bool = True
) -> RecoveredJournal:
    """Salvage the longest valid prefix of a journal directory.

    Scans segments in order; the first invalid byte — torn tail, bad
    checksum, seq/epoch regression, unterminated posting group — ends
    the valid prefix. With ``heal=True`` the prefix is made physical:
    the offending segment is atomically rewritten to its valid length
    (empty segments are removed) and all later segments deleted, so a
    writer can append again. Emits a ``journal.recovered`` trace event
    when anything was dropped. Never raises on corrupt content.
    """
    root = Path(directory)
    scanner = _Scanner()
    result = RecoveredJournal(directory=root)
    scanner.result = result
    #: Per segment: byte offset of the last *safe boundary* (end of a
    #: committed group or standalone record).
    segments = segment_paths(root)
    boundaries: Dict[Path, int] = {}
    stopped = False
    safe_seq = 0
    for segment in segments:
        if stopped:
            result.dropped_records += segment.read_bytes().count(b"\n")
            continue
        raw = segment.read_bytes()
        offset = 0
        safe = 0
        safe_records = result.kept_records
        pending = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline < 0:
                result.problems.append(
                    f"{segment.name}: torn record at byte {offset}"
                )
                stopped = True
                break
            line = raw[offset:newline]
            record = _parse_line(line)
            if record is None:
                result.problems.append(
                    f"{segment.name}: bad checksum or malformed record "
                    f"at byte {offset}"
                )
                stopped = True
                break
            problem = scanner.feed(record)
            if problem is not None:
                result.problems.append(f"{segment.name}: {problem}")
                stopped = True
                break
            offset = newline + 1
            pending += 1
            if scanner.open_group is None:
                safe = offset
                safe_records += pending
                safe_seq = scanner.last_seq
                pending = 0
        if not stopped and scanner.open_group is not None:
            # Clean EOF mid-group: the posting never committed.
            result.problems.append(
                f"{segment.name}: uncommitted posting group at tail"
            )
            stopped = True
        if stopped:
            # Roll back the scanner past the unsafe suffix: the group
            # being assembled never committed, so derived state
            # (postings, last_state, epochs) is already correct — only
            # the open group must be discarded.
            scanner.open_group = None
            result.dropped_records += pending
        result.kept_records = safe_records
        boundaries[segment] = safe
        if not stopped and len(raw) == 0 and segment != segments[-1]:
            # An interior zero-byte segment breaks append continuity.
            result.problems.append(f"{segment.name}: empty segment")
            stopped = True
    result.truncated = bool(result.problems)
    # Records past the last safe boundary are dropped, so the writer
    # continues from the boundary's seq, not the scanner's.
    result.last_seq = safe_seq
    result.last_epoch = scanner.last_post_epoch

    if heal and result.truncated:
        for segment in segments:
            keep = boundaries.get(segment)
            if keep is None or keep == 0:
                segment.unlink()
            elif keep < segment.stat().st_size:
                atomic_write_bytes(
                    segment, segment.read_bytes()[:keep], durable=True
                )
        fsync_dir(root)

    if result.truncated:
        _log.warning(
            "journal %s recovered to %d posting(s): %s",
            root, len(result.postings), "; ".join(result.problems),
        )
        observation = current_observation()
        if observation.enabled:
            observation.tracer.event(
                "journal.recovered",
                epochs=len(result.postings),
                records=result.kept_records,
                dropped=result.dropped_records,
                reason=result.problems[0],
            )
    return result


# -- writer -------------------------------------------------------------------


class JournalWriter:
    """Appends checksummed records to segment files, fsync-on-round.

    Construct over an empty (or new) directory for a fresh run, or via
    :meth:`resume` over a :func:`recover_journal` result to continue an
    interrupted one. Not safe for concurrent writers.
    """

    def __init__(
        self,
        directory: Union[str, Path],
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = True,
        _recovered: Optional[RecoveredJournal] = None,
    ):
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        self._segment_bytes = segment_bytes
        self._fsync = fsync
        self._closed = False
        existing = segment_paths(self._dir)
        #: Standalone records already durable from a recovered run, in
        #: journal order. A resumed run deterministically re-emits the
        #: same events; :meth:`append_event` consumes this list instead
        #: of writing duplicates until it is exhausted.
        self._replay_events: List[Tuple[str, Any]] = []
        self._replay_index = 0
        if _recovered is None:
            if existing:
                raise JournalError(
                    f"journal directory {self._dir} already holds "
                    f"{len(existing)} segment(s); recover and resume "
                    "instead of overwriting"
                )
            self._seq = 0
            self._epoch = 0
            self.header_written = False
            self._segment_index = 1
            path = self._dir / segment_name(self._segment_index)
            self._handle = open(path, "ab")
            fsync_dir(self._dir)
        else:
            self._seq = _recovered.last_seq
            self._epoch = _recovered.last_epoch
            self.header_written = _recovered.header is not None
            self._replay_events = [
                (e["type"], e["data"]) for e in _recovered.events
            ]
            if existing:
                last = existing[-1]
                self._segment_index = int(
                    last.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)]
                )
                self._handle = open(last, "ab")
            else:
                self._segment_index = 1
                self._handle = open(
                    self._dir / segment_name(self._segment_index), "ab"
                )
                fsync_dir(self._dir)

    @classmethod
    def resume(
        cls,
        recovered: RecoveredJournal,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        fsync: bool = True,
    ) -> "JournalWriter":
        """An appending writer continuing a recovered journal."""
        return cls(
            recovered.directory,
            segment_bytes=segment_bytes,
            fsync=fsync,
            _recovered=recovered,
        )

    @property
    def directory(self) -> Path:
        return self._dir

    @property
    def epoch(self) -> int:
        """Epoch of the most recently committed posting."""
        return self._epoch

    def _write(self, type: str, data: Any, epoch: int) -> int:
        if self._closed:
            raise JournalError("journal writer is closed")
        self._seq += 1
        self._handle.write(_encode(self._seq, epoch, type, data))
        return 1

    def _sync(self) -> None:
        observation = current_observation()
        if observation.enabled:
            with observation.tracer.span("journal.fsync") as span:
                self._handle.flush()
                if self._fsync:
                    os.fsync(self._handle.fileno())
            observation.metrics.histogram(
                JOURNAL_FSYNC_SECONDS, buckets=LATENCY_BUCKETS_S
            ).observe(span.duration_s or 0.0)
            return
        self._handle.flush()
        if self._fsync:
            os.fsync(self._handle.fileno())

    def _maybe_rotate(self) -> None:
        if self._handle.tell() < self._segment_bytes:
            return
        self._sync()
        self._handle.close()
        self._segment_index += 1
        path = self._dir / segment_name(self._segment_index)
        self._handle = open(path, "ab")
        fsync_dir(self._dir)

    def write_header(self, payload: Dict[str, Any]) -> int:
        """Record the run's identity (config, specs, initial state)."""
        if self.header_written:
            raise JournalError("journal header already written")
        data = dict(payload)
        data["journal_version"] = JOURNAL_VERSION
        written = self._write("header", data, epoch=0)
        self._sync()
        self.header_written = True
        return written

    def append_posting(
        self,
        format: str,
        keys: List[Tuple],
        outcomes: List[Any],
        state: Dict[str, Any],
        retried: int = 0,
        merge: bool = False,
        omega: Optional[int] = None,
    ) -> int:
        """Journal one backend posting as a committed epoch; returns
        the number of records written (post + per-question + commit).
        The commit record carries the post-posting backend snapshot and
        the group is fsynced before this method returns."""
        epoch = self._epoch + 1
        written = self._write(
            "post",
            {
                "format": format,
                "keys": [_key_to_json(format, key) for key in keys],
                "retried": retried,
                "merge": merge,
                "omega": omega,
            },
            epoch,
        )
        for type, data in _outcome_records(format, outcomes):
            written += self._write(type, data, epoch)
        written += self._write("commit", {"state": state}, epoch)
        self._epoch = epoch
        self._sync()
        self._maybe_rotate()
        return written

    def append_event(self, type: str, data: Dict[str, Any]) -> int:
        """Journal a standalone record (e.g. a budget denial) under the
        current epoch.

        On a resumed journal the re-executed run re-emits the events
        that are already durable; those are matched positionally
        against the recovered prefix and skipped (returns 0) instead
        of duplicated. A mismatch means the resumed run diverged from
        the journaled one and raises."""
        if type not in _STANDALONE_TYPES:
            raise JournalError(f"not a standalone record type: {type!r}")
        if self._replay_index < len(self._replay_events):
            expected = self._replay_events[self._replay_index]
            if expected != (type, data):
                raise JournalReplayError(
                    f"resumed run emitted event {(type, data)!r} where "
                    f"the journal recorded {expected!r}; the resume "
                    "diverged from the journaled execution"
                )
            self._replay_index += 1
            return 0
        written = self._write(type, data, self._epoch)
        self._sync()
        return written

    def close(self) -> None:
        if not self._closed:
            self._sync()
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

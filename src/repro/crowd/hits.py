"""HIT-level bookkeeping for the simulated platform (paper §6.2).

On AMT the paper groups 5 questions per HIT, pays $0.10 per HIT
($0.02 × 5 workers) and observes per-HIT working times (22 s / 49 s /
93 s for Q1-Q3). The :class:`HitLedger` reconstructs that layer on top
of the round-based platform:

* each executed round's fresh questions are packed into HITs of
  ``questions_per_hit``,
* every HIT's working time is sampled from a lognormal around the
  configured mean (human working times are right-skewed),
* a round's *makespan* is its slowest HIT (HITs of a round run
  concurrently across workers), and the execution's wall-clock estimate
  is the sum of round makespans plus per-round posting overhead — a
  sampled refinement of :func:`repro.crowd.latency.estimate_latency`.

Attach a ledger when building the platform::

    ledger = HitLedger(seconds_per_hit=49.0, seed=0)
    crowd = SimulatedCrowd(relation, ledger=ledger)
    ...
    print(ledger.wall_clock_seconds())
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro.crowd.latency import DEFAULT_ROUND_OVERHEAD
from repro.exceptions import CrowdPlatformError

#: The paper's HIT size (§6.2).
DEFAULT_QUESTIONS_PER_HIT = 5

#: Shape of the lognormal working-time distribution (σ of log-seconds).
DEFAULT_LOG_SIGMA = 0.45


@dataclass(frozen=True)
class Hit:
    """One Human Intelligence Task: a batch of questions for one worker
    crew."""

    hit_id: int
    round_number: int
    num_questions: int
    duration_seconds: float


@dataclass
class RoundRecord:
    """All HITs of one round plus its makespan."""

    round_number: int
    hits: List[Hit] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall-clock of the round: its slowest HIT."""
        return max((hit.duration_seconds for hit in self.hits), default=0.0)


class HitLedger:
    """Samples and records the HIT structure of an execution."""

    def __init__(
        self,
        seconds_per_hit: float = 49.0,
        questions_per_hit: int = DEFAULT_QUESTIONS_PER_HIT,
        round_overhead: float = DEFAULT_ROUND_OVERHEAD,
        log_sigma: float = DEFAULT_LOG_SIGMA,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        if seconds_per_hit <= 0:
            raise CrowdPlatformError("seconds_per_hit must be positive")
        if questions_per_hit < 1:
            raise CrowdPlatformError("questions_per_hit must be >= 1")
        if rng is not None and seed is not None:
            raise CrowdPlatformError("pass either seed or rng, not both")
        self._seconds_per_hit = seconds_per_hit
        self._questions_per_hit = questions_per_hit
        self._round_overhead = round_overhead
        self._log_sigma = log_sigma
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        # Seed-constructed ledgers can be rebuilt identically for a
        # journal resume (which re-executes the run from the start);
        # explicit-rng ledgers cannot (their generator's origin is
        # unknown), so spec() reports None for them.
        self._seed = seed if rng is None else None
        self._reconstructible = rng is None
        self._rounds: Dict[int, RoundRecord] = {}
        self._next_hit_id = 0
        self._backoff_rounds = 0

    def _sample_duration(self) -> float:
        # Lognormal with the configured *mean* (not median): adjust mu so
        # that E[X] = seconds_per_hit.
        mu = math.log(self._seconds_per_hit) - self._log_sigma ** 2 / 2.0
        return float(self._rng.lognormal(mu, self._log_sigma))

    def record_round(self, round_number: int, num_questions: int) -> None:
        """Pack one executed round's questions into HITs."""
        if num_questions <= 0:
            return
        record = self._rounds.setdefault(
            round_number, RoundRecord(round_number)
        )
        remaining = num_questions
        while remaining > 0:
            batch = min(remaining, self._questions_per_hit)
            record.hits.append(
                Hit(
                    hit_id=self._next_hit_id,
                    round_number=round_number,
                    num_questions=batch,
                    duration_seconds=self._sample_duration(),
                )
            )
            self._next_hit_id += 1
            remaining -= batch

    def record_backoff(self, rounds_waited: int) -> None:
        """Account idle rounds spent waiting out retry backoff.

        Re-posted HITs re-enter :meth:`record_round` as part of their
        retry round (they are paid and sampled again); the backoff wait
        itself posts nothing but still costs wall-clock time — one round
        overhead per idle round.
        """
        if rounds_waited < 0:
            raise CrowdPlatformError("rounds_waited must be >= 0")
        self._backoff_rounds += rounds_waited

    def spec(self) -> Optional[Dict[str, object]]:
        """Construction recipe for a journal header, or ``None``.

        ``None`` means the ledger used a caller-supplied generator and a
        resume must provide the ledger explicitly.
        """
        if not self._reconstructible:
            return None
        return {
            "seconds_per_hit": self._seconds_per_hit,
            "questions_per_hit": self._questions_per_hit,
            "round_overhead": self._round_overhead,
            "log_sigma": self._log_sigma,
            "seed": self._seed,
        }

    @classmethod
    def from_spec(cls, spec: Dict[str, object]) -> "HitLedger":
        """Rebuild a ledger from a :meth:`spec` recipe."""
        return cls(
            seconds_per_hit=spec["seconds_per_hit"],
            questions_per_hit=spec["questions_per_hit"],
            round_overhead=spec["round_overhead"],
            log_sigma=spec["log_sigma"],
            seed=spec["seed"],
        )

    @property
    def num_hits(self) -> int:
        """Total HITs posted (re-posted HITs count again)."""
        return self._next_hit_id

    @property
    def backoff_rounds(self) -> int:
        """Idle rounds recorded via :meth:`record_backoff`."""
        return self._backoff_rounds

    def rounds(self) -> List[RoundRecord]:
        """Per-round records in round order."""
        return [self._rounds[k] for k in sorted(self._rounds)]

    def wall_clock_seconds(self) -> float:
        """Sampled wall-clock: Σ round makespans + per-round overhead,
        plus one overhead per idle backoff round."""
        records = self.rounds()
        return sum(
            record.makespan + self._round_overhead for record in records
        ) + self._backoff_rounds * self._round_overhead

    def mean_hit_duration(self) -> float:
        """Average sampled working time across all HITs."""
        durations = [
            hit.duration_seconds
            for record in self._rounds.values()
            for hit in record.hits
        ]
        return float(np.mean(durations)) if durations else 0.0

"""The round-based simulated crowdsourcing platform (paper §2.1, §6.2).

The platform executes *rounds*: a scheduler hands over a batch of
micro-questions; each question is assigned workers per the voting policy;
worker answers are aggregated by majority; the aggregated answers come
back at the end of the round. Latency is the number of rounds, monetary
cost follows the paper's AMT formula

.. math::  cost = price · ω · \\sum_i \\lceil |Q_i| / 5 \\rceil

(price $0.02/question, ``ω = 5`` workers, 5 questions per HIT), tracked by
:class:`CrowdStats` alongside raw question and worker-assignment counts.

Duplicate micro-questions inside a round are merged (one HIT serves all
requesters), and previously answered micro-questions are served from the
platform's answer cache free of charge — questions are never re-asked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from typing import Dict, Iterable, List, Optional, Tuple as TupleT

import numpy as np

from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)
from repro.crowd.voting import DEFAULT_OMEGA, StaticVoting, VotingPolicy
from repro.crowd.workers import WorkerPool
from repro.data.relation import Relation
from repro.exceptions import BudgetExhaustedError, CrowdPlatformError

#: AMT price per question per worker used in the paper's §6.2.
DEFAULT_PRICE = 0.02

#: Questions batched per HIT in the paper's §6.2.
QUESTIONS_PER_HIT = 5


@dataclass
class CrowdStats:
    """Aggregate statistics of a crowdsourced execution."""

    questions: int = 0
    rounds: int = 0
    worker_assignments: int = 0
    round_sizes: List[int] = field(default_factory=list)
    cached_hits: int = 0

    def record_round(self, num_questions: int, num_assignments: int) -> None:
        """Account one executed round."""
        self.rounds += 1
        self.questions += num_questions
        self.worker_assignments += num_assignments
        self.round_sizes.append(num_questions)

    def hit_cost(
        self,
        price: float = DEFAULT_PRICE,
        omega: int = DEFAULT_OMEGA,
        per_hit: int = QUESTIONS_PER_HIT,
    ) -> float:
        """Monetary cost under the paper's HIT formula (§6.2)."""
        hits = sum(ceil(size / per_hit) for size in self.round_sizes if size)
        return price * omega * hits

    def assignment_cost(self, price: float = DEFAULT_PRICE) -> float:
        """Cost when paying each worker assignment individually."""
        return price * self.worker_assignments

    def merge(self, other: "CrowdStats") -> "CrowdStats":
        """Combine two executions (e.g. preprocessing + main run)."""
        merged = CrowdStats(
            questions=self.questions + other.questions,
            rounds=self.rounds + other.rounds,
            worker_assignments=self.worker_assignments
            + other.worker_assignments,
            round_sizes=self.round_sizes + other.round_sizes,
            cached_hits=self.cached_hits + other.cached_hits,
        )
        return merged


class SimulatedCrowd:
    """Executes question rounds against simulated workers.

    Parameters
    ----------
    relation:
        The dataset; its latent values feed the ground-truth oracle.
    pool:
        Worker pool (defaults to a perfect pool — the §3/§4 assumption).
    voting:
        Voting policy deciding workers per question (default: static ω=5
        for noisy pools; a perfect pool only ever needs one worker, but
        the policy is honoured regardless).
    rng, seed:
        Randomness for worker draws and error models.
    max_questions:
        Optional hard budget; exceeding it raises
        :class:`~repro.exceptions.BudgetExhaustedError`.
    ledger:
        Optional :class:`repro.crowd.hits.HitLedger` recording the HIT
        structure and sampled working times of every round.
    """

    def __init__(
        self,
        relation: Relation,
        pool: Optional[WorkerPool] = None,
        voting: Optional[VotingPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        max_questions: Optional[int] = None,
        ledger: Optional["HitLedger"] = None,
    ):
        if rng is not None and seed is not None:
            raise CrowdPlatformError("pass either seed or rng, not both")
        self._relation = relation
        self._oracle = GroundTruthOracle(relation)
        self._pool = pool if pool is not None else WorkerPool.perfect()
        self._voting = voting if voting is not None else StaticVoting()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._max_questions = max_questions
        self._ledger = ledger
        self._answers: Dict[TupleT[int, int, int], Preference] = {}
        self._unary_answers: Dict[TupleT[int, int], float] = {}
        self._multiway_answers: Dict[TupleT, int] = {}
        self.stats = CrowdStats()
        #: (round number, question, aggregated answer) per fresh question,
        #: in execution order — feeds the golden trace tests.
        self.question_log: List[
            TupleT[int, PairwiseQuestion, Preference]
        ] = []

    @property
    def relation(self) -> Relation:
        """The dataset this crowd answers questions about."""
        return self._relation

    def set_budget(self, max_questions: Optional[int]) -> None:
        """(Re)set the hard question budget; None removes it."""
        self._max_questions = max_questions

    def cached_answer(
        self, question: PairwiseQuestion
    ) -> Optional[Preference]:
        """A previously aggregated answer, oriented to ``question``."""
        answer = self._answers.get(question.key())
        if answer is None:
            return None
        if question.left > question.right:
            return answer.flipped()
        return answer

    def ask_pairwise_round(
        self, questions: Iterable[PairwiseQuestion]
    ) -> Dict[PairwiseQuestion, Preference]:
        """Execute one round of pairwise micro-questions.

        Duplicates (by symmetric key) are merged; already-answered
        questions are served from cache without cost or a new round.
        Returns answers oriented to each *canonical* question; use
        :meth:`cached_answer` for arbitrary orientations.
        """
        unique: List[PairwiseQuestion] = []
        fresh: List[PairwiseQuestion] = []
        seen = set()
        for question in questions:
            key = question.key()
            if key in seen:
                continue
            seen.add(key)
            canonical = question.canonical()
            unique.append(canonical)
            if key in self._answers:
                self.stats.cached_hits += 1
            else:
                fresh.append(canonical)

        if not fresh:
            return {q: self._answers[q.key()] for q in unique}

        if self._max_questions is not None:
            asked = self.stats.questions + len(fresh)
            if asked > self._max_questions:
                raise BudgetExhaustedError(
                    f"question budget of {self._max_questions} exceeded"
                )

        assignments = 0
        for question in fresh:
            omega = self._voting.workers_for(question)
            workers = self._pool.draw(self._rng, omega)
            votes = [
                worker.answer_pairwise(question, self._oracle, self._rng)
                for worker in workers
            ]
            answer = self._voting.aggregate(votes)
            assignments += omega
            self._answers[question.key()] = answer
        self.stats.record_round(len(fresh), assignments)
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(fresh))
        for question in fresh:
            self.question_log.append(
                (self.stats.rounds, question, self._answers[question.key()])
            )
        return {q: self._answers[q.key()] for q in unique}

    def ask_pairwise(self, question: PairwiseQuestion) -> Preference:
        """Ask a single question as its own round (serial execution)."""
        cached = self.cached_answer(question)
        if cached is not None:
            self.stats.cached_hits += 1
            return cached
        self.ask_pairwise_round([question])
        answer = self.cached_answer(question)
        assert answer is not None
        return answer

    def ask_multiway_round(
        self, questions: Iterable[MultiwayQuestion]
    ) -> Dict[MultiwayQuestion, int]:
        """Execute one round of m-ary questions (§2.1's extension).

        Each micro-task shows a worker all candidates at once and asks
        for the most preferred one; votes are aggregated by plurality
        (ties broken toward the lowest tuple index). One m-ary question
        counts as one question for cost purposes.
        """
        unique: List[MultiwayQuestion] = []
        fresh: List[MultiwayQuestion] = []
        seen = set()
        for question in questions:
            key = question.key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(question)
            if key in self._multiway_answers:
                self.stats.cached_hits += 1
            else:
                fresh.append(question)
        if not fresh:
            return {q: self._multiway_answers[q.key()] for q in unique}

        if self._max_questions is not None:
            if self.stats.questions + len(fresh) > self._max_questions:
                raise BudgetExhaustedError(
                    f"question budget of {self._max_questions} exceeded"
                )

        assignments = 0
        for question in fresh:
            omega = self._voting.workers_for(
                PairwiseQuestion(
                    question.candidates[0],
                    question.candidates[1],
                    question.attribute,
                )
            )
            workers = self._pool.draw(self._rng, omega)
            votes = [
                worker.answer_multiway(question, self._oracle, self._rng)
                for worker in workers
            ]
            counts: Dict[int, int] = {}
            for vote in votes:
                counts[vote] = counts.get(vote, 0) + 1
            winner = min(
                counts, key=lambda candidate: (-counts[candidate], candidate)
            )
            assignments += omega
            self._multiway_answers[question.key()] = winner
        self.stats.record_round(len(fresh), assignments)
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(fresh))
        return {q: self._multiway_answers[q.key()] for q in unique}

    def ask_unary_round(
        self, questions: Iterable[UnaryQuestion], omega: int = DEFAULT_OMEGA
    ) -> Dict[UnaryQuestion, float]:
        """Execute one round of unary questions (the [12] format).

        Each question is answered by ``omega`` workers whose numeric
        estimates are averaged.
        """
        fresh: List[UnaryQuestion] = []
        results: Dict[UnaryQuestion, float] = {}
        for question in questions:
            key = (question.tuple_index, question.attribute)
            if key in self._unary_answers:
                self.stats.cached_hits += 1
                results[question] = self._unary_answers[key]
            else:
                fresh.append(question)
        if not fresh:
            return results

        if self._max_questions is not None:
            if self.stats.questions + len(fresh) > self._max_questions:
                raise BudgetExhaustedError(
                    f"question budget of {self._max_questions} exceeded"
                )

        assignments = 0
        for question in fresh:
            workers = self._pool.draw(self._rng, omega)
            estimates = [
                worker.answer_unary(question, self._oracle, self._rng)
                for worker in workers
            ]
            value = float(np.mean(estimates))
            assignments += omega
            self._unary_answers[
                (question.tuple_index, question.attribute)
            ] = value
            results[question] = value
        self.stats.record_round(len(fresh), assignments)
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(fresh))
        return results

"""The round-based simulated crowdsourcing platform (paper §2.1, §6.2).

The platform executes *rounds*: a scheduler hands over a batch of
micro-questions; each question is assigned workers per the voting policy;
worker answers are aggregated by majority; the aggregated answers come
back at the end of the round. Latency is the number of rounds, monetary
cost follows the paper's AMT formula

.. math::  cost = price · ω · \\sum_i \\lceil |Q_i| / 5 \\rceil

(price $0.02/question, ``ω = 5`` workers, 5 questions per HIT), tracked by
:class:`CrowdStats` alongside raw question and worker-assignment counts.

Duplicate micro-questions inside a round are merged (one HIT serves all
requesters), and previously answered micro-questions are served from the
platform's answer cache free of charge — questions are never re-asked.

Fault tolerance: attach a :class:`~repro.crowd.faults.FaultPlan` to
inject abandonment/expiry/transient/spam failures and a
:class:`~repro.crowd.retry.RetryPolicy` to re-post failed questions in
later rounds (with exponential round-backoff). In *strict* mode a fault
that cannot be recovered raises; in non-strict mode the question is
marked **unresolved** and the schedulers degrade gracefully (see
`repro.core.engine`). Round accounting is atomic: a round either commits
fully (stats, ledger, cache, log) or not at all.

Observability: every platform owns a run-local
:class:`~repro.obs.metrics.MetricsRegistry` (``crowd.metrics``) fed at
round granularity, and when a global :func:`repro.obs.observe` scope is
active the platform additionally emits structured trace events (one per
round, batch, vote, fault, retry, budget decision and unresolved
question) plus the same counter increments into the observation's
aggregate registry. With observability off, the trace hooks cost one
``enabled`` check per site.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import ceil
from pathlib import Path
from typing import Any, Dict, FrozenSet, Iterable, List, Optional, Set, \
    Tuple as TupleT, Union

import numpy as np

from repro.crowd.backends import (
    CrowdBackend,
    QUESTIONS_PER_HIT,
    STATUS_ANSWERED,
    SimulatedBackend,
)
from repro.crowd.faults import FaultPlan, FaultStats
from repro.crowd.journal import JournalWriter
from repro.crowd.oracle import GroundTruthOracle
from repro.obs import current_observation
from repro.obs.logging import get_logger
from repro.obs.metrics import (
    BACKOFF_ROUNDS,
    BUDGET_DENIALS,
    CACHE_HITS,
    DEGRADED_ANSWERS,
    FAULTS_INJECTED,
    JOURNAL_RECORDS,
    MetricsRegistry,
    QUESTIONS_ASKED,
    REPLAYED_POSTINGS,
    RETRIES,
    ROUND_SIZE,
    ROUNDS,
    TIMEOUTS,
    UNRESOLVED_QUESTIONS,
    WORKER_ASSIGNMENTS,
)
from repro.crowd.retry import RetryPolicy
from repro.crowd.voting import DEFAULT_OMEGA, StaticVoting, VotingPolicy
from repro.crowd.workers import WorkerPool
from repro.exceptions import (
    BudgetExhaustedError,
    CrowdPlatformError,
    FaultInjectionError,
    QuestionTimeoutError,
    RetriesExhaustedError,
)
from repro.data.relation import Relation
from repro.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)

#: AMT price per question per worker used in the paper's §6.2.
DEFAULT_PRICE = 0.02

__all__ = [
    "CrowdStats",
    "DEFAULT_PRICE",
    "QUESTIONS_PER_HIT",
    "SimulatedCrowd",
]

_log = get_logger(__name__)


@dataclass
class CrowdStats:
    """Aggregate statistics of a crowdsourced execution."""

    questions: int = 0
    rounds: int = 0
    worker_assignments: int = 0
    round_sizes: List[int] = field(default_factory=list)
    cached_hits: int = 0
    #: Questions re-posted after a fault (each re-post counts once).
    retries: int = 0
    #: Questions that missed a deadline: expired HITs + per-question
    #: retry deadlines.
    timeouts: int = 0
    #: Worker assignments that never returned (injected abandonment).
    abandoned_assignments: int = 0
    #: Answers aggregated from fewer votes than assigned, or produced by
    #: an injected spam burst — delivered, but lower-confidence.
    degraded_answers: int = 0
    #: Questions given up on permanently (retries exhausted, deadline
    #: missed, or budget ran out in non-strict mode).
    unresolved_questions: int = 0
    #: Idle rounds spent waiting out retry backoff (latency only — no
    #: questions are posted while backing off).
    backoff_rounds: int = 0
    #: Per executed round: how many of its posted questions were
    #: re-posts (parallel to ``round_sizes``).
    retried_per_round: List[int] = field(default_factory=list)

    def record_round(
        self, num_questions: int, num_assignments: int, retried: int = 0
    ) -> None:
        """Account one executed round."""
        self.rounds += 1
        self.questions += num_questions
        self.worker_assignments += num_assignments
        self.round_sizes.append(num_questions)
        self.retried_per_round.append(retried)

    def hit_cost(
        self,
        price: float = DEFAULT_PRICE,
        omega: int = DEFAULT_OMEGA,
        per_hit: int = QUESTIONS_PER_HIT,
    ) -> float:
        """Monetary cost under the paper's HIT formula (§6.2)."""
        hits = sum(ceil(size / per_hit) for size in self.round_sizes if size)
        return price * omega * hits

    def assignment_cost(self, price: float = DEFAULT_PRICE) -> float:
        """Cost when paying each worker assignment individually."""
        return price * self.worker_assignments

    def merge(self, other: "CrowdStats") -> "CrowdStats":
        """Combine two executions (e.g. preprocessing + main run)."""
        merged = CrowdStats(
            questions=self.questions + other.questions,
            rounds=self.rounds + other.rounds,
            worker_assignments=self.worker_assignments
            + other.worker_assignments,
            round_sizes=self.round_sizes + other.round_sizes,
            cached_hits=self.cached_hits + other.cached_hits,
            retries=self.retries + other.retries,
            timeouts=self.timeouts + other.timeouts,
            abandoned_assignments=self.abandoned_assignments
            + other.abandoned_assignments,
            degraded_answers=self.degraded_answers + other.degraded_answers,
            unresolved_questions=self.unresolved_questions
            + other.unresolved_questions,
            backoff_rounds=self.backoff_rounds + other.backoff_rounds,
            retried_per_round=self.retried_per_round
            + other.retried_per_round,
        )
        return merged


class SimulatedCrowd:
    """Executes question rounds against simulated workers.

    Parameters
    ----------
    relation:
        The dataset; its latent values feed the ground-truth oracle.
    pool:
        Worker pool (defaults to a perfect pool — the §3/§4 assumption).
    voting:
        Voting policy deciding workers per question (default: static ω=5
        for noisy pools; a perfect pool only ever needs one worker, but
        the policy is honoured regardless).
    rng, seed:
        Randomness for worker draws and error models.
    max_questions:
        Optional hard budget; exceeding it raises
        :class:`~repro.exceptions.BudgetExhaustedError` in strict mode,
        or marks the remaining questions *unresolved* otherwise.
    ledger:
        Optional :class:`repro.crowd.hits.HitLedger` recording the HIT
        structure and sampled working times of every round.
    faults:
        Optional :class:`~repro.crowd.faults.FaultPlan` injecting
        abandonment / HIT-expiry / transient / spam failures into
        pairwise rounds (deterministic from its own seed).
    retry:
        Optional :class:`~repro.crowd.retry.RetryPolicy` re-posting
        failed questions in later rounds with exponential backoff.
    strict:
        Fault/budget handling. ``True``: unrecoverable faults raise
        (:class:`~repro.exceptions.FaultInjectionError`,
        :class:`~repro.exceptions.RetriesExhaustedError`,
        :class:`~repro.exceptions.QuestionTimeoutError`,
        :class:`~repro.exceptions.BudgetExhaustedError`). ``False``:
        failed questions become *unresolved* and callers degrade
        gracefully. Default ``None`` resolves to strict exactly when no
        fault plan is attached — the seed behavior for fault-free runs.
    journal:
        Optional :class:`~repro.crowd.journal.JournalWriter` (or a
        directory path for one) recording every posting durably; see
        :mod:`repro.crowd.journal` and ``docs/durability.md``. Disabled
        (``None``) by default — the hooks then cost one ``is None``
        check per posting.
    backend:
        Optional :class:`~repro.crowd.backends.CrowdBackend` answering
        the postings; defaults to a fresh
        :class:`~repro.crowd.backends.SimulatedBackend` over ``pool`` /
        ``voting`` / ``rng`` / ``faults``. Pass a
        :class:`~repro.crowd.backends.ReplayBackend` to serve a
        journaled run.
    """

    def __init__(
        self,
        relation: Relation,
        pool: Optional[WorkerPool] = None,
        voting: Optional[VotingPolicy] = None,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
        max_questions: Optional[int] = None,
        ledger: Optional["HitLedger"] = None,
        faults: Optional[FaultPlan] = None,
        retry: Optional[RetryPolicy] = None,
        strict: Optional[bool] = None,
        journal: Union[JournalWriter, str, Path, None] = None,
        backend: Optional[CrowdBackend] = None,
    ):
        if rng is not None and seed is not None:
            raise CrowdPlatformError("pass either seed or rng, not both")
        self._relation = relation
        self._oracle = GroundTruthOracle(relation)
        self._pool = pool if pool is not None else WorkerPool.perfect()
        self._voting = voting if voting is not None else StaticVoting()
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self._max_questions = max_questions
        self._ledger = ledger
        self._faults = faults
        self._retry = retry
        self._strict = strict
        if backend is None:
            backend = SimulatedBackend(
                oracle=self._oracle,
                pool=self._pool,
                voting=self._voting,
                rng=self._rng,
                faults=faults,
            )
        self._backend = backend
        if journal is not None and not isinstance(journal, JournalWriter):
            journal = JournalWriter(journal)
        self._journal = journal
        self._answers: Dict[TupleT[int, int, int], Preference] = {}
        self._unary_answers: Dict[TupleT[int, int], float] = {}
        self._multiway_answers: Dict[TupleT, int] = {}
        self._unresolved: Set[TupleT] = set()
        #: Did a non-strict run hit the question budget?
        self.budget_degraded = False
        self.stats = CrowdStats()
        #: Run-local metrics registry (round-granularity; results report
        #: from it). The globally installed observation, when enabled,
        #: receives the same increments via :meth:`count_metric`.
        self.metrics = MetricsRegistry()
        #: (round number, question, aggregated answer) per fresh question,
        #: in execution order — feeds the golden trace tests.
        self.question_log: List[
            TupleT[int, PairwiseQuestion, Preference]
        ] = []
        #: Who-to-charge context for the *next* posting; schedulers call
        #: :meth:`set_cost_context` as they move through layers/phases.
        self.cost_context: Dict[str, Any] = {}
        #: One record per executed posting (always on — a dict append per
        #: round): round index, format, question/assignment/retry/fault
        #: counts and the cost context that caused it. Feeds
        #: ``CrowdSkylineResult.cost_breakdown()``.
        self.cost_records: List[Dict[str, Any]] = []

    @property
    def strict(self) -> bool:
        """Effective strictness: explicit flag, else strict iff no
        fault plan is attached."""
        if self._strict is not None:
            return self._strict
        return self._faults is None

    @property
    def fault_stats(self) -> Optional[FaultStats]:
        """Injected-fault tallies, or None without a fault plan.

        Reported by the backend: a replay serves the tallies recorded
        at the journaled prefix, a simulation its live plan's."""
        stats = self._backend.fault_stats()
        if stats is not None:
            return stats
        return self._faults.stats if self._faults is not None else None

    @property
    def backend(self) -> CrowdBackend:
        """The execution backend answering this platform's postings."""
        return self._backend

    @property
    def journal(self) -> Optional[JournalWriter]:
        """The attached write-ahead journal, if any."""
        return self._journal

    def install_backend(self, backend: CrowdBackend) -> None:
        """Swap the execution backend (the resume path installs a
        :class:`~repro.crowd.backends.ReplayBackend` here)."""
        self._backend = backend

    def install_journal(
        self, journal: Union[JournalWriter, str, Path, None]
    ) -> None:
        """(Re)attach the write-ahead journal; None detaches it (pure
        replay runs detach so re-execution writes nothing)."""
        if journal is not None and not isinstance(journal, JournalWriter):
            journal = JournalWriter(journal)
        self._journal = journal

    def backend_state(self) -> Dict[str, Any]:
        """JSON-able snapshot of the backend's continuation state."""
        return self._backend.state()

    def journal_spec(self) -> Optional[Dict[str, Any]]:
        """A JSON-able recipe to reconstruct this crowd, or None.

        Covers the spec-able components (perfect/uniform pools, static
        voting, fault rates, retry policy, ledger parameters). A crowd
        built from unreconstructible parts (mixed pools, dynamic
        voting, custom workers) returns None — such runs journal and
        replay fine, but ``resume`` must be handed an equivalent crowd
        explicitly.
        """
        pool_spec = getattr(self._pool, "spec", None)
        if pool_spec is None:
            return None
        if isinstance(self._voting, StaticVoting):
            voting_spec: Optional[Dict[str, Any]] = {
                "kind": "static",
                "omega": self._voting.omega,
            }
        else:
            return None
        spec: Dict[str, Any] = {
            "pool": pool_spec,
            "voting": voting_spec,
            "max_questions": self._max_questions,
            "strict": self._strict,
            "faults": None,
            "retry": None,
            "ledger": None,
        }
        if self._faults is not None:
            spec["faults"] = {
                "abandonment_rate": self._faults.abandonment_rate,
                "hit_timeout_rate": self._faults.hit_timeout_rate,
                "transient_error_rate": self._faults.transient_error_rate,
                "spam_burst_rate": self._faults.spam_burst_rate,
            }
        if self._retry is not None:
            spec["retry"] = {
                "max_attempts": self._retry.max_attempts,
                "backoff_base": self._retry.backoff_base,
                "backoff_factor": self._retry.backoff_factor,
                "max_backoff": self._retry.max_backoff,
                "deadline_rounds": self._retry.deadline_rounds,
            }
        if self._ledger is not None:
            ledger_spec = self._ledger.spec()
            if ledger_spec is None:
                return None
            spec["ledger"] = ledger_spec
        return spec

    @property
    def unresolved_keys(self) -> FrozenSet[TupleT]:
        """Keys of questions permanently given up on (never re-asked)."""
        return frozenset(self._unresolved)

    def is_unresolved(self, question: PairwiseQuestion) -> bool:
        """Whether the platform has permanently given up on a question."""
        return question.key() in self._unresolved

    def set_cost_context(self, **context: Any) -> None:
        """Update the attribution context charged for future postings.

        Pass ``scheduler=`` / ``phase=`` / ``layer=`` / ``tuple=``
        (free-form values); ``None`` clears a key. Always available —
        attribution is part of the cost model, not of observability.
        """
        for key, value in context.items():
            if value is None:
                self.cost_context.pop(key, None)
            else:
                self.cost_context[key] = value

    def _record_cost(
        self,
        format: str,
        questions: int,
        assignments: int,
        retried: int = 0,
        merged: bool = False,
        faults: int = 0,
    ) -> None:
        """Append one cost-attribution record for an executed posting.

        ``round`` is the committed round index; a merged multiway
        posting shares its predecessor's index (matching how
        :meth:`CrowdStats.record_round` sizes HITs)."""
        self.cost_records.append(
            {
                "round": self.stats.rounds,
                "format": format,
                "questions": questions,
                "assignments": assignments,
                "retried": retried,
                "merged": merged,
                "faults": faults,
                "context": dict(self.cost_context),
            }
        )

    def count_metric(
        self, name: str, amount: float = 1, **labels: str
    ) -> None:
        """Increment a counter in the run-local registry and, when a
        global observation is installed, in its aggregate registry too."""
        self.metrics.counter(name, **labels).inc(amount)
        observation = current_observation()
        if observation.enabled:
            observation.metrics.counter(name, **labels).inc(amount)

    def _observe_round_size(self, size: int) -> None:
        self.metrics.histogram(ROUND_SIZE).observe(size)
        observation = current_observation()
        if observation.enabled:
            observation.metrics.histogram(ROUND_SIZE).observe(size)

    def _mark_unresolved(self, key: TupleT, reason: str = "fault") -> None:
        self._unresolved.add(key)
        self.stats.unresolved_questions += 1
        self.count_metric(UNRESOLVED_QUESTIONS, reason=reason)
        observation = current_observation()
        if observation.enabled:
            observation.tracer.event(
                "crowd.unresolved", question=list(key), reason=reason
            )
        _log.warning("question %s permanently unresolved (%s)", key, reason)

    @property
    def relation(self) -> Relation:
        """The dataset this crowd answers questions about."""
        return self._relation

    def set_budget(self, max_questions: Optional[int]) -> None:
        """(Re)set the hard question budget; None removes it."""
        self._max_questions = max_questions

    def cached_answer(
        self, question: PairwiseQuestion
    ) -> Optional[Preference]:
        """A previously aggregated answer, oriented to ``question``."""
        answer = self._answers.get(question.key())
        if answer is None:
            return None
        if question.left > question.right:
            return answer.flipped()
        return answer

    def _budget_blocks(self, num_fresh: int) -> bool:
        """Whether posting ``num_fresh`` questions would bust the budget.

        Strict mode raises; non-strict mode flags the degradation and
        returns True so the caller marks the questions unresolved.
        Nothing is mutated before this check — rounds commit atomically.
        """
        if self._max_questions is None:
            return False
        if self.stats.questions + num_fresh <= self._max_questions:
            return False
        self.count_metric(BUDGET_DENIALS)
        observation = current_observation()
        if observation.enabled:
            observation.tracer.event(
                "crowd.budget",
                budget=self._max_questions,
                spent=self.stats.questions,
                requested=num_fresh,
                strict=self.strict,
            )
        # Unconditional even during replay: a resumed writer dedupes
        # events that are already durable (and re-writes ones a crash
        # dropped after the final posting).
        if self._journal is not None:
            self._journal.append_event(
                "budget",
                {
                    "budget": self._max_questions,
                    "spent": self.stats.questions,
                    "requested": num_fresh,
                    "strict": self.strict,
                },
            )
        _log.info(
            "budget of %d blocks posting %d questions (%d spent)",
            self._max_questions, num_fresh, self.stats.questions,
        )
        if self.strict:
            raise BudgetExhaustedError(
                f"question budget of {self._max_questions} exceeded"
            )
        self.budget_degraded = True
        return True

    def _after_posting(
        self,
        format: str,
        keys: List[TupleT],
        outcomes: List[Any],
        retried: int = 0,
        merge: bool = False,
        omega: Optional[int] = None,
    ) -> None:
        """Journal a live posting, or account a replayed one.

        Called write-ahead: the posting's records hit the journal (and
        are fsynced) before its results are applied to the platform, so
        a crash mid-commit re-executes the round from the journal
        instead of losing it. Replayed postings are already journaled —
        they only count toward the replay metric.
        """
        if self._backend.last_was_replay:
            self.count_metric(REPLAYED_POSTINGS)
            return
        if self._journal is None:
            return
        written = self._journal.append_posting(
            format=format,
            keys=keys,
            outcomes=outcomes,
            state=self._backend.state(),
            retried=retried,
            merge=merge,
            omega=omega,
        )
        self.count_metric(JOURNAL_RECORDS, written)

    def _execute_pairwise_posting(
        self, posted: List[PairwiseQuestion], retried: int
    ) -> Dict[TupleT, str]:
        """Execute one posted round via the backend and commit it.

        The backend answers the batch (drawing workers and rolling
        faults for a simulation, or serving the journal for a replay);
        the platform derives all accounting from the outcomes and
        re-emits the per-question trace events, so both backends leave
        identical observable state. Returns the failure kind
        (``'timeout'``/``'transient'``/``'abandoned'``) per failed
        question key; answered questions are committed to the cache.
        The round commits atomically at the end.
        """
        observation = current_observation()
        trace = observation.tracer if observation.enabled else None
        if trace is not None:
            with trace.span(
                "crowd.post", format="pairwise", questions=len(posted)
            ):
                outcomes = self._backend.pairwise_round(posted)
        else:
            outcomes = self._backend.pairwise_round(posted)
        self._after_posting(
            "pairwise", [q.key() for q in posted], outcomes,
            retried=retried,
        )
        answered: List[TupleT[PairwiseQuestion, Preference, bool]] = []
        failures: Dict[TupleT, str] = {}
        assignments = 0
        abandoned = 0
        for question, outcome in zip(posted, outcomes):
            key = outcome.key
            if outcome.status != STATUS_ANSWERED:
                failures[key] = outcome.status
                if outcome.status == "abandoned":
                    abandoned += outcome.omega
                self.count_metric(FAULTS_INJECTED, kind=outcome.status)
                if trace is not None:
                    trace.event(
                        "crowd.fault",
                        question=list(key),
                        fault=outcome.status,
                    )
                continue
            if outcome.spam:
                assignments += outcome.omega
                answered.append((question, outcome.answer, True))
                self.count_metric(FAULTS_INJECTED, kind="spam")
                if trace is not None:
                    trace.event(
                        "crowd.fault", question=list(key), fault="spam"
                    )
                    for vote in outcome.votes:
                        trace.event(
                            "crowd.vote",
                            question=list(key),
                            vote=vote.value,
                        )
                continue
            abandoned += outcome.omega - len(outcome.votes)
            assignments += len(outcome.votes)
            answered.append((question, outcome.answer, outcome.degraded))
            if trace is not None:
                for vote in outcome.votes:
                    trace.event(
                        "crowd.vote",
                        question=list(key),
                        vote=vote.value,
                    )

        # Commit the round atomically: stats, ledger, cache, log.
        timeout_failures = sum(
            1 for kind in failures.values() if kind == "timeout"
        )
        degraded_answers = sum(
            1 for _, _, degraded in answered if degraded
        )
        self.stats.record_round(len(posted), assignments, retried=retried)
        self.stats.abandoned_assignments += abandoned
        self.stats.timeouts += timeout_failures
        self.stats.degraded_answers += degraded_answers
        self.count_metric(ROUNDS)
        self.count_metric(QUESTIONS_ASKED, len(posted))
        if assignments:
            self.count_metric(WORKER_ASSIGNMENTS, assignments)
        if timeout_failures:
            self.count_metric(TIMEOUTS, timeout_failures)
        if degraded_answers:
            self.count_metric(DEGRADED_ANSWERS, degraded_answers)
        self._observe_round_size(len(posted))
        self._record_cost(
            "pairwise", len(posted), assignments,
            retried=retried, faults=len(failures),
        )
        if trace is not None:
            trace.event(
                "crowd.round",
                round=self.stats.rounds,
                questions=len(posted),
                assignments=assignments,
                retried=retried,
                format="pairwise",
                **self.cost_context,
            )
        _log.debug(
            "round %d: %d questions, %d assignments, %d failures",
            self.stats.rounds, len(posted), assignments, len(failures),
        )
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(posted))
        for question, answer, _ in answered:
            self._answers[question.key()] = answer
            self.question_log.append((self.stats.rounds, question, answer))
        return failures

    def _schedule_retries(
        self,
        failures: Dict[TupleT, str],
        posted: List[PairwiseQuestion],
        attempts: Dict[TupleT, int],
        waited: Dict[TupleT, int],
    ) -> List[PairwiseQuestion]:
        """Decide the fate of this round's failed questions.

        Returns the questions to re-post next round; the rest either
        raise (strict mode) or become unresolved. All retried questions
        of a round wait out the *longest* backoff among them (they share
        the next posting round).
        """
        observation = current_observation()
        trace = observation.tracer if observation.enabled else None
        candidates: List[PairwiseQuestion] = []
        for question in posted:
            key = question.key()
            kind = failures.get(key)
            if kind is None:
                continue
            if self._retry is None:
                if self.strict:
                    raise FaultInjectionError(
                        f"question {key} failed ({kind}) and no retry "
                        "policy is attached"
                    )
                self._mark_unresolved(key, reason="no_retry_policy")
                continue
            if not self._retry.attempts_left(attempts[key]):
                if self.strict:
                    raise RetriesExhaustedError(
                        f"question {key} failed on all "
                        f"{attempts[key]} attempts (last: {kind})"
                    )
                self._mark_unresolved(key, reason="retries_exhausted")
                continue
            candidates.append(question)
        if not candidates:
            return []
        assert self._retry is not None
        round_backoff = max(
            self._retry.backoff_rounds(attempts[q.key()])
            for q in candidates
        )
        survivors: List[PairwiseQuestion] = []
        for question in candidates:
            key = question.key()
            if self._retry.past_deadline(waited[key] + round_backoff):
                self.stats.timeouts += 1
                self.count_metric(TIMEOUTS)
                if self.strict:
                    raise QuestionTimeoutError(
                        f"question {key} missed its "
                        f"{self._retry.deadline_rounds}-round deadline"
                    )
                self._mark_unresolved(key, reason="deadline")
                continue
            waited[key] += round_backoff
            self.stats.retries += 1
            self.count_metric(RETRIES)
            if trace is not None:
                trace.event(
                    "crowd.retry",
                    question=list(key),
                    attempt=attempts[key],
                    backoff=round_backoff,
                )
            _log.debug(
                "re-posting %s (attempt %d, backoff %d rounds)",
                key, attempts[key] + 1, round_backoff,
            )
            survivors.append(question)
        if survivors and round_backoff:
            self.stats.backoff_rounds += round_backoff
            self.count_metric(BACKOFF_ROUNDS, round_backoff)
            if self._ledger is not None:
                self._ledger.record_backoff(round_backoff)
        return survivors

    def ask_pairwise_round(
        self, questions: Iterable[PairwiseQuestion]
    ) -> Dict[PairwiseQuestion, Preference]:
        """Execute one round of pairwise micro-questions.

        Duplicates (by symmetric key) are merged; already-answered
        questions are served from cache without cost or a new round.
        Returns answers oriented to each *canonical* question; use
        :meth:`cached_answer` for arbitrary orientations.

        With a fault plan attached, questions that fail their round are
        re-posted per the retry policy (each re-post is a further
        platform round); questions given up on permanently are omitted
        from the returned dict and reported via :meth:`is_unresolved` —
        they are never asked again.
        """
        unique: List[PairwiseQuestion] = []
        fresh: List[PairwiseQuestion] = []
        cached = 0
        seen = set()
        for question in questions:
            key = question.key()
            if key in seen:
                continue
            seen.add(key)
            canonical = question.canonical()
            unique.append(canonical)
            if key in self._answers:
                cached += 1
            elif key not in self._unresolved:
                fresh.append(canonical)

        observation = current_observation()
        if observation.enabled and unique:
            observation.tracer.event(
                "crowd.batch",
                requested=len(unique),
                fresh=len(fresh),
                cached=cached,
                format="pairwise",
            )

        pending = fresh
        attempts: Dict[TupleT, int] = {}
        waited: Dict[TupleT, int] = {}
        while pending:
            if self._budget_blocks(len(pending)):
                for question in pending:
                    self._mark_unresolved(question.key(), reason="budget")
                break
            if cached:
                self.count_metric(CACHE_HITS, cached)
            self.stats.cached_hits += cached
            cached = 0
            for question in pending:
                key = question.key()
                attempts[key] = attempts.get(key, 0) + 1
                waited[key] = waited.get(key, 0) + 1
            retried = sum(1 for q in pending if attempts[q.key()] > 1)
            failures = self._execute_pairwise_posting(pending, retried)
            if not failures:
                break
            pending = self._schedule_retries(
                failures, pending, attempts, waited
            )
        if cached:
            self.count_metric(CACHE_HITS, cached)
        self.stats.cached_hits += cached
        return {
            q: self._answers[q.key()]
            for q in unique
            if q.key() in self._answers
        }

    def ask_pairwise(
        self, question: PairwiseQuestion
    ) -> Optional[Preference]:
        """Ask a single question as its own round (serial execution).

        Returns None only when the platform has permanently given up on
        the question (non-strict fault/budget degradation).
        """
        cached = self.cached_answer(question)
        if cached is not None:
            self.stats.cached_hits += 1
            self.count_metric(CACHE_HITS)
            return cached
        self.ask_pairwise_round([question])
        answer = self.cached_answer(question)
        if answer is None and question.key() not in self._unresolved:
            raise CrowdPlatformError(
                f"round left question {question.key()} unanswered"
            )
        return answer

    def ask_multiway_round(
        self,
        questions: Iterable[MultiwayQuestion],
        same_round: bool = False,
    ) -> Dict[MultiwayQuestion, int]:
        """Execute one round of m-ary questions (§2.1's extension).

        Each micro-task shows a worker all candidates at once and asks
        for the most preferred one; votes are aggregated by plurality
        (ties broken toward the lowest tuple index). One m-ary question
        counts as one question for cost purposes.

        ``same_round=True`` folds this posting into the immediately
        preceding round instead of opening a new one: questions,
        assignments and HIT sizing accrue to that round and a
        ``crowd.round_merged`` trace event is emitted. Mixed
        pairwise+multiway batches use this so a batch costs a single
        latency round. (The round-size histogram keeps its original
        pairwise observation — only ``round_sizes`` reflects the merged
        total.) Ignored when no round has executed yet.
        """
        unique: List[MultiwayQuestion] = []
        fresh: List[MultiwayQuestion] = []
        cached = 0
        seen = set()
        for question in questions:
            key = question.key()
            if key in seen:
                continue
            seen.add(key)
            unique.append(question)
            if key in self._multiway_answers:
                cached += 1
            elif key not in self._unresolved:
                fresh.append(question)
        observation = current_observation()
        trace = observation.tracer if observation.enabled else None
        if trace is not None and unique:
            trace.event(
                "crowd.batch",
                requested=len(unique),
                fresh=len(fresh),
                cached=cached,
                format="multiway",
            )
        if not fresh or self._budget_blocks(len(fresh)):
            if cached:
                self.count_metric(CACHE_HITS, cached)
            self.stats.cached_hits += cached
            for question in fresh:
                self._mark_unresolved(question.key(), reason="budget")
            return {
                q: self._multiway_answers[q.key()]
                for q in unique
                if q.key() in self._multiway_answers
            }
        if cached:
            self.count_metric(CACHE_HITS, cached)
        self.stats.cached_hits += cached

        merge = same_round and bool(self.stats.round_sizes)
        if trace is not None:
            with trace.span(
                "crowd.post", format="multiway", questions=len(fresh)
            ):
                outcomes = self._backend.multiway_round(fresh)
        else:
            outcomes = self._backend.multiway_round(fresh)
        self._after_posting(
            "multiway", [q.key() for q in fresh], outcomes, merge=merge,
        )
        assignments = 0
        for question, outcome in zip(fresh, outcomes):
            assignments += outcome.omega
            self._multiway_answers[question.key()] = outcome.winner
            if trace is not None:
                for vote in outcome.votes:
                    trace.event(
                        "crowd.vote",
                        question=list(question.key()),
                        vote=int(vote),
                    )
        if merge:
            self.stats.questions += len(fresh)
            self.stats.worker_assignments += assignments
            self.stats.round_sizes[-1] += len(fresh)
        else:
            self.stats.record_round(len(fresh), assignments)
            self.count_metric(ROUNDS)
            self._observe_round_size(len(fresh))
        self.count_metric(QUESTIONS_ASKED, len(fresh))
        if assignments:
            self.count_metric(WORKER_ASSIGNMENTS, assignments)
        self._record_cost(
            "multiway", len(fresh), assignments, merged=merge,
        )
        if trace is not None:
            trace.event(
                "crowd.round_merged" if merge else "crowd.round",
                round=self.stats.rounds,
                questions=len(fresh),
                assignments=assignments,
                retried=0,
                format="multiway",
                **self.cost_context,
            )
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(fresh))
        return {q: self._multiway_answers[q.key()] for q in unique}

    def ask_unary_round(
        self, questions: Iterable[UnaryQuestion], omega: int = DEFAULT_OMEGA
    ) -> Dict[UnaryQuestion, float]:
        """Execute one round of unary questions (the [12] format).

        Each question is answered by ``omega`` workers whose numeric
        estimates are averaged.
        """
        fresh: List[UnaryQuestion] = []
        cached = 0
        results: Dict[UnaryQuestion, float] = {}
        for question in questions:
            key = (question.tuple_index, question.attribute)
            if key in self._unary_answers:
                cached += 1
                results[question] = self._unary_answers[key]
            elif key not in self._unresolved:
                fresh.append(question)
        observation = current_observation()
        trace = observation.tracer if observation.enabled else None
        if trace is not None and (fresh or cached):
            trace.event(
                "crowd.batch",
                requested=len(fresh) + cached,
                fresh=len(fresh),
                cached=cached,
                format="unary",
            )
        if not fresh or self._budget_blocks(len(fresh)):
            if cached:
                self.count_metric(CACHE_HITS, cached)
            self.stats.cached_hits += cached
            for question in fresh:
                self._mark_unresolved(
                    (question.tuple_index, question.attribute),
                    reason="budget",
                )
            return results
        if cached:
            self.count_metric(CACHE_HITS, cached)
        self.stats.cached_hits += cached

        if trace is not None:
            with trace.span(
                "crowd.post", format="unary", questions=len(fresh)
            ):
                outcomes = self._backend.unary_round(fresh, omega)
        else:
            outcomes = self._backend.unary_round(fresh, omega)
        self._after_posting(
            "unary",
            [(q.tuple_index, q.attribute) for q in fresh],
            outcomes,
            omega=omega,
        )
        assignments = 0
        for question, outcome in zip(fresh, outcomes):
            assignments += outcome.omega
            self._unary_answers[
                (question.tuple_index, question.attribute)
            ] = outcome.value
            results[question] = outcome.value
            if trace is not None:
                trace.event(
                    "crowd.estimate",
                    question=[question.tuple_index, question.attribute],
                    value=outcome.value,
                )
        self.stats.record_round(len(fresh), assignments)
        self.count_metric(ROUNDS)
        self.count_metric(QUESTIONS_ASKED, len(fresh))
        if assignments:
            self.count_metric(WORKER_ASSIGNMENTS, assignments)
        self._observe_round_size(len(fresh))
        self._record_cost("unary", len(fresh), assignments)
        if trace is not None:
            trace.event(
                "crowd.round",
                round=self.stats.rounds,
                questions=len(fresh),
                assignments=assignments,
                retried=0,
                format="unary",
                **self.cost_context,
            )
        if self._ledger is not None:
            self._ledger.record_round(self.stats.rounds, len(fresh))
        return results

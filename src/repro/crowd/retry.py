"""Retry/backoff policy for unanswered crowd questions.

When a fault (see :mod:`repro.crowd.faults`) leaves a question
unanswered at the end of its round, a real requester re-posts the HIT.
:class:`RetryPolicy` captures how the simulated platform does that:

* ``max_attempts`` bounds the number of posts per question (the first
  post counts as attempt 1),
* failed attempts back off exponentially, measured in *rounds* — the
  platform's unit of latency — so the k-th failure waits
  ``backoff_base · backoff_factor^(k−1)`` rounds (capped at
  ``max_backoff``) before the re-post,
* an optional ``deadline_rounds`` gives up on a question outright once
  it has been pending for that many rounds, regardless of attempts
  left.

What happens when a question gives up depends on the platform's strict
mode: strict raises (:class:`~repro.exceptions.RetriesExhaustedError` /
:class:`~repro.exceptions.QuestionTimeoutError`), non-strict marks the
question *unresolved* so schedulers can degrade gracefully.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.exceptions import CrowdPlatformError


@dataclass(frozen=True)
class RetryPolicy:
    """Re-posting policy for questions that fail their round.

    Parameters
    ----------
    max_attempts:
        Total posts allowed per question (>= 1); ``1`` disables retries.
    backoff_base:
        Rounds waited after the first failed attempt.
    backoff_factor:
        Multiplier applied to the wait for each further failure.
    max_backoff:
        Upper bound on the per-retry wait, in rounds.
    deadline_rounds:
        Optional total round budget per question: once the question has
        been pending this many rounds (posts + backoff waits), it times
        out instead of being re-posted.
    """

    max_attempts: int = 3
    backoff_base: int = 1
    backoff_factor: float = 2.0
    max_backoff: int = 8
    deadline_rounds: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CrowdPlatformError("max_attempts must be >= 1")
        if self.backoff_base < 0:
            raise CrowdPlatformError("backoff_base must be >= 0")
        if self.backoff_factor < 1.0:
            raise CrowdPlatformError("backoff_factor must be >= 1")
        if self.max_backoff < 0:
            raise CrowdPlatformError("max_backoff must be >= 0")
        if self.deadline_rounds is not None and self.deadline_rounds < 1:
            raise CrowdPlatformError("deadline_rounds must be >= 1")

    def backoff_rounds(self, failed_attempts: int) -> int:
        """Rounds to wait before the re-post after ``failed_attempts``
        failures (>= 1)."""
        if failed_attempts < 1:
            raise CrowdPlatformError("failed_attempts must be >= 1")
        wait = self.backoff_base * self.backoff_factor ** (failed_attempts - 1)
        return int(min(self.max_backoff, wait))

    def attempts_left(self, attempts_made: int) -> bool:
        """Whether another post is allowed after ``attempts_made``."""
        return attempts_made < self.max_attempts

    def past_deadline(self, rounds_pending: int) -> bool:
        """Whether a question pending for ``rounds_pending`` rounds has
        missed its deadline."""
        return (
            self.deadline_rounds is not None
            and rounds_pending >= self.deadline_rounds
        )

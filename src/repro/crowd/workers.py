"""Worker error models and the worker pool (paper §2.1, §5, §6).

The paper's simulation assumes each worker answers a question correctly
with probability ``p`` (default 0.8). We model that as
:class:`BernoulliWorker` and additionally provide:

* :class:`PerfectWorker` — always correct (the §3/§4 assumption under
  which question/round counts are measured),
* :class:`SkilledWorker` — per-worker proficiency drawn once at hire time
  (the "proficiency of workers" dimension of query-independent accuracy
  work cited in §2.1),
* :class:`SpammerWorker` — answers uniformly at random (AMT spam; the
  paper filters these by requiring Masters qualification, which we model
  as excluding spammers from the pool). The fault-injection layer
  (:mod:`repro.crowd.faults`) reuses this model for *spam bursts*: a
  whole HIT answered by a spam crew drawn from the fault plan's own
  generator, so burst injection never perturbs the honest answer stream.

For unary (quantitative) questions workers return the true latent value
perturbed by Gaussian noise scaled to the attribute's value range —
capturing the paper's observation that absolute judgments are harder than
relative ones.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)
from repro.exceptions import CrowdPlatformError

#: Default per-answer correctness probability (paper §6.1).
DEFAULT_ACCURACY = 0.8

#: Default unary noise, as a fraction of the latent value range. Chosen so
#: that the Unary baseline orders tuples *better* than a noisy pairwise
#: tournament sort (the paper notes its simulation setting favours Unary).
DEFAULT_UNARY_SIGMA = 0.10


class Worker(abc.ABC):
    """A single crowd worker."""

    @abc.abstractmethod
    def answer_pairwise(
        self,
        question: PairwiseQuestion,
        oracle: GroundTruthOracle,
        rng: np.random.Generator,
    ) -> Preference:
        """Answer a ternary pairwise question."""

    @abc.abstractmethod
    def answer_unary(
        self,
        question: UnaryQuestion,
        oracle: GroundTruthOracle,
        rng: np.random.Generator,
    ) -> float:
        """Answer a quantitative (unary) question with a value estimate."""

    def answer_multiway(
        self,
        question: MultiwayQuestion,
        oracle: GroundTruthOracle,
        rng: np.random.Generator,
    ) -> int:
        """Pick the most preferred of several tuples (m-ary format).

        The default is truthful; error models override."""
        return oracle.multiway_truth(question)


class PerfectWorker(Worker):
    """Always returns the ground truth."""

    def answer_pairwise(self, question, oracle, rng):
        return oracle.pairwise_truth(question)

    def answer_unary(self, question, oracle, rng):
        return oracle.unary_truth(question)


class BernoulliWorker(Worker):
    """Correct with probability ``p``; errs by hedging or flipping.

    An erring worker either hedges with "equally preferred" (with
    probability ``error_equal_fraction`` — the typical uncertain-human
    answer to "which movie is more romantic?") or flips to the opposite
    strict preference. When the truth is ``EQUAL`` an error picks a
    random strict side. Unary answers carry Gaussian noise with standard
    deviation ``unary_sigma × value_range``.
    """

    def __init__(
        self,
        accuracy: float = DEFAULT_ACCURACY,
        unary_sigma: float = DEFAULT_UNARY_SIGMA,
        error_equal_fraction: float = 0.5,
    ):
        if not 0.0 <= accuracy <= 1.0:
            raise CrowdPlatformError("worker accuracy must be within [0, 1]")
        if not 0.0 <= error_equal_fraction <= 1.0:
            raise CrowdPlatformError(
                "error_equal_fraction must be within [0, 1]"
            )
        self.accuracy = accuracy
        self.unary_sigma = unary_sigma
        self.error_equal_fraction = error_equal_fraction

    def answer_pairwise(self, question, oracle, rng):
        truth = oracle.pairwise_truth(question)
        if rng.random() < self.accuracy:
            return truth
        if truth is Preference.EQUAL:
            return Preference.LEFT if rng.random() < 0.5 else Preference.RIGHT
        if rng.random() < self.error_equal_fraction:
            return Preference.EQUAL
        return truth.opposite()

    def answer_unary(self, question, oracle, rng):
        truth = oracle.unary_truth(question)
        sigma = self.unary_sigma * oracle.value_range(question.attribute)
        return truth + float(rng.normal(0.0, sigma))

    def answer_multiway(self, question, oracle, rng):
        truth = oracle.multiway_truth(question)
        if rng.random() < self.accuracy:
            return truth
        others = [c for c in question.candidates if c != truth]
        return others[int(rng.integers(0, len(others)))]


class SkilledWorker(BernoulliWorker):
    """A Bernoulli worker whose accuracy was drawn from a skill prior.

    Use :meth:`hire` to sample a worker whose accuracy comes from a
    truncated normal around ``mean_accuracy``.
    """

    @classmethod
    def hire(
        cls,
        rng: np.random.Generator,
        mean_accuracy: float = DEFAULT_ACCURACY,
        accuracy_std: float = 0.1,
        unary_sigma: float = DEFAULT_UNARY_SIGMA,
    ) -> "SkilledWorker":
        accuracy = float(
            np.clip(rng.normal(mean_accuracy, accuracy_std), 0.5, 1.0)
        )
        return cls(accuracy=accuracy, unary_sigma=unary_sigma)


class DifficultyAwareWorker(Worker):
    """Accuracy grows with the latent gap between the compared tuples.

    Humans distinguish a large square from a tiny one with near-perfect
    reliability but flip coins on near-ties. The correctness probability
    for a pair with latent values ``a``, ``b`` is

    .. math::  p = 1 - 0.5 · \\exp(-|a - b| / (s · range))

    where ``s`` (``easiness_scale``) controls how quickly questions
    become easy. Unary answers use the same Gaussian model as
    :class:`BernoulliWorker`.
    """

    def __init__(
        self,
        easiness_scale: float = 0.1,
        unary_sigma: float = DEFAULT_UNARY_SIGMA,
    ):
        if easiness_scale <= 0:
            raise CrowdPlatformError("easiness_scale must be positive")
        self.easiness_scale = easiness_scale
        self.unary_sigma = unary_sigma

    def _accuracy_for(self, question, oracle) -> float:
        gap = abs(
            oracle.unary_truth(
                UnaryQuestion(question.left, question.attribute)
            )
            - oracle.unary_truth(
                UnaryQuestion(question.right, question.attribute)
            )
        )
        spread = oracle.value_range(question.attribute)
        return 1.0 - 0.5 * float(
            np.exp(-gap / (self.easiness_scale * spread))
        )

    def answer_pairwise(self, question, oracle, rng):
        truth = oracle.pairwise_truth(question)
        if rng.random() < self._accuracy_for(question, oracle):
            return truth
        if truth is Preference.EQUAL:
            return Preference.LEFT if rng.random() < 0.5 else Preference.RIGHT
        return truth.opposite()

    def answer_unary(self, question, oracle, rng):
        truth = oracle.unary_truth(question)
        sigma = self.unary_sigma * oracle.value_range(question.attribute)
        return truth + float(rng.normal(0.0, sigma))


class SpammerWorker(Worker):
    """Answers uniformly at random — models unfiltered AMT spam.

    Also the crew behind :class:`repro.crowd.faults.FaultPlan` spam
    bursts; pass the plan's generator as ``rng`` to keep burst answers
    off the honest randomness stream."""

    def answer_pairwise(self, question, oracle, rng):
        choices = (Preference.LEFT, Preference.RIGHT, Preference.EQUAL)
        return choices[int(rng.integers(0, 3))]

    def answer_unary(self, question, oracle, rng):
        return float(rng.random()) * oracle.value_range(question.attribute)

    def answer_multiway(self, question, oracle, rng):
        index = int(rng.integers(0, len(question.candidates)))
        return question.candidates[index]


class WorkerPool:
    """A pool from which worker assignments are drawn per question.

    The default pool is homogeneous Bernoulli workers (the paper's
    simulation). Mixed pools (skilled + spammers) support the failure-
    injection tests and the Masters-qualification ablation.
    """

    def __init__(self, workers: Sequence[Worker]):
        if not workers:
            raise CrowdPlatformError("worker pool must not be empty")
        self._workers: List[Worker] = list(workers)
        #: Construction recipe when the pool came from a deterministic
        #: classmethod (``perfect``/``uniform``) — lets a journal header
        #: record how to rebuild the pool on resume. ``None`` for hand-
        #: built or RNG-dependent (``mixed``) pools, which a resume must
        #: supply explicitly.
        self.spec: Optional[Dict[str, Any]] = None

    @classmethod
    def uniform(
        cls,
        size: int = 100,
        accuracy: float = DEFAULT_ACCURACY,
        unary_sigma: float = DEFAULT_UNARY_SIGMA,
        error_equal_fraction: float = 0.5,
    ) -> "WorkerPool":
        """A homogeneous pool of Bernoulli workers."""
        worker = BernoulliWorker(
            accuracy=accuracy,
            unary_sigma=unary_sigma,
            error_equal_fraction=error_equal_fraction,
        )
        pool = cls([worker] * size)
        pool.spec = {
            "kind": "uniform",
            "size": size,
            "accuracy": accuracy,
            "unary_sigma": unary_sigma,
            "error_equal_fraction": error_equal_fraction,
        }
        return pool

    @classmethod
    def perfect(cls) -> "WorkerPool":
        """A pool that always answers correctly (§3/§4 assumption)."""
        pool = cls([PerfectWorker()])
        pool.spec = {"kind": "perfect"}
        return pool

    @classmethod
    def from_spec(cls, spec: Dict[str, Any]) -> "WorkerPool":
        """Rebuild a pool from a :attr:`spec` recipe (journal resume)."""
        kind = spec.get("kind")
        if kind == "perfect":
            return cls.perfect()
        if kind == "uniform":
            return cls.uniform(
                size=spec["size"],
                accuracy=spec["accuracy"],
                unary_sigma=spec["unary_sigma"],
                error_equal_fraction=spec["error_equal_fraction"],
            )
        raise CrowdPlatformError(
            f"cannot rebuild a worker pool from spec kind {kind!r}"
        )

    @classmethod
    def mixed(
        cls,
        rng: np.random.Generator,
        size: int = 100,
        spammer_fraction: float = 0.0,
        mean_accuracy: float = DEFAULT_ACCURACY,
        accuracy_std: float = 0.1,
    ) -> "WorkerPool":
        """Skilled workers with an optional fraction of spammers."""
        num_spammers = int(round(size * spammer_fraction))
        workers: List[Worker] = [SpammerWorker()] * num_spammers
        workers += [
            SkilledWorker.hire(rng, mean_accuracy, accuracy_std)
            for _ in range(size - num_spammers)
        ]
        return cls(workers)

    def __len__(self) -> int:
        return len(self._workers)

    def draw(
        self, rng: np.random.Generator, count: int
    ) -> List[Worker]:
        """Draw ``count`` workers (with replacement, as on AMT where the
        same worker may take several HITs of a batch)."""
        if count <= 0:
            raise CrowdPlatformError("must assign at least one worker")
        indices = rng.integers(0, len(self._workers), size=count)
        return [self._workers[int(i)] for i in indices]

"""Static and dynamic majority voting (paper §5).

Because workers make mistakes, each question is assigned ``ω`` workers and
the final answer decided by majority voting. The paper's contribution is
*dynamic* voting: a query-dependent assignment where question importance —
measured by ``freq(u, v)``, the number of tuples dominated by both ``u``
and ``v`` in ``AK`` — modulates the worker count:

.. math::
   ω' = \\begin{cases}
     ω - 2 & freq(u, v) < α \\\\
     ω     & α ≤ freq(u, v) < β \\\\
     ω + 2 & freq(u, v) ≥ β
   \\end{cases}

§6.1 tunes ``α``/``β`` so that roughly the top 30% of questions receive
``ω + 2`` and the bottom 30% receive ``ω − 2`` — keeping the total number
of worker assignments comparable to static voting. Since ``freq`` depends
only on machine-known values, we derive the thresholds from the 30th/70th
percentiles of the co-domination counts of all candidate pairs
(:meth:`repro.skyline.dominating.FrequencyOracle.quantiles`).
"""

from __future__ import annotations

import abc
from collections import Counter
from typing import Iterable

from repro.crowd.questions import PairwiseQuestion, Preference
from repro.exceptions import CrowdPlatformError
from repro.skyline.dominating import FrequencyOracle

#: Default workers per question (paper: ω = 5).
DEFAULT_OMEGA = 5


def majority_vote(votes: Iterable[Preference]) -> Preference:
    """Aggregate ternary votes by plurality.

    A strict LEFT/RIGHT tie resolves to ``EQUAL`` — the symmetric choice,
    and the only one that does not bias the pair order.
    """
    counts = Counter(votes)
    if not counts:
        raise CrowdPlatformError("cannot aggregate an empty vote set")
    left = counts.get(Preference.LEFT, 0)
    right = counts.get(Preference.RIGHT, 0)
    equal = counts.get(Preference.EQUAL, 0)
    if left > right and left >= equal:
        return Preference.LEFT
    if right > left and right >= equal:
        return Preference.RIGHT
    if equal >= left and equal >= right:
        return Preference.EQUAL
    return Preference.EQUAL  # left == right > equal


class VotingPolicy(abc.ABC):
    """Decides how many workers a pairwise question receives."""

    @abc.abstractmethod
    def workers_for(self, question: PairwiseQuestion) -> int:
        """Number of workers to assign to ``question`` (≥ 1)."""

    def aggregate(self, votes: Iterable[Preference]) -> Preference:
        """Aggregate the collected votes (majority by default)."""
        return majority_vote(votes)


class StaticVoting(VotingPolicy):
    """Every question receives the same ``ω`` workers (paper's baseline)."""

    def __init__(self, omega: int = DEFAULT_OMEGA):
        if omega < 1:
            raise CrowdPlatformError("omega must be at least 1")
        self.omega = omega

    def workers_for(self, question: PairwiseQuestion) -> int:
        return self.omega

    def __repr__(self) -> str:
        return f"StaticVoting(omega={self.omega})"


class DynamicVoting(VotingPolicy):
    """Importance-weighted assignment by ``freq(u, v)`` (paper §5).

    Parameters
    ----------
    frequency:
        The :class:`FrequencyOracle` over the relation's ``AK`` dominance
        matrix.
    omega:
        Base worker count.
    alpha, beta:
        Importance thresholds (``alpha < beta``). Use
        :meth:`from_frequency` to derive them from the data as §6.1 does.
    """

    def __init__(
        self,
        frequency: FrequencyOracle,
        omega: int = DEFAULT_OMEGA,
        alpha: float = 1.0,
        beta: float = 2.0,
    ):
        if omega < 3:
            raise CrowdPlatformError("dynamic voting needs omega >= 3")
        if alpha > beta:
            raise CrowdPlatformError("alpha must not exceed beta")
        self._frequency = frequency
        self.omega = omega
        self.alpha = alpha
        self.beta = beta

    @classmethod
    def from_frequency(
        cls,
        frequency: FrequencyOracle,
        omega: int = DEFAULT_OMEGA,
        low_quantile: float = 0.3,
        high_quantile: float = 0.7,
    ) -> "DynamicVoting":
        """Derive ``α``/``β`` as quantiles of the pair-frequency
        distribution, so ~30% of questions get ``ω+2`` and ~30% get
        ``ω−2`` (the paper's tuning)."""
        alpha, beta = frequency.quantiles([low_quantile, high_quantile])
        return cls(frequency, omega=omega, alpha=alpha, beta=beta)

    def workers_for(self, question: PairwiseQuestion) -> int:
        freq = self._frequency.freq(question.left, question.right)
        if freq < self.alpha:
            return max(1, self.omega - 2)
        if freq < self.beta:
            return self.omega
        return self.omega + 2

    def __repr__(self) -> str:
        return (
            f"DynamicVoting(omega={self.omega}, alpha={self.alpha:.2f}, "
            f"beta={self.beta:.2f})"
        )

"""Simulated crowdsourcing platform (paper §2.1, §5, §6).

This subpackage replaces the paper's Amazon Mechanical Turk deployment
with a faithful simulation:

* :mod:`repro.crowd.questions` — pairwise (ternary) and unary questions,
* :mod:`repro.crowd.oracle` — ground-truth answers from latent values,
* :mod:`repro.crowd.workers` — worker error models (perfect, Bernoulli
  ``p``, per-worker skill, spammer) and the worker pool,
* :mod:`repro.crowd.voting` — static and dynamic majority voting (§5),
* :mod:`repro.crowd.platform` — round-based question execution, HIT
  batching, pricing and statistics (§6.2's cost formula),
* :mod:`repro.crowd.faults` — deterministic fault injection
  (abandonment, HIT expiry, transient errors, spam bursts),
* :mod:`repro.crowd.retry` — retry/backoff policy for re-posting
  questions that failed their round,
* :mod:`repro.crowd.backends` — the transport-agnostic
  :class:`~repro.crowd.backends.CrowdBackend` protocol (simulated /
  replay),
* :mod:`repro.crowd.journal` — the write-ahead vote journal making
  runs crash-resumable (docs/durability.md).
"""

from repro.crowd.backends import (
    CrowdBackend,
    RecordedPosting,
    ReplayBackend,
    SimulatedBackend,
)
from repro.crowd.faults import FaultPlan, FaultStats, HitOutcome
from repro.crowd.journal import (
    JournalWriter,
    RecoveredJournal,
    recover_journal,
    segment_paths,
)
from repro.crowd.hits import Hit, HitLedger
from repro.crowd.latency import LatencyEstimate, estimate_latency
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.platform import CrowdStats, SimulatedCrowd
from repro.crowd.quality import (
    QualityAwareCrowd,
    WorkerQualityTracker,
    weighted_vote,
)
from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)
from repro.crowd.retry import RetryPolicy
from repro.crowd.voting import (
    DynamicVoting,
    StaticVoting,
    VotingPolicy,
    majority_vote,
)
from repro.crowd.workers import (
    BernoulliWorker,
    DifficultyAwareWorker,
    PerfectWorker,
    SkilledWorker,
    SpammerWorker,
    WorkerPool,
)

__all__ = [
    "BernoulliWorker",
    "CrowdBackend",
    "CrowdStats",
    "FaultPlan",
    "FaultStats",
    "Hit",
    "HitLedger",
    "HitOutcome",
    "JournalWriter",
    "LatencyEstimate",
    "RecordedPosting",
    "RecoveredJournal",
    "ReplayBackend",
    "RetryPolicy",
    "MultiwayQuestion",
    "QualityAwareCrowd",
    "WorkerQualityTracker",
    "estimate_latency",
    "weighted_vote",
    "DynamicVoting",
    "GroundTruthOracle",
    "PairwiseQuestion",
    "DifficultyAwareWorker",
    "PerfectWorker",
    "Preference",
    "SimulatedBackend",
    "SimulatedCrowd",
    "SkilledWorker",
    "SpammerWorker",
    "StaticVoting",
    "UnaryQuestion",
    "VotingPolicy",
    "WorkerPool",
    "majority_vote",
    "recover_journal",
    "segment_paths",
]

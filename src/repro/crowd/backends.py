"""Crowd execution backends: simulate, record, replay.

:class:`~repro.crowd.platform.SimulatedCrowd` is split in two. The
*platform* half owns everything answer-agnostic — caching, budget,
retry scheduling, stats, ledger, metrics, trace emission, journaling.
The *backend* half owns how a posted batch actually gets answered:

* :class:`SimulatedBackend` — draws workers from a pool and rolls the
  fault plan, exactly as ``SimulatedCrowd`` always did (the extraction
  preserves RNG draw order, so seeded runs are byte-identical across
  the refactor);
* :class:`ReplayBackend` — serves the outcomes recorded in a
  :mod:`repro.crowd.journal` write-ahead journal, consuming no
  randomness and asking no fresh questions, then (optionally) hands
  over to a live backend once the journal is exhausted — the resume
  path of an interrupted run.

Recording is not a third class: the platform journals whatever a live
backend returns, so every backend is a record backend when a journal
is attached.

A backend returns one *outcome* per posted question; the platform
derives all accounting (assignments, abandonment, degradation,
failures) and re-emits trace events from outcomes, which is what makes
replayed rounds observationally identical to simulated ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple as TupleT

import numpy as np

from repro.crowd.faults import FaultPlan, FaultStats, HitOutcome
from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.voting import VotingPolicy
from repro.crowd.workers import SpammerWorker, WorkerPool
from repro.exceptions import JournalReplayError
from repro.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)

#: Questions batched per HIT in the paper's §6.2 (fault rolls are
#: per-HIT, so the batching is simulation behaviour, not just pricing).
QUESTIONS_PER_HIT = 5

#: ``PairwiseOutcome.status`` values; anything but ``answered`` failed
#: its round and is a candidate for the platform's retry scheduling.
STATUS_ANSWERED = "answered"
STATUS_TIMEOUT = "timeout"
STATUS_TRANSIENT = "transient"
STATUS_ABANDONED = "abandoned"


@dataclass
class PairwiseOutcome:
    """What happened to one posted pairwise question."""

    key: TupleT[int, int, int]
    status: str
    omega: int
    votes: List[Preference] = field(default_factory=list)
    answer: Optional[Preference] = None
    degraded: bool = False
    spam: bool = False


@dataclass
class MultiwayOutcome:
    """One answered m-ary question (multiway rounds never fail)."""

    key: TupleT
    omega: int
    votes: List[int]
    winner: int


@dataclass
class UnaryOutcome:
    """One answered quantitative question."""

    key: TupleT[int, int]
    omega: int
    estimates: List[float]
    value: float


@dataclass
class RecordedPosting:
    """One journaled backend posting, ready to be served by
    :class:`ReplayBackend`.

    ``state`` is the backend snapshot taken when the posting committed;
    serving the posting advances the replay's notion of "current state"
    to it, so a live handover after any prefix resumes from the right
    randomness.
    """

    epoch: int
    format: str
    keys: List[TupleT]
    outcomes: List[Any]
    state: Dict[str, Any]
    retried: int = 0
    omega: Optional[int] = None


def generator_state(rng: np.random.Generator) -> Dict[str, Any]:
    """A JSON-able snapshot of a numpy generator."""
    return rng.bit_generator.state


def restore_generator(
    rng: np.random.Generator, state: Dict[str, Any]
) -> None:
    """Restore a snapshot onto a generator of the same bit-generator
    type."""
    current = rng.bit_generator.state.get("bit_generator")
    recorded = state.get("bit_generator")
    if recorded != current:
        raise JournalReplayError(
            f"journal recorded a {recorded!r} generator but the crowd "
            f"uses {current!r}; pass a matching rng when resuming"
        )
    rng.bit_generator.state = state


class CrowdBackend:
    """Protocol of a crowd execution backend.

    ``pairwise_round`` / ``multiway_round`` / ``unary_round`` answer
    one posted batch each; ``state()`` snapshots whatever the backend
    needs to continue deterministically, and ``restore_state()`` is its
    inverse. ``last_was_replay`` reports whether the most recent
    posting was served from a journal (the platform skips re-journaling
    and re-charging those).
    """

    last_was_replay: bool = False

    def pairwise_round(
        self, posted: List[PairwiseQuestion]
    ) -> List[PairwiseOutcome]:
        raise NotImplementedError

    def multiway_round(
        self, fresh: List[MultiwayQuestion]
    ) -> List[MultiwayOutcome]:
        raise NotImplementedError

    def unary_round(
        self, fresh: List[UnaryQuestion], omega: int
    ) -> List[UnaryOutcome]:
        raise NotImplementedError

    def state(self) -> Dict[str, Any]:
        raise NotImplementedError

    def restore_state(self, state: Dict[str, Any]) -> None:
        raise NotImplementedError

    def fault_stats(self) -> Optional[FaultStats]:
        return None


class SimulatedBackend(CrowdBackend):
    """The classic simulation: pool draws, worker error models, fault
    rolls.

    The loop structure is inherited verbatim from the pre-split
    ``SimulatedCrowd``: every posted question draws its workers and
    votes from the main generator *before* fault outcomes are applied,
    so a zero-rate fault plan leaves the answer stream byte-identical
    to a plan-free run, and expired/transient questions keep the
    decision sequences of later questions aligned.
    """

    def __init__(
        self,
        oracle: GroundTruthOracle,
        pool: WorkerPool,
        voting: VotingPolicy,
        rng: np.random.Generator,
        faults: Optional[FaultPlan] = None,
    ):
        self._oracle = oracle
        self._pool = pool
        self._voting = voting
        self._rng = rng
        self._faults = faults

    def fault_stats(self) -> Optional[FaultStats]:
        return self._faults.stats if self._faults is not None else None

    def pairwise_round(
        self, posted: List[PairwiseQuestion]
    ) -> List[PairwiseOutcome]:
        plan = self._faults
        spammer = SpammerWorker()
        outcomes: List[PairwiseOutcome] = []
        for start in range(0, len(posted), QUESTIONS_PER_HIT):
            hit_questions = posted[start:start + QUESTIONS_PER_HIT]
            outcome = (
                plan.roll_hit() if plan is not None else HitOutcome.OK
            )
            for question in hit_questions:
                key = question.key()
                omega = self._voting.workers_for(question)
                workers = self._pool.draw(self._rng, omega)
                votes = [
                    worker.answer_pairwise(
                        question, self._oracle, self._rng
                    )
                    for worker in workers
                ]
                if outcome is HitOutcome.EXPIRED:
                    plan.stats.failed_questions += 1
                    outcomes.append(
                        PairwiseOutcome(key, STATUS_TIMEOUT, omega)
                    )
                    continue
                if plan is not None and plan.roll_transient():
                    plan.stats.failed_questions += 1
                    outcomes.append(
                        PairwiseOutcome(key, STATUS_TRANSIENT, omega)
                    )
                    continue
                if outcome is HitOutcome.SPAM:
                    votes = [
                        spammer.answer_pairwise(
                            question, self._oracle, plan.rng
                        )
                        for _ in range(omega)
                    ]
                    outcomes.append(
                        PairwiseOutcome(
                            key,
                            STATUS_ANSWERED,
                            omega,
                            votes=votes,
                            answer=self._voting.aggregate(votes),
                            degraded=True,
                            spam=True,
                        )
                    )
                    continue
                if plan is not None and plan.abandonment_rate > 0.0:
                    votes = [
                        vote
                        for vote in votes
                        if not plan.roll_abandonment()
                    ]
                if not votes:
                    plan.stats.failed_questions += 1
                    outcomes.append(
                        PairwiseOutcome(key, STATUS_ABANDONED, omega)
                    )
                    continue
                outcomes.append(
                    PairwiseOutcome(
                        key,
                        STATUS_ANSWERED,
                        omega,
                        votes=votes,
                        answer=self._voting.aggregate(votes),
                        degraded=len(votes) < omega,
                    )
                )
        return outcomes

    def multiway_round(
        self, fresh: List[MultiwayQuestion]
    ) -> List[MultiwayOutcome]:
        outcomes: List[MultiwayOutcome] = []
        for question in fresh:
            omega = self._voting.workers_for(
                PairwiseQuestion(
                    question.candidates[0],
                    question.candidates[1],
                    question.attribute,
                )
            )
            workers = self._pool.draw(self._rng, omega)
            votes = [
                worker.answer_multiway(question, self._oracle, self._rng)
                for worker in workers
            ]
            counts: Dict[int, int] = {}
            for vote in votes:
                counts[vote] = counts.get(vote, 0) + 1
            winner = min(
                counts,
                key=lambda candidate: (-counts[candidate], candidate),
            )
            outcomes.append(
                MultiwayOutcome(
                    question.key(), omega, [int(v) for v in votes], winner
                )
            )
        return outcomes

    def unary_round(
        self, fresh: List[UnaryQuestion], omega: int
    ) -> List[UnaryOutcome]:
        outcomes: List[UnaryOutcome] = []
        for question in fresh:
            workers = self._pool.draw(self._rng, omega)
            estimates = [
                worker.answer_unary(question, self._oracle, self._rng)
                for worker in workers
            ]
            value = float(np.mean(estimates))
            outcomes.append(
                UnaryOutcome(
                    (question.tuple_index, question.attribute),
                    omega,
                    [float(e) for e in estimates],
                    value,
                )
            )
        return outcomes

    def state(self) -> Dict[str, Any]:
        snapshot: Dict[str, Any] = {"rng": generator_state(self._rng)}
        if self._faults is not None:
            snapshot["fault_rng"] = generator_state(self._faults.rng)
            snapshot["fault_stats"] = self._faults.stats.as_dict()
        return snapshot

    def restore_state(self, state: Dict[str, Any]) -> None:
        restore_generator(self._rng, state["rng"])
        if self._faults is not None and state.get("fault_rng") is not None:
            restore_generator(self._faults.rng, state["fault_rng"])
        recorded = state.get("fault_stats")
        if self._faults is not None and recorded is not None:
            stats = self._faults.stats
            for name, value in recorded.items():
                setattr(stats, name, int(value))


class ReplayBackend(CrowdBackend):
    """Serves journaled postings in order; zero randomness, zero cost.

    Each ``*_round`` call must match the next recorded posting (format
    and question keys) — a mismatch means the caller diverged from the
    journaled execution and raises
    :class:`~repro.exceptions.JournalReplayError`. After the last
    recorded posting, calls hand over to ``live`` (restored to the
    journal's final state) or, in pure-replay mode (``live=None``),
    raise — which is how tests prove a full replay asks nothing fresh.
    """

    def __init__(
        self,
        postings: List[RecordedPosting],
        initial_state: Optional[Dict[str, Any]],
        live: Optional[CrowdBackend] = None,
    ):
        self._postings = postings
        self._index = 0
        self._state = initial_state
        self._live = live
        self._switched = False
        # True whenever the run is in its replay phase (so the platform
        # suppresses journaling from the very first budget check).
        self.last_was_replay = bool(postings)

    @property
    def remaining(self) -> int:
        """Recorded postings not yet served."""
        return len(self._postings) - self._index

    @property
    def replayed(self) -> int:
        """Recorded postings served so far."""
        return self._index

    def _next(self, format: str, keys: List[TupleT]) -> RecordedPosting:
        posting = self._postings[self._index]
        if posting.format != format or posting.keys != list(keys):
            raise JournalReplayError(
                f"replay diverged at epoch {posting.epoch}: journal has "
                f"a {posting.format} posting of {len(posting.keys)} "
                f"question(s), the run asked a {format} posting of "
                f"{len(keys)}; the journal belongs to a different "
                "(config, seed, dataset) than the resumed run"
            )
        self._index += 1
        self._state = posting.state
        self.last_was_replay = True
        return posting

    def _go_live(self) -> CrowdBackend:
        if self._live is None:
            raise JournalReplayError(
                "journal exhausted in pure-replay mode: the run asked a "
                "question beyond the recorded postings"
            )
        if not self._switched:
            if self._state is not None:
                self._live.restore_state(self._state)
            self._switched = True
        self.last_was_replay = False
        return self._live

    def pairwise_round(
        self, posted: List[PairwiseQuestion]
    ) -> List[PairwiseOutcome]:
        if self._index < len(self._postings):
            return self._next(
                "pairwise", [q.key() for q in posted]
            ).outcomes
        return self._go_live().pairwise_round(posted)

    def multiway_round(
        self, fresh: List[MultiwayQuestion]
    ) -> List[MultiwayOutcome]:
        if self._index < len(self._postings):
            return self._next(
                "multiway", [q.key() for q in fresh]
            ).outcomes
        return self._go_live().multiway_round(fresh)

    def unary_round(
        self, fresh: List[UnaryQuestion], omega: int
    ) -> List[UnaryOutcome]:
        if self._index < len(self._postings):
            return self._next(
                "unary",
                [(q.tuple_index, q.attribute) for q in fresh],
            ).outcomes
        return self._go_live().unary_round(fresh, omega)

    def state(self) -> Dict[str, Any]:
        if self._switched:
            return self._live.state()
        return dict(self._state) if self._state is not None else {}

    def restore_state(self, state: Dict[str, Any]) -> None:
        self._state = state

    def fault_stats(self) -> Optional[FaultStats]:
        if self._switched:
            return self._live.fault_stats()
        recorded = (self._state or {}).get("fault_stats")
        if recorded is None:
            return None
        return FaultStats(**{k: int(v) for k, v in recorded.items()})

"""Worker-quality estimation and weighted voting (the [11] CDAS line).

§2.1 classifies accuracy work into query-independent methods that model
"the proficiency of workers and the difficulty of questions" — e.g. CDAS
(Liu et al., VLDB 2012, the paper's [11]). This module implements the
standard gold-question recipe on top of the simulated platform:

1. every pairwise micro-task carries a small probability of being a
   *gold* question whose answer the requester already knows,
2. each worker's accuracy is estimated from their gold answers with a
   Beta prior (Laplace-smoothed),
3. aggregation weighs each vote by the log-odds of the worker's
   estimated accuracy — the Bayes-optimal combination for independent
   workers — instead of counting heads.

Weighted voting is query-independent: it improves every answer equally.
The paper's dynamic voting (§5) is the complementary query-*dependent*
lever; the two compose (dynamic chooses how many workers, quality
weighing decides how to combine them).
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Optional, Sequence, Tuple as TupleT

import numpy as np

from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.questions import PairwiseQuestion, Preference
from repro.crowd.workers import Worker, WorkerPool
from repro.exceptions import CrowdPlatformError


class WorkerQualityTracker:
    """Per-worker accuracy estimates from gold-question outcomes.

    Workers are tracked by their pool index. A Beta(α, β) prior (default
    Beta(4, 1): mildly optimistic, matching typical qualification
    screens) shrinks early estimates toward the prior mean.
    """

    def __init__(self, prior_correct: float = 4.0, prior_wrong: float = 1.0):
        if prior_correct <= 0 or prior_wrong <= 0:
            raise CrowdPlatformError("Beta prior parameters must be positive")
        self._prior_correct = prior_correct
        self._prior_wrong = prior_wrong
        self._correct: Dict[int, int] = {}
        self._wrong: Dict[int, int] = {}

    def record(self, worker_id: int, correct: bool) -> None:
        """Account one gold-question outcome."""
        bucket = self._correct if correct else self._wrong
        bucket[worker_id] = bucket.get(worker_id, 0) + 1

    def accuracy(self, worker_id: int) -> float:
        """Posterior-mean accuracy estimate of a worker."""
        correct = self._correct.get(worker_id, 0) + self._prior_correct
        wrong = self._wrong.get(worker_id, 0) + self._prior_wrong
        return correct / (correct + wrong)

    def observations(self, worker_id: int) -> int:
        """Gold questions this worker has answered."""
        return self._correct.get(worker_id, 0) + self._wrong.get(
            worker_id, 0
        )

    def weight(self, worker_id: int) -> float:
        """Log-odds vote weight, clipped away from infinities."""
        accuracy = min(max(self.accuracy(worker_id), 0.05), 0.95)
        return math.log(accuracy / (1.0 - accuracy))


def weighted_vote(
    votes: Sequence[TupleT[int, Preference]],
    tracker: WorkerQualityTracker,
) -> Preference:
    """Aggregate ``(worker_id, answer)`` votes by estimated reliability.

    Each answer's bucket accumulates the worker's log-odds weight; the
    heaviest bucket wins (LEFT/RIGHT ties resolve to EQUAL, as in the
    unweighted majority)."""
    if not votes:
        raise CrowdPlatformError("cannot aggregate an empty vote set")
    weights: Dict[Preference, float] = {
        Preference.LEFT: 0.0,
        Preference.RIGHT: 0.0,
        Preference.EQUAL: 0.0,
    }
    for worker_id, answer in votes:
        weights[answer] += tracker.weight(worker_id)
    left = weights[Preference.LEFT]
    right = weights[Preference.RIGHT]
    equal = weights[Preference.EQUAL]
    if left > right and left >= equal:
        return Preference.LEFT
    if right > left and right >= equal:
        return Preference.RIGHT
    return Preference.EQUAL


class QualityAwareCrowd:
    """A thin quality layer over a worker pool.

    Simulates the gold-question pipeline end to end: for each real
    question, ``omega`` identified workers answer; with probability
    ``gold_rate`` each worker is *also* served a gold question (whose
    truth is known) that updates their accuracy estimate; the real
    answers are then combined by reliability-weighted voting.

    This is intentionally independent of :class:`SimulatedCrowd` — it
    demonstrates/validates the [11] technique in isolation; the tests
    compare it against unweighted majority under spammer-heavy pools.
    """

    def __init__(
        self,
        oracle: GroundTruthOracle,
        pool: WorkerPool,
        gold_questions: Sequence[PairwiseQuestion],
        omega: int = 5,
        gold_rate: float = 0.2,
        rng: Optional[np.random.Generator] = None,
        seed: Optional[int] = None,
    ):
        if not gold_questions:
            raise CrowdPlatformError("need at least one gold question")
        if not 0.0 <= gold_rate <= 1.0:
            raise CrowdPlatformError("gold_rate must be within [0, 1]")
        if rng is not None and seed is not None:
            raise CrowdPlatformError("pass either seed or rng, not both")
        self._oracle = oracle
        self._pool = pool
        self._gold = list(gold_questions)
        self._omega = omega
        self._gold_rate = gold_rate
        self._rng = rng if rng is not None else np.random.default_rng(seed)
        self.tracker = WorkerQualityTracker()
        self.gold_served = 0

    def _workers(self) -> List[TupleT[int, Worker]]:
        ids = self._rng.integers(0, len(self._pool), size=self._omega)
        return [(int(i), self._pool._workers[int(i)]) for i in ids]

    def calibrate(self, rounds: int) -> None:
        """Serve gold questions only, warming up the tracker."""
        for _ in range(rounds):
            for worker_id, worker in self._workers():
                self._serve_gold(worker_id, worker)

    def _serve_gold(self, worker_id: int, worker: Worker) -> None:
        gold = self._gold[int(self._rng.integers(0, len(self._gold)))]
        answer = worker.answer_pairwise(gold, self._oracle, self._rng)
        truth = self._oracle.pairwise_truth(gold)
        self.tracker.record(worker_id, answer is truth)
        self.gold_served += 1

    def ask(self, question: PairwiseQuestion) -> Preference:
        """Answer one real question with reliability-weighted voting."""
        votes: List[TupleT[int, Preference]] = []
        for worker_id, worker in self._workers():
            if self._rng.random() < self._gold_rate:
                self._serve_gold(worker_id, worker)
            votes.append(
                (worker_id,
                 worker.answer_pairwise(question, self._oracle, self._rng))
            )
        return weighted_vote(votes, self.tracker)

    def ask_majority(self, question: PairwiseQuestion) -> Preference:
        """Same workers, plain (unweighted) majority — the control."""
        answers = [
            worker.answer_pairwise(question, self._oracle, self._rng)
            for _, worker in self._workers()
        ]
        counts = Counter(answers)
        left = counts.get(Preference.LEFT, 0)
        right = counts.get(Preference.RIGHT, 0)
        equal = counts.get(Preference.EQUAL, 0)
        if left > right and left >= equal:
            return Preference.LEFT
        if right > left and right >= equal:
            return Preference.RIGHT
        return Preference.EQUAL

"""Ground-truth oracle over the latent crowd values.

Simulated workers do not see the latent matrix directly; they consult the
oracle for the *true* answer and then distort it according to their error
model. Algorithms must never touch this module — it exists purely on the
crowd side of the machine/crowd boundary (paper Figure "machine part vs
crowd part").
"""

from __future__ import annotations

import numpy as np

from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    Preference,
    UnaryQuestion,
)
from repro.data.relation import Relation


class GroundTruthOracle:
    """Answers questions truthfully from a relation's latent values."""

    def __init__(self, relation: Relation):
        self._latent = relation.latent_matrix()

    def multiway_truth(self, question: MultiwayQuestion) -> int:
        """The most preferred candidate (ties broken by lowest index)."""
        values = self._latent[list(question.candidates), question.attribute]
        best = int(np.argmin(values))
        return question.candidates[best]

    def pairwise_truth(self, question: PairwiseQuestion) -> Preference:
        """The correct ternary answer (smaller latent value preferred)."""
        left = self._latent[question.left, question.attribute]
        right = self._latent[question.right, question.attribute]
        if left < right:
            return Preference.LEFT
        if right < left:
            return Preference.RIGHT
        return Preference.EQUAL

    def unary_truth(self, question: UnaryQuestion) -> float:
        """The true latent value of a tuple (smaller preferred)."""
        return float(self._latent[question.tuple_index, question.attribute])

    def value_range(self, attribute: int) -> float:
        """Spread of the latent values on one attribute.

        Worker noise for unary questions scales with this range so the
        simulation behaves sensibly for arbitrary units.
        """
        column = self._latent[:, attribute]
        spread = float(np.max(column) - np.min(column))
        return spread if spread > 0 else 1.0

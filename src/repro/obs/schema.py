"""The trace event schema and its validator.

Every record a :class:`~repro.obs.tracer.Tracer` emits has the shape::

    {"ts": int >= 0, "kind": "event" | "span_start" | "span_end",
     "name": str, "span": int | None, "parent": int | None,
     "attrs": {...}}

with ``ts`` non-decreasing across the trace and span start/end records
properly paired. :data:`EVENT_ATTRS` fixes the required attributes of
every known event name (see ``docs/observability.md`` for prose); the
validator checks structure always and attribute types for known names.

Use :func:`validate_events` on in-memory records,
:func:`validate_jsonl` on a persisted trace, and
:func:`check_metrics_consistency` to cross-check a trace against a
Prometheus dump of the same run (per-round question counts must sum to
the ``crowdsky_questions_asked_total`` counter).
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Tuple

from repro.exceptions import TraceSchemaError
from repro.obs import metrics as metric_names
from repro.obs.exporters import read_trace_jsonl

#: Schema version persisted in docs; bump when the shape changes.
TRACE_SCHEMA_VERSION = 1

KINDS = frozenset({"event", "span_start", "span_end"})

#: Required attributes (name -> type or tuple of accepted types) per
#: known event name. Unknown names pass structural validation only.
EVENT_ATTRS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    "crowd.round": {
        "round": (int,),
        "questions": (int,),
        "assignments": (int,),
        "retried": (int,),
        "format": (str,),
    },
    # A posting merged into the immediately preceding round (mixed
    # pairwise+multiway batches cost one latency round): counts toward
    # question totals but not the round count.
    "crowd.round_merged": {
        "round": (int,),
        "questions": (int,),
        "assignments": (int,),
        "retried": (int,),
        "format": (str,),
    },
    # A sweep cell served from the result cache; the crowd work it
    # skipped is deliberately absent from the trace and metrics.
    "sweep.cached": {"id": (str,), "seed": (int,)},
    "crowd.batch": {
        "requested": (int,),
        "fresh": (int,),
        "cached": (int,),
        "format": (str,),
    },
    "crowd.vote": {"question": (list,), "vote": (str, int)},
    "crowd.estimate": {"question": (list,), "value": (int, float)},
    "crowd.fault": {"question": (list,), "fault": (str,)},
    "crowd.retry": {
        "question": (list,),
        "attempt": (int,),
        "backoff": (int,),
    },
    "crowd.unresolved": {"question": (list,), "reason": (str,)},
    "crowd.budget": {
        "budget": (int,),
        "spent": (int,),
        "requested": (int,),
        "strict": (bool,),
    },
    # A corrupted journal was cut back to its longest valid prefix
    # (torn tail, checksum mismatch, epoch violation, dead segment).
    "journal.recovered": {
        "epochs": (int,),
        "records": (int,),
        "dropped": (int,),
        "reason": (str,),
    },
    # An interrupted run was resumed from its journal: ``replayed``
    # recorded postings were served before going live.
    "run.resumed": {"algorithm": (str,), "replayed": (int,)},
    "engine.batch": {
        "pairs": (int,),
        "multiway": (int,),
        "questions": (int,),
    },
    "engine.tuple": {"t": (int,), "outcome": (str,)},
    "engine.visible_seed": {"edges": (int,)},
    # One closure transaction committed a round's verdicts into the
    # preference graphs (emitted right after its pref.apply_verdicts
    # span closes).
    "pref.batch": {
        "verdicts": (int,),
        "accepted": (int,),
        "backend": (str,),
    },
}


def known_event_names() -> frozenset:
    """The registered event names (the keys of :data:`EVENT_ATTRS`)."""
    return frozenset(EVENT_ATTRS)


def assert_known(name: str) -> None:
    """Raise :class:`TraceSchemaError` unless ``name`` is registered.

    The runtime twin of the static obs-schema rule (RA005): the linter
    checks every *literal* event name at its emission site, and strict
    mode (``REPRO_OBS_STRICT=1``, see
    :class:`~repro.obs.tracer.Tracer`) routes every *dynamic* name
    through this check as it is emitted. Span names are free-form and
    never checked.
    """
    if name not in EVENT_ATTRS:
        raise TraceSchemaError(
            f"unregistered trace event {name!r}; register it in "
            "repro.obs.schema.EVENT_ATTRS or fix the emitter "
            "(see docs/static-analysis.md, rule RA005)"
        )


def validate_events(
    events: List[Dict[str, Any]], strict_names: bool = False
) -> List[str]:
    """Check a trace against the schema; returns a list of problems
    (empty when valid).

    ``strict_names`` additionally rejects event names outside
    :data:`EVENT_ATTRS` (span names are free-form either way).
    """
    errors: List[str] = []
    open_spans: Dict[int, str] = {}
    last_ts = None
    for index, event in enumerate(events):
        where = f"event {index}"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        missing = {"ts", "kind", "name", "span", "attrs"} - set(event)
        if missing:
            errors.append(f"{where}: missing keys {sorted(missing)}")
            continue
        ts, kind, name = event["ts"], event["kind"], event["name"]
        span, attrs = event["span"], event["attrs"]
        if not isinstance(ts, int) or isinstance(ts, bool) or ts < 0:
            errors.append(f"{where}: ts must be a non-negative integer")
            continue
        if last_ts is not None and ts < last_ts:
            errors.append(f"{where}: ts went backwards ({ts} < {last_ts})")
        last_ts = ts
        if kind not in KINDS:
            errors.append(f"{where}: unknown kind {kind!r}")
            continue
        if not isinstance(name, str) or not name:
            errors.append(f"{where}: name must be a non-empty string")
            continue
        if not isinstance(attrs, dict):
            errors.append(f"{where}: attrs must be an object")
            continue

        if kind == "span_start":
            if not isinstance(span, int):
                errors.append(f"{where}: span_start needs an integer span id")
            elif span in open_spans:
                errors.append(f"{where}: span {span} started twice")
            else:
                open_spans[span] = name
        elif kind == "span_end":
            if span not in open_spans:
                errors.append(
                    f"{where}: span_end for unknown/closed span {span!r}"
                )
            elif open_spans[span] != name:
                errors.append(
                    f"{where}: span {span} ends as {name!r} but started "
                    f"as {open_spans[span]!r}"
                )
                del open_spans[span]
            else:
                del open_spans[span]
        else:  # plain event
            if span is not None and span not in open_spans:
                errors.append(
                    f"{where}: event references non-open span {span!r}"
                )
            required = EVENT_ATTRS.get(name)
            if required is None:
                if strict_names:
                    errors.append(f"{where}: unknown event name {name!r}")
                continue
            for attr, types in required.items():
                if attr not in attrs:
                    errors.append(
                        f"{where}: {name} missing attr {attr!r}"
                    )
                    continue
                value = attrs[attr]
                # bool is an int subclass; only accept it where declared.
                if isinstance(value, bool) and bool not in types:
                    errors.append(
                        f"{where}: {name}.{attr} must be "
                        f"{'/'.join(t.__name__ for t in types)}, got bool"
                    )
                elif not isinstance(value, types):
                    errors.append(
                        f"{where}: {name}.{attr} must be "
                        f"{'/'.join(t.__name__ for t in types)}, "
                        f"got {type(value).__name__}"
                    )
    for span, name in open_spans.items():
        errors.append(f"span {span} ({name!r}) never ended")
    return errors


def validate_jsonl(path: str, strict_names: bool = False) -> List[str]:
    """Validate a persisted JSONL trace; returns the problem list."""
    return validate_events(read_trace_jsonl(path), strict_names)


def trace_totals(events: List[Dict[str, Any]]) -> Dict[str, int]:
    """Headline totals recomputed from ``crowd.round`` events.

    ``crowd.round_merged`` postings share their predecessor's latency
    round, so they add questions but not rounds.
    """
    rounds = [e for e in events if e.get("name") == "crowd.round"]
    postings = rounds + [
        e for e in events if e.get("name") == "crowd.round_merged"
    ]
    return {
        "rounds": len(rounds),
        "questions": sum(
            e.get("attrs", {}).get("questions", 0) for e in postings
        ),
        "retried": sum(
            e.get("attrs", {}).get("retried", 0) for e in postings
        ),
    }


def check_metrics_consistency(
    events: List[Dict[str, Any]], values: Mapping[str, float]
) -> List[str]:
    """Cross-check a trace against a metrics dump of the same run.

    The per-round question counts and round count in the trace must sum
    exactly to the exported ``crowdsky_questions_asked_total`` /
    ``crowdsky_rounds_total`` counters.
    """
    totals = trace_totals(events)
    errors: List[str] = []
    for key, metric in (
        ("questions", metric_names.QUESTIONS_ASKED),
        ("rounds", metric_names.ROUNDS),
    ):
        exported = values.get(metric)
        if exported is None:
            # A fully cache-served sweep asks the crowd nothing: the
            # counter never registers and the trace total is 0.
            if totals[key]:
                errors.append(f"metrics dump is missing {metric}")
        elif int(exported) != totals[key]:
            errors.append(
                f"trace {key} total {totals[key]} != exported "
                f"{metric} {int(exported)}"
            )
    return errors


def require_valid(events: List[Dict[str, Any]]) -> None:
    """Raise :class:`TraceSchemaError` listing every problem found."""
    errors = validate_events(events)
    if errors:
        raise TraceSchemaError("; ".join(errors))

"""Stdlib logging for the ``repro.*`` namespace.

The library logs under the ``repro`` logger hierarchy and, library-style,
never configures handlers on import — a :class:`logging.NullHandler`
keeps it silent until an application opts in. Call
:func:`configure_logging` (the CLI does) to attach a stderr handler; the
level defaults to the ``REPRO_LOG_LEVEL`` environment variable
(``DEBUG`` / ``INFO`` / ``WARNING`` / ``ERROR`` / ``CRITICAL`` or a
number), falling back to ``WARNING``.

Usage::

    from repro.obs.logging import get_logger
    log = get_logger(__name__)          # -> logger "repro.crowd.platform"
    log.debug("round %d: %d questions", round_number, n)
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional, TextIO

#: Root of the library's logger namespace.
ROOT_LOGGER = "repro"

#: Environment variable consulted for the default level.
LEVEL_ENV_VAR = "REPRO_LOG_LEVEL"

#: Format used by :func:`configure_logging`.
LOG_FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

logging.getLogger(ROOT_LOGGER).addHandler(logging.NullHandler())


def get_logger(name: str = "") -> logging.Logger:
    """A logger inside the ``repro.*`` namespace.

    Accepts a bare suffix (``"crowd"``), a module ``__name__`` that
    already starts with ``repro`` (used as-is), or ``""`` for the root
    library logger.
    """
    if not name:
        return logging.getLogger(ROOT_LOGGER)
    if name == ROOT_LOGGER or name.startswith(ROOT_LOGGER + "."):
        return logging.getLogger(name)
    return logging.getLogger(f"{ROOT_LOGGER}.{name}")


def level_from_env(default: int = logging.WARNING) -> int:
    """Resolve ``REPRO_LOG_LEVEL`` to a numeric level."""
    raw = os.environ.get(LEVEL_ENV_VAR, "").strip()
    if not raw:
        return default
    if raw.isdigit():
        return int(raw)
    resolved = logging.getLevelName(raw.upper())
    if isinstance(resolved, int):
        return resolved
    return default


def configure_logging(
    level: Optional[int] = None,
    stream: Optional[TextIO] = None,
    force: bool = False,
) -> logging.Logger:
    """Attach a stream handler to the ``repro`` logger (idempotent).

    Parameters
    ----------
    level:
        Numeric level; defaults to :func:`level_from_env`.
    stream:
        Destination (default ``sys.stderr``).
    force:
        Replace previously attached stream handlers instead of keeping
        the first configuration.
    """
    logger = logging.getLogger(ROOT_LOGGER)
    logger.setLevel(level if level is not None else level_from_env())
    existing = [
        handler for handler in logger.handlers
        if isinstance(handler, logging.StreamHandler)
        and not isinstance(handler, logging.NullHandler)
    ]
    if existing and not force:
        return logger
    for handler in existing:
        logger.removeHandler(handler)
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(logging.Formatter(LOG_FORMAT))
    logger.addHandler(handler)
    logger.propagate = False
    return logger

"""Trace and metrics exporters.

Three output formats:

* **JSONL traces** — one event record per line
  (:func:`write_trace_jsonl` / :func:`read_trace_jsonl`), the archival
  format every ``--trace`` run persists,
* **human-readable summaries** — :func:`summarize_trace` renders the
  span tree with durations plus headline counts (``crowdsky trace
  summarize``),
* **Prometheus text** — :func:`write_metrics_prometheus` dumps a
  :class:`~repro.obs.metrics.MetricsRegistry`;
  :func:`parse_prometheus_text` reads the dump back for cross-checking
  traces against counters.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

from repro.exceptions import TraceSchemaError
from repro.io.atomic import atomic_write_text
from repro.obs.metrics import MetricsRegistry


def write_trace_jsonl(events: Iterable[Dict[str, Any]], path: str) -> int:
    """Write event records as JSON Lines; returns the number written.

    The file is replaced atomically, so a crash mid-export leaves any
    previous trace intact rather than a torn half-written one.
    """
    lines = [
        json.dumps(event, separators=(",", ":")) for event in events
    ]
    atomic_write_text(path, "".join(line + "\n" for line in lines))
    return len(lines)


def read_trace_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace; raises :class:`TraceSchemaError` on non-JSON
    lines (blank lines are tolerated)."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError as error:
                raise TraceSchemaError(
                    f"{path}:{number}: not valid JSON ({error})"
                ) from None
    return events


def write_metrics_prometheus(registry: MetricsRegistry, path: str) -> None:
    """Dump a registry in Prometheus text exposition format
    (atomically — scrapers never observe a partial dump)."""
    atomic_write_text(path, registry.to_prometheus())


def parse_prometheus_text(text: str) -> Dict[str, float]:
    """Parse a Prometheus text dump back into ``{series: value}``.

    Series keys keep their label string (``name{k="v"}``) exactly as
    rendered, matching :meth:`MetricsRegistry.snapshot` keys.
    """
    values: Dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        if not key:
            raise TraceSchemaError(f"malformed metrics line: {line!r}")
        try:
            values[key] = float(value)
        except ValueError:
            raise TraceSchemaError(
                f"malformed metrics value in line: {line!r}"
            ) from None
    return values


def _span_index(events: List[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    """Per-span summary: name, start/end ts, parent, child span ids."""
    spans: Dict[int, Dict[str, Any]] = {}
    for event in events:
        kind = event.get("kind")
        span_id = event.get("span")
        if kind == "span_start":
            spans[span_id] = {
                "name": event.get("name"),
                "start": event.get("ts"),
                "end": None,
                "parent": event.get("parent"),
                "attrs": event.get("attrs", {}),
                "children": [],
            }
        elif kind == "span_end" and span_id in spans:
            spans[span_id]["end"] = event.get("ts")
    for span_id, span in spans.items():
        parent = span["parent"]
        if parent in spans:
            spans[parent]["children"].append(span_id)
    return spans


def _render_span(
    spans: Dict[int, Dict[str, Any]],
    span_id: int,
    lines: List[str],
    depth: int,
) -> None:
    span = spans[span_id]
    if span["end"] is not None and span["start"] is not None:
        duration = f"{(span['end'] - span['start']) / 1e6:10.3f} ms"
    else:
        duration = "  (unclosed)"
    attrs = span["attrs"]
    suffix = ""
    if attrs:
        inner = ", ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        suffix = f"  [{inner}]"
    lines.append(f"{duration}  {'  ' * depth}{span['name']}{suffix}")
    for child in span["children"]:
        _render_span(spans, child, lines, depth + 1)


def summarize_trace(events: List[Dict[str, Any]]) -> str:
    """Human-readable report: headline counts, event histogram, span
    tree with durations."""
    rounds = [e for e in events if e.get("name") == "crowd.round"]
    questions = sum(e.get("attrs", {}).get("questions", 0) for e in rounds)
    retried = sum(e.get("attrs", {}).get("retried", 0) for e in rounds)
    wall_ns: Optional[int] = None
    if events:
        wall_ns = max(e.get("ts", 0) for e in events) - events[0].get("ts", 0)

    lines = ["== trace summary =="]
    lines.append(f"events:            {len(events)}")
    if wall_ns is not None:
        lines.append(f"trace wall time:   {wall_ns / 1e6:.3f} ms")
    lines.append(f"rounds:            {len(rounds)}")
    lines.append(f"questions asked:   {questions}")
    if retried:
        lines.append(f"retried questions: {retried}")
    faults = [e for e in events if e.get("name") == "crowd.fault"]
    if faults:
        by_kind: Dict[str, int] = {}
        for event in faults:
            kind = event.get("attrs", {}).get("fault", "?")
            by_kind[kind] = by_kind.get(kind, 0) + 1
        rendered = ", ".join(
            f"{kind}={count}" for kind, count in sorted(by_kind.items())
        )
        lines.append(f"injected faults:   {rendered}")

    by_name: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "event":
            name = event.get("name", "?")
            by_name[name] = by_name.get(name, 0) + 1
    if by_name:
        lines.append("")
        lines.append("-- events by name --")
        for name in sorted(by_name):
            lines.append(f"{by_name[name]:8d}  {name}")

    spans = _span_index(events)
    roots = [
        span_id for span_id, span in sorted(spans.items())
        if span["parent"] not in spans
    ]
    if roots:
        lines.append("")
        lines.append("-- span tree --")
        for root in roots:
            _render_span(spans, root, lines, 0)
    return "\n".join(lines)

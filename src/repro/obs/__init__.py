"""``repro.obs`` — structured tracing, metrics and profiling hooks.

The observability layer turns every run into an analyzable artifact:

* :class:`~repro.obs.tracer.Tracer` records structured events and
  nestable spans (one event per round, batch, vote, retry, fault and
  budget decision),
* :class:`~repro.obs.metrics.MetricsRegistry` accumulates the paper's
  headline metrics (questions, rounds, cache hits, unresolved pairs,
  per-phase wall time) as counters/gauges/histograms,
* exporters persist JSONL traces, human-readable summaries and
  Prometheus text dumps (:mod:`repro.obs.exporters`), validated against
  the event schema (:mod:`repro.obs.schema`).

**Cost model.** Observability is off by default: the globally installed
observation is a no-op singleton and every instrumentation site guards
with ``observation.enabled`` — one attribute read on the hot path.
Independent of the global switch, each
:class:`~repro.crowd.platform.SimulatedCrowd` feeds its own run-local
registry at *round* granularity (a handful of dict lookups per round),
which is what results report from.

Usage::

    from repro.obs import observe

    with observe(trace_path="run.jsonl", metrics_path="run.prom") as o:
        result = crowdsky(relation)
    # run.jsonl now holds the trace, run.prom the metrics dump
    print(result.summary())   # includes wall-clock time

or via the CLI: ``crowdsky run fig6a --trace run.jsonl --metrics
run.prom`` and ``crowdsky trace summarize run.jsonl``.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator, List, Optional, Union

from repro.exceptions import ObservabilityError
from repro.obs.exporters import (
    parse_prometheus_text,
    read_trace_jsonl,
    summarize_trace,
    write_metrics_prometheus,
    write_trace_jsonl,
)
from repro.obs.metrics import (
    MEAN_VOTES_PER_QUESTION,
    PHASE_SECONDS,
    QUESTIONS_ASKED,
    WORKER_ASSIGNMENTS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.perf import (
    machine_fingerprint,
    phase_breakdown,
    profile_spans,
    regress,
)
from repro.obs.report import (
    build_run_report,
    render_markdown,
    trace_summary,
    write_run_report,
)
from repro.obs.tracer import NOOP_TRACER, NoOpTracer, Span, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP_TRACER",
    "NoOpTracer",
    "Observation",
    "Span",
    "Tracer",
    "build_run_report",
    "current_observation",
    "machine_fingerprint",
    "observe",
    "parse_prometheus_text",
    "phase",
    "phase_breakdown",
    "profile_spans",
    "read_trace_jsonl",
    "regress",
    "render_markdown",
    "run_span",
    "summarize_trace",
    "trace_summary",
    "write_metrics_prometheus",
    "write_run_report",
    "write_trace_jsonl",
]


class Observation:
    """A live tracer + aggregate metrics registry, installed for a scope.

    Instrumented code reaches the active observation through
    :func:`current_observation`; when none is installed the no-op
    observation is returned and every emission site skips its work after
    a single ``enabled`` check.
    """

    enabled = True

    def __init__(self) -> None:
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()

    def finalize(self) -> None:
        """Compute derived gauges (called before export)."""
        questions = self.metrics.total(QUESTIONS_ASKED)
        if questions:
            assignments = self.metrics.total(WORKER_ASSIGNMENTS)
            self.metrics.gauge(MEAN_VOTES_PER_QUESTION).set(
                assignments / questions
            )


class _NoOpObservation:
    """Disabled observation; ``metrics`` is deliberately ``None`` so an
    unguarded emission fails loudly instead of leaking into a shared
    registry."""

    enabled = False
    tracer = NOOP_TRACER
    metrics: Optional[MetricsRegistry] = None


_NOOP_OBSERVATION = _NoOpObservation()
_STACK: List[Observation] = []


def current_observation() -> Union[Observation, _NoOpObservation]:
    """The innermost installed observation, or the no-op singleton."""
    return _STACK[-1] if _STACK else _NOOP_OBSERVATION


def install(observation: Observation) -> None:
    """Push an observation; prefer the :func:`observe` context manager."""
    _STACK.append(observation)


def uninstall(observation: Observation) -> None:
    """Pop a previously installed observation (LIFO discipline)."""
    if not _STACK or _STACK[-1] is not observation:
        raise ObservabilityError(
            "uninstall order violates the observation stack"
        )
    _STACK.pop()


@contextmanager
def observe(
    trace_path: Optional[str] = None,
    metrics_path: Optional[str] = None,
) -> Iterator[Observation]:
    """Install a fresh observation for the ``with`` block.

    On exit, derived gauges are finalized and — when paths are given —
    the JSONL trace and/or Prometheus metrics dump are written even if
    the block raised (partial runs are still analyzable).
    """
    observation = Observation()
    install(observation)
    try:
        yield observation
    finally:
        uninstall(observation)
        observation.finalize()
        if trace_path is not None:
            write_trace_jsonl(observation.tracer.events, trace_path)
        if metrics_path is not None:
            write_metrics_prometheus(observation.metrics, metrics_path)


@contextmanager
def phase(name: str) -> Iterator[Optional[Span]]:
    """Trace one named phase and account its wall time.

    Yields the live span (or ``None`` when observability is off); on
    exit the duration feeds the ``crowdsky_phase_seconds_total{phase=}``
    counter of the active observation.
    """
    observation = current_observation()
    if not observation.enabled:
        yield None
        return
    with observation.tracer.span(f"phase.{name}") as span:
        yield span
    observation.metrics.counter(PHASE_SECONDS, phase=name).inc(
        span.duration_s or 0.0
    )


@contextmanager
def run_span(algorithm: str, **attrs: Any) -> Iterator[Optional[Span]]:
    """Trace one whole algorithm run as a ``run`` span.

    Yields the live span (``None`` when observability is off); callers
    use ``span.duration_s`` to stamp wall time onto their result.
    """
    observation = current_observation()
    if not observation.enabled:
        yield None
        return
    with observation.tracer.span("run", algorithm=algorithm, **attrs) as span:
        yield span

"""Span-derived profiling and the benchmark-trajectory regression gate.

Two halves, both pure functions over plain data (this module sits in
the ``obs`` layer and may import nothing above ``repro.io``):

* **Profiler** — :func:`profile_spans` aggregates a recorded trace's
  span records into per-span-name wall/CPU statistics with *self* time
  (time inside a span excluding its children) and exact-bucket latency
  histograms; :func:`phase_breakdown` turns that into the per-phase
  table a :mod:`RunReport <repro.obs.report>` prints. Because self
  times partition each root span exactly, the per-phase wall times sum
  to the total traced wall time by construction — the property the
  acceptance tests pin.

* **Regression gate** — :func:`regress` diffs one benchmark-trajectory
  record (see :mod:`repro.experiments.bench`) against a committed
  baseline record: a benchmark regresses when its median-of-k exceeds
  the baseline median by more than ``tolerance`` *and* an absolute
  noise floor, and even its fastest run exceeds the band (a single
  noisy run never fails the gate). :func:`machine_fingerprint`
  identifies the recording host so trajectories from different
  machines are never compared silently.

This module owns the wall-clock reads the deterministic packages are
forbidden (RA001): :func:`utc_timestamp` is how the bench harness
stamps its records.
"""

from __future__ import annotations

import os
import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.exceptions import ObservabilityError

#: Bucket upper bounds (seconds) for the profiler's per-span latency
#: histograms; the final implicit bucket is +Inf. Mirrors the metric
#: histograms' :data:`repro.obs.metrics.LATENCY_BUCKETS_S` but is owned
#: here so the profiler works on traces alone.
SPAN_LATENCY_BUCKETS_S: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0,
)

NS_PER_S = 1_000_000_000


# ---------------------------------------------------------------------------
# Span profiler
# ---------------------------------------------------------------------------


@dataclass
class SpanStats:
    """Aggregated timing of every span sharing one name."""

    name: str
    #: Number of completed (or force-closed) spans of this name.
    count: int = 0
    #: Total wall nanoseconds inside the spans (children included).
    wall_ns: int = 0
    #: Wall nanoseconds exclusive of child spans (self time). Self
    #: times of all spans partition the trace: they sum to the total.
    self_ns: int = 0
    #: Total CPU nanoseconds inside the spans (children included);
    #: None when the trace predates CPU stamping.
    cpu_ns: Optional[int] = None
    #: CPU nanoseconds exclusive of child spans.
    self_cpu_ns: Optional[int] = None
    min_ns: Optional[int] = None
    max_ns: Optional[int] = None
    #: Exact (non-cumulative) duration histogram: one count per bucket
    #: of :data:`SPAN_LATENCY_BUCKETS_S`, final entry is +Inf.
    histogram: List[int] = field(
        default_factory=lambda: [0] * (len(SPAN_LATENCY_BUCKETS_S) + 1)
    )

    def observe(
        self,
        wall_ns: int,
        self_ns: int,
        cpu_ns: Optional[int],
        self_cpu_ns: Optional[int],
    ) -> None:
        self.count += 1
        self.wall_ns += wall_ns
        self.self_ns += self_ns
        if cpu_ns is not None:
            self.cpu_ns = (self.cpu_ns or 0) + cpu_ns
            self.self_cpu_ns = (self.self_cpu_ns or 0) + (self_cpu_ns or 0)
        if self.min_ns is None or wall_ns < self.min_ns:
            self.min_ns = wall_ns
        if self.max_ns is None or wall_ns > self.max_ns:
            self.max_ns = wall_ns
        seconds = wall_ns / NS_PER_S
        for index, bound in enumerate(SPAN_LATENCY_BUCKETS_S):
            if seconds <= bound:
                self.histogram[index] += 1
                return
        self.histogram[-1] += 1

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able form (histogram keyed by bucket upper bound)."""
        buckets = {
            str(bound): count
            for bound, count in zip(SPAN_LATENCY_BUCKETS_S, self.histogram)
            if count
        }
        if self.histogram[-1]:
            buckets["+Inf"] = self.histogram[-1]
        return {
            "name": self.name,
            "count": self.count,
            "wall_s": self.wall_ns / NS_PER_S,
            "self_s": self.self_ns / NS_PER_S,
            "cpu_s": (
                None if self.cpu_ns is None else self.cpu_ns / NS_PER_S
            ),
            "self_cpu_s": (
                None
                if self.self_cpu_ns is None
                else self.self_cpu_ns / NS_PER_S
            ),
            "min_s": (
                None if self.min_ns is None else self.min_ns / NS_PER_S
            ),
            "max_s": (
                None if self.max_ns is None else self.max_ns / NS_PER_S
            ),
            "histogram": buckets,
        }


def index_spans(events: Sequence[Dict[str, Any]]) -> Dict[int, Dict[str, Any]]:
    """Per-span summary keyed by span id.

    Each entry holds ``name`` / ``start`` / ``end`` / ``cpu_start`` /
    ``cpu_end`` / ``parent`` / ``children``. Spans that never ended
    (crashed runs) are force-closed at the trace's last timestamp so a
    partial trace still profiles.
    """
    spans: Dict[int, Dict[str, Any]] = {}
    last_ts = 0
    last_cpu: Optional[int] = None
    for event in events:
        ts = event.get("ts", 0)
        if isinstance(ts, int) and ts > last_ts:
            last_ts = ts
        cpu = event.get("cpu")
        if isinstance(cpu, int):
            last_cpu = cpu
        kind = event.get("kind")
        span_id = event.get("span")
        if kind == "span_start":
            spans[span_id] = {
                "name": event.get("name"),
                "start": event.get("ts"),
                "end": None,
                "cpu_start": cpu,
                "cpu_end": None,
                "parent": event.get("parent"),
                "attrs": event.get("attrs", {}),
                "children": [],
            }
        elif kind == "span_end" and span_id in spans:
            spans[span_id]["end"] = event.get("ts")
            spans[span_id]["cpu_end"] = cpu
    for span in spans.values():
        if span["end"] is None:
            span["end"] = last_ts
            if span["cpu_start"] is not None and last_cpu is not None:
                span["cpu_end"] = last_cpu
    for span_id, span in spans.items():
        parent = span["parent"]
        if parent in spans:
            spans[parent]["children"].append(span_id)
    return spans


def profile_spans(
    events: Sequence[Dict[str, Any]],
) -> Dict[str, SpanStats]:
    """Aggregate a trace's spans into per-name wall/CPU statistics.

    Self time is each span's duration minus the sum of its direct
    children's durations (clamped at zero against absorbed traces,
    whose re-stamped children can nominally outlast their parent).
    """
    spans = index_spans(events)
    stats: Dict[str, SpanStats] = {}
    for span in spans.values():
        if span["start"] is None or span["end"] is None:
            continue
        wall = max(0, span["end"] - span["start"])
        child_wall = 0
        child_cpu = 0
        for child_id in span["children"]:
            child = spans[child_id]
            if child["start"] is not None and child["end"] is not None:
                child_wall += max(0, child["end"] - child["start"])
            if (
                child["cpu_start"] is not None
                and child["cpu_end"] is not None
            ):
                child_cpu += max(0, child["cpu_end"] - child["cpu_start"])
        cpu: Optional[int] = None
        self_cpu: Optional[int] = None
        if span["cpu_start"] is not None and span["cpu_end"] is not None:
            cpu = max(0, span["cpu_end"] - span["cpu_start"])
            self_cpu = max(0, cpu - child_cpu)
        entry = stats.get(span["name"])
        if entry is None:
            entry = stats[span["name"]] = SpanStats(span["name"])
        entry.observe(wall, max(0, wall - child_wall), cpu, self_cpu)
    return stats


def phase_breakdown(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The per-phase table a RunReport prints.

    ``total_wall_ns`` is the summed duration of the trace's *root*
    spans (spans without a recorded parent). Every span's self time is
    attributed to its name; the residue of the roots (time outside any
    child span) already lives in the roots' own self entries, so
    ``sum(phase.self_ns) == total_wall_ns`` exactly — phases partition
    the traced time.
    """
    spans = index_spans(events)
    stats = profile_spans(events)
    total = 0
    total_cpu = 0
    cpu_known = False
    for span in spans.values():
        if span["parent"] in spans:
            continue
        if span["start"] is None or span["end"] is None:
            continue
        total += max(0, span["end"] - span["start"])
        if span["cpu_start"] is not None and span["cpu_end"] is not None:
            total_cpu += max(0, span["cpu_end"] - span["cpu_start"])
            cpu_known = True
    phases = [
        stats[name].to_dict() for name in sorted(stats)
    ]
    for phase in phases:
        phase["share"] = (
            phase["self_s"] / (total / NS_PER_S) if total else 0.0
        )
    return {
        "total_wall_s": total / NS_PER_S,
        "total_cpu_s": (total_cpu / NS_PER_S) if cpu_known else None,
        "phases": phases,
    }


# ---------------------------------------------------------------------------
# Machine identity and wall-clock (owned by obs; see RA001)
# ---------------------------------------------------------------------------


def machine_fingerprint() -> Dict[str, Any]:
    """A JSON-able identity of the recording host.

    Benchmark numbers are only comparable on the same machine and
    interpreter; :func:`regress` refuses cross-machine diffs unless
    explicitly told otherwise.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
    }


def same_machine(a: Optional[Dict[str, Any]], b: Optional[Dict[str, Any]]) -> bool:
    """Whether two fingerprints identify comparable environments."""
    if not a or not b:
        return False
    keys = ("python", "implementation", "system", "machine", "cpus")
    return all(a.get(key) == b.get(key) for key in keys)


def utc_timestamp() -> str:
    """Current UTC time as an ISO-8601 string (seconds precision)."""
    return time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime())


# ---------------------------------------------------------------------------
# Benchmark-trajectory regression gate
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Regression:
    """One benchmark that slowed past the tolerance band."""

    benchmark: str
    baseline_s: float
    candidate_s: float
    ratio: float
    tolerance: float

    def describe(self) -> str:
        return (
            f"{self.benchmark}: {self.candidate_s:.4f}s vs baseline "
            f"{self.baseline_s:.4f}s ({self.ratio:.2f}x, tolerance "
            f"{1.0 + self.tolerance:.2f}x)"
        )


def _result_map(record: Dict[str, Any]) -> Dict[str, Dict[str, Any]]:
    results = record.get("results", [])
    if not isinstance(results, list):
        raise ObservabilityError(
            "malformed trajectory record: 'results' must be a list"
        )
    return {r["id"]: r for r in results if isinstance(r, dict) and "id" in r}


def regress(
    candidate: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.30,
    min_seconds: float = 0.005,
    ignore_fingerprint: bool = False,
) -> List[Regression]:
    """Diff a candidate trajectory record against a baseline record.

    A benchmark regresses when its candidate median exceeds
    ``baseline_median * (1 + tolerance)`` *and* ``baseline_median +
    min_seconds`` (sub-noise-floor benchmarks never fail), *and* the
    fastest candidate run also exceeds the band — a genuine slowdown
    shows in every repeat, a scheduler hiccup does not. Benchmarks
    present in only one record are skipped (suites may grow).

    Records from different machines are incomparable; unless
    ``ignore_fingerprint`` is set they yield no findings (callers
    should surface the skip). Returns the regressions, worst first.
    """
    if not ignore_fingerprint and not same_machine(
        candidate.get("fingerprint"), baseline.get("fingerprint")
    ):
        return []
    base = _result_map(baseline)
    findings: List[Regression] = []
    for result in _result_map(candidate).values():
        reference = base.get(result["id"])
        if reference is None:
            continue
        base_s = float(reference["median_s"])
        cand_s = float(result["median_s"])
        threshold = max(base_s * (1.0 + tolerance), base_s + min_seconds)
        runs = [float(r) for r in result.get("runs_s", [])] or [cand_s]
        if cand_s > threshold and min(runs) > threshold:
            findings.append(
                Regression(
                    benchmark=result["id"],
                    baseline_s=base_s,
                    candidate_s=cand_s,
                    ratio=(cand_s / base_s) if base_s else float("inf"),
                    tolerance=tolerance,
                )
            )
    findings.sort(key=lambda f: f.ratio, reverse=True)
    return findings


def median(values: Sequence[float]) -> float:
    """Median of a non-empty sequence (no statistics import on the
    bench hot path; even-length sequences average the middle pair)."""
    if not values:
        raise ObservabilityError("median of an empty sequence")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def _main() -> int:  # pragma: no cover - thin debug helper
    """``python -m repro.obs.perf trace.jsonl`` prints a breakdown."""
    from repro.obs.exporters import read_trace_jsonl

    if len(sys.argv) != 2:
        print("usage: python -m repro.obs.perf TRACE.jsonl")
        return 2
    breakdown = phase_breakdown(read_trace_jsonl(sys.argv[1]))
    print(f"total wall: {breakdown['total_wall_s']:.4f}s")
    for phase in breakdown["phases"]:
        print(
            f"  {phase['name']:<28} x{phase['count']:<6} "
            f"self {phase['self_s']:.4f}s ({phase['share']:.1%})"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(_main())

"""Zero-dependency structured event tracer.

A :class:`Tracer` records an append-only list of *event records* — plain
dicts, one per emission, ready for JSONL export::

    {"ts": <int ns>, "kind": "event" | "span_start" | "span_end",
     "name": <str>, "span": <int | None>, "parent": <int | None>,
     "attrs": {...}}

``ts`` is nanoseconds of monotonic time since the tracer was created
(:func:`time.perf_counter_ns`), so traces are ordering- and
duration-faithful but carry no wall-clock identity. Span records
additionally carry a ``"cpu"`` key — nanoseconds of process CPU time
(:func:`time.process_time_ns`) relative to the same origin — so the
profiler (:mod:`repro.obs.perf`) can split wall time into CPU work vs
waiting (fsync, simulated crowd latency). Like ``ts``, the ``cpu``
stamps are stripped by the determinism tests: they vary run to run. Spans nest via
:mod:`contextvars`: events emitted inside a ``with tracer.span(...)``
block are stamped with the enclosing span's id, and nested spans record
their parent — the context-local stack survives generators and
``asyncio`` tasks.

The module-level :data:`NOOP_TRACER` is the disabled singleton: every
instrumentation site guards with ``tracer.enabled`` (or checks the
observation, see :mod:`repro.obs`), so tracing costs one attribute read
per emission site when observability is off.

Determinism: span ids are a per-tracer counter and every attribute comes
from the caller, so two runs with identical seeds produce identical
event sequences *modulo the* ``ts`` *values* — the property the
``obs``-marked tests pin down.
"""

from __future__ import annotations

import contextvars
import os
import time
from typing import Any, Callable, Dict, List, Optional

#: Record kinds a tracer emits.
EVENT = "event"
SPAN_START = "span_start"
SPAN_END = "span_end"

#: Set to ``1`` to make every tracer reject unregistered event names at
#: emission time (the runtime twin of the static RA005 rule); the
#: check is resolved once per tracer at construction.
STRICT_ENV_VAR = "REPRO_OBS_STRICT"


def _strict_checker() -> Optional[Callable[[str], None]]:
    """The strict-mode name check, or ``None`` when strict mode is off.

    Imported lazily so the hot path pays nothing when strict mode is
    disabled and module import order stays trivial.
    """
    if os.environ.get(STRICT_ENV_VAR, "").strip() != "1":
        return None
    from repro.obs.schema import assert_known

    return assert_known


class Span:
    """One traced region; use as a context manager.

    Entering emits a ``span_start`` record and makes the span current
    (events and child spans attach to it); exiting emits ``span_end``.
    After exit, :attr:`duration_ns` / :attr:`duration_s` hold the
    monotonic wall time spent inside.
    """

    __slots__ = (
        "_tracer", "name", "attrs", "span_id", "parent",
        "start_ns", "end_ns", "_token",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]):
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: Optional[int] = None
        self.parent: Optional[int] = None
        self.start_ns: Optional[int] = None
        self.end_ns: Optional[int] = None
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id()
        self.parent = tracer._current.get()
        self.start_ns = tracer._now()
        tracer._emit(
            self.start_ns, SPAN_START, self.name, self.span_id,
            self.parent, self.attrs, cpu=tracer._cpu_now(),
        )
        self._token = tracer._current.set(self.span_id)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        if self._token is not None:
            tracer._current.reset(self._token)
        self.end_ns = tracer._now()
        tracer._emit(
            self.end_ns, SPAN_END, self.name, self.span_id, self.parent,
            {"error": True} if exc_type is not None else {},
            cpu=tracer._cpu_now(),
        )
        return False

    @property
    def duration_ns(self) -> Optional[int]:
        """Nanoseconds spent inside the span (None before exit)."""
        if self.start_ns is None or self.end_ns is None:
            return None
        return self.end_ns - self.start_ns

    @property
    def duration_s(self) -> Optional[float]:
        """Seconds spent inside the span (None before exit)."""
        duration = self.duration_ns
        return None if duration is None else duration / 1e9


class Tracer:
    """Collects structured events in memory (export via
    :mod:`repro.obs.exporters`)."""

    enabled = True

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        cpu_clock: Callable[[], int] = time.process_time_ns,
    ):
        self._clock = clock
        self._origin = clock()
        self._cpu_clock = cpu_clock
        self._cpu_origin = cpu_clock()
        self._assert_known = _strict_checker()
        self._counter = 0
        self._current: contextvars.ContextVar[Optional[int]] = (
            contextvars.ContextVar("repro_obs_span", default=None)
        )
        #: The recorded event dicts, in emission order.
        self.events: List[Dict[str, Any]] = []

    def _now(self) -> int:
        return self._clock() - self._origin

    def _cpu_now(self) -> int:
        return self._cpu_clock() - self._cpu_origin

    def _next_id(self) -> int:
        self._counter += 1
        return self._counter

    def _emit(
        self,
        ts: int,
        kind: str,
        name: str,
        span: Optional[int],
        parent: Optional[int],
        attrs: Dict[str, Any],
        cpu: Optional[int] = None,
    ) -> None:
        record = {
            "ts": ts,
            "kind": kind,
            "name": name,
            "span": span,
            "parent": parent,
            "attrs": attrs,
        }
        if cpu is not None:
            record["cpu"] = cpu
        self.events.append(record)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit one point-in-time event under the current span.

        In strict mode (``REPRO_OBS_STRICT=1`` at tracer construction)
        the name must be registered in
        :data:`repro.obs.schema.EVENT_ATTRS`.
        """
        if self._assert_known is not None:
            self._assert_known(name)
        current = self._current.get()
        self._emit(self._now(), EVENT, name, current, current, attrs)

    def span(self, name: str, **attrs: Any) -> Span:
        """A nestable traced region; use as ``with tracer.span(...):``."""
        return Span(self, name, attrs)

    def absorb(self, events: List[Dict[str, Any]]) -> None:
        """Splice another tracer's recorded events into this trace.

        Used to fold a worker process's trace into the parent after a
        parallel sweep: span ids are remapped through this tracer's
        counter (so they stay unique), top-level records are reparented
        under the currently open span, and every record is re-stamped at
        the absorption instant — relative ordering survives, per-event
        durations inside the absorbed region do not.
        """
        if not events:
            return
        now = self._now()
        cpu_now = self._cpu_now()
        current = self._current.get()
        mapping: Dict[int, int] = {}

        def remap(span_id: Optional[int]) -> Optional[int]:
            if span_id is None:
                return current
            new = mapping.get(span_id)
            if new is None:
                new = mapping[span_id] = self._next_id()
            return new

        for record in events:
            self._emit(
                now,
                record["kind"],
                record["name"],
                remap(record["span"]),
                remap(record["parent"]),
                record["attrs"],
                cpu=cpu_now if "cpu" in record else None,
            )


class _NoOpSpan:
    """Inert stand-in so ``with NOOP_TRACER.span(...) as s`` works."""

    __slots__ = ()
    duration_ns: Optional[int] = None
    duration_s: Optional[float] = None

    def __enter__(self) -> "_NoOpSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class NoOpTracer:
    """Disabled tracer: every emission is a constant-time no-op."""

    enabled = False
    events: List[Dict[str, Any]] = []  # always empty; never appended to

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def span(self, name: str, **attrs: Any) -> _NoOpSpan:
        return _NOOP_SPAN


_NOOP_SPAN = _NoOpSpan()

#: The disabled singleton installed when no observation is active.
NOOP_TRACER = NoOpTracer()

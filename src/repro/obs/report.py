"""Unified RunReport: one artifact per run, from trace + metrics.

A *RunReport* is a JSON document (with a Markdown rendering) that
answers the three questions every CrowdSky experiment is ultimately
about — where did the wall time go, where did the money go, and what
did the crowd actually do. It is assembled purely from recorded
artifacts (the JSONL trace, the Prometheus metrics dump, and optional
journal statistics passed in as plain dicts — this module sits in the
``obs`` layer and cannot import :mod:`repro.crowd`), so a report can be
produced long after the run, on a different machine, via ``crowdsky
report <trace-dir>``.

Money is modelled exactly as :class:`~repro.crowd.platform.CrowdStats`
prices it (the paper's AMT model): each latency round of *q* fresh
questions costs ``ceil(q / per_hit)`` HITs, and every HIT pays
``price`` to each of ``omega`` assigned workers. The breakdown total is
computed with the *identical expression* — ``price * omega *
sum(hits)`` — so it matches the ledger's ``hit_cost`` bit for bit; the
acceptance tests pin that equality. The defaults below mirror the
platform's (duplicated deliberately: layering forbids the import).
"""

from __future__ import annotations

import json
import math
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.exceptions import TraceSchemaError
from repro.io.atomic import atomic_write_text
from repro.obs.perf import phase_breakdown, profile_spans, utc_timestamp

#: AMT cost-model defaults; keep in lockstep with
#: ``repro.crowd.platform`` (DEFAULT_PRICE / DEFAULT_OMEGA /
#: QUESTIONS_PER_HIT) — asserted equal in ``tests/test_report.py``.
DEFAULT_PRICE = 0.02
DEFAULT_OMEGA = 5
QUESTIONS_PER_HIT = 5

#: Event names that contribute fresh questions to a latency round.
ROUND_EVENTS = ("crowd.round", "crowd.round_merged")

#: Cost-context attributes stamped on round events (see
#: ``SimulatedCrowd.set_cost_context``); each becomes one breakdown
#: dimension.
COST_DIMENSIONS = ("scheduler", "phase", "layer", "tuple")

TRACE_SUMMARY_SCHEMA = "crowdsky.trace_summary/1"
RUN_REPORT_SCHEMA = "crowdsky.run_report/1"


# ---------------------------------------------------------------------------
# Machine-readable trace summary (``crowdsky trace summarize --format json``)
# ---------------------------------------------------------------------------


def trace_summary(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """The JSON twin of :func:`repro.obs.exporters.summarize_trace`.

    Same headline numbers, machine-readable, plus the per-span-name
    profile. Validated by :func:`validate_trace_summary` and embedded
    verbatim in every RunReport.
    """
    rounds = [e for e in events if e.get("name") == "crowd.round"]
    questions = 0
    retried = 0
    for event in events:
        if event.get("name") in ROUND_EVENTS:
            attrs = event.get("attrs", {})
            questions += attrs.get("questions", 0)
            retried += attrs.get("retried", 0)
    faults: Dict[str, int] = {}
    for event in events:
        if event.get("name") == "crowd.fault":
            kind = str(event.get("attrs", {}).get("fault", "?"))
            faults[kind] = faults.get(kind, 0) + 1
    by_name: Dict[str, int] = {}
    for event in events:
        if event.get("kind") == "event":
            name = event.get("name", "?")
            by_name[name] = by_name.get(name, 0) + 1
    wall_s: Optional[float] = None
    if events:
        first = events[0].get("ts", 0)
        wall_s = (max(e.get("ts", 0) for e in events) - first) / 1e9
    return {
        "schema": TRACE_SUMMARY_SCHEMA,
        "events": len(events),
        "wall_s": wall_s,
        "rounds": len(rounds),
        "questions": questions,
        "retried": retried,
        "faults": faults,
        "events_by_name": by_name,
        "spans": [
            profile.to_dict()
            for _, profile in sorted(profile_spans(events).items())
        ],
    }


def validate_trace_summary(document: Mapping[str, Any]) -> None:
    """Structural check; raises :class:`TraceSchemaError` on mismatch."""
    if document.get("schema") != TRACE_SUMMARY_SCHEMA:
        raise TraceSchemaError(
            f"not a trace summary: schema={document.get('schema')!r}"
        )
    for key, kinds in (
        ("events", int),
        ("rounds", int),
        ("questions", int),
        ("retried", int),
        ("faults", dict),
        ("events_by_name", dict),
        ("spans", list),
    ):
        if not isinstance(document.get(key), kinds):
            raise TraceSchemaError(
                f"trace summary field {key!r} missing or mistyped"
            )
    wall = document.get("wall_s")
    if wall is not None and not isinstance(wall, (int, float)):
        raise TraceSchemaError("trace summary field 'wall_s' mistyped")
    for span in document["spans"]:
        if not isinstance(span, dict) or "name" not in span:
            raise TraceSchemaError("trace summary span entry mistyped")


# ---------------------------------------------------------------------------
# Cost attribution from round events
# ---------------------------------------------------------------------------


def _run_span_of_events(
    events: Sequence[Dict[str, Any]]
) -> Dict[Any, Any]:
    """Map each span id to its nearest ancestor span named ``run``
    (itself included), or None — the scope of one crowd instance's
    round counter."""
    parents: Dict[Any, Any] = {}
    names: Dict[Any, Any] = {}
    for record in events:
        if record.get("kind") == "span_start":
            span = record.get("span")
            parents[span] = record.get("parent")
            names[span] = record.get("name")
    resolved: Dict[Any, Any] = {}
    for span in names:
        chain = []
        current = span
        while (
            current is not None
            and current not in resolved
            and names.get(current) != "run"
        ):
            chain.append(current)
            current = parents.get(current)
        if current is None:
            anchor = None
        elif names.get(current) == "run":
            anchor = current
            resolved[current] = current
        else:
            anchor = resolved[current]
        for link in chain:
            resolved[link] = anchor
    return resolved


def cost_from_events(
    events: Sequence[Dict[str, Any]],
    price: float = DEFAULT_PRICE,
    omega: int = DEFAULT_OMEGA,
    per_hit: int = QUESTIONS_PER_HIT,
) -> Dict[str, Any]:
    """Charge every round's money back to its recorded cost context.

    Round events carry the context that caused them (scheduler, phase,
    layer, tuple — see ``SimulatedCrowd.set_cost_context``). Questions
    folded into an earlier round by a merged multiway posting
    (``crowd.round_merged``) share that round's HIT arithmetic, exactly
    as :class:`CrowdStats` accounts them. Per-dimension costs each
    price an integer HIT count, and the grand total prices the integer
    sum — the same expression the ledger uses, so equality is exact.

    Round counters restart with every crowd instance, so in a trace
    holding several runs (a sweep) the number alone would collide
    across runs; rounds are therefore keyed by (nearest enclosing
    ``run`` span, round number), which scopes the counter to its run.
    """
    run_of = _run_span_of_events(events)
    per_round: Dict[Any, Dict[str, Any]] = {}
    order: List[Any] = []
    questions = 0
    retried = 0
    assignments = 0
    for event in events:
        if event.get("name") not in ROUND_EVENTS:
            continue
        attrs = event.get("attrs", {})
        index = (
            run_of.get(event.get("span")),
            attrs.get("round", len(order)),
        )
        entry = per_round.get(index)
        if entry is None:
            entry = per_round[index] = {
                "questions": 0,
                "context": {
                    dim: attrs.get(dim) for dim in COST_DIMENSIONS
                },
            }
            order.append(index)
        entry["questions"] += attrs.get("questions", 0)
        questions += attrs.get("questions", 0)
        retried += attrs.get("retried", 0)
        assignments += attrs.get("assignments", 0)

    total_hits = 0
    by_dimension: Dict[str, Dict[str, Dict[str, Any]]] = {
        dim: {} for dim in COST_DIMENSIONS
    }
    for index in order:
        entry = per_round[index]
        hits = math.ceil(entry["questions"] / per_hit) if entry["questions"] else 0
        total_hits += hits
        for dim in COST_DIMENSIONS:
            value = entry["context"].get(dim)
            key = "(unattributed)" if value is None else str(value)
            bucket = by_dimension[dim].setdefault(
                key, {"rounds": 0, "questions": 0, "hits": 0}
            )
            bucket["rounds"] += 1
            bucket["questions"] += entry["questions"]
            bucket["hits"] += hits
    for groups in by_dimension.values():
        for bucket in groups.values():
            bucket["cost"] = price * omega * bucket["hits"]
    return {
        "price": price,
        "omega": omega,
        "questions_per_hit": per_hit,
        "rounds": len(order),
        "questions": questions,
        "retried": retried,
        "assignments": assignments,
        "hits": total_hits,
        "total_cost": price * omega * total_hits,
        "by_scheduler": by_dimension["scheduler"],
        "by_phase": by_dimension["phase"],
        "by_layer": by_dimension["layer"],
        "by_tuple": by_dimension["tuple"],
    }


# ---------------------------------------------------------------------------
# RunReport assembly / rendering / persistence
# ---------------------------------------------------------------------------


def build_run_report(
    events: Sequence[Dict[str, Any]],
    metrics: Optional[Mapping[str, float]] = None,
    journal: Optional[Mapping[str, Any]] = None,
    meta: Optional[Mapping[str, Any]] = None,
    price: float = DEFAULT_PRICE,
    omega: int = DEFAULT_OMEGA,
    per_hit: int = QUESTIONS_PER_HIT,
) -> Dict[str, Any]:
    """Assemble the RunReport document from recorded artifacts.

    ``metrics`` is a parsed Prometheus snapshot (``{series: value}``,
    see :func:`repro.obs.exporters.parse_prometheus_text`); ``journal``
    is a plain stats dict computed by the caller (the ``obs`` layer
    cannot read journals itself).
    """
    return {
        "schema": RUN_REPORT_SCHEMA,
        "generated_at": utc_timestamp(),
        "meta": dict(meta) if meta else {},
        "trace": trace_summary(events),
        "profile": phase_breakdown(events),
        "cost": cost_from_events(events, price=price, omega=omega, per_hit=per_hit),
        "metrics": dict(metrics) if metrics else {},
        "journal": dict(journal) if journal else None,
    }


def validate_run_report(document: Mapping[str, Any]) -> None:
    """Structural check; raises :class:`TraceSchemaError` on mismatch."""
    if document.get("schema") != RUN_REPORT_SCHEMA:
        raise TraceSchemaError(
            f"not a run report: schema={document.get('schema')!r}"
        )
    validate_trace_summary(document.get("trace", {}))
    profile = document.get("profile")
    if not isinstance(profile, dict) or "phases" not in profile:
        raise TraceSchemaError("run report field 'profile' missing or mistyped")
    cost = document.get("cost")
    if not isinstance(cost, dict) or "total_cost" not in cost:
        raise TraceSchemaError("run report field 'cost' missing or mistyped")
    if not isinstance(document.get("metrics"), dict):
        raise TraceSchemaError("run report field 'metrics' mistyped")


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value >= 1.0:
        return f"{value:.3f} s"
    return f"{value * 1000:.3f} ms"


def render_markdown(report: Mapping[str, Any]) -> str:
    """Render a RunReport as human-facing Markdown."""
    lines: List[str] = ["# CrowdSky run report", ""]
    meta = report.get("meta") or {}
    lines.append(f"Generated: {report.get('generated_at', '?')}")
    for key in sorted(meta):
        lines.append(f"- **{key}**: {meta[key]}")
    trace = report["trace"]
    lines += [
        "",
        "## Headline",
        "",
        f"| events | wall | rounds | questions | retried |",
        f"|---|---|---|---|---|",
        f"| {trace['events']} | {_fmt_seconds(trace['wall_s'])} "
        f"| {trace['rounds']} | {trace['questions']} "
        f"| {trace['retried']} |",
    ]
    if trace["faults"]:
        rendered = ", ".join(
            f"{kind}={count}" for kind, count in sorted(trace["faults"].items())
        )
        lines += ["", f"Injected faults: {rendered}"]

    profile = report["profile"]
    lines += [
        "",
        "## Where the time went",
        "",
        f"Total traced wall time: {_fmt_seconds(profile['total_wall_s'])}"
        + (
            f" (CPU {_fmt_seconds(profile['total_cpu_s'])})"
            if profile.get("total_cpu_s") is not None
            else ""
        ),
        "",
        "| phase | count | self | share | inclusive | cpu (self) |",
        "|---|---|---|---|---|---|",
    ]
    for phase in sorted(
        profile["phases"], key=lambda p: p["self_s"], reverse=True
    ):
        cpu = (
            _fmt_seconds(phase["self_cpu_s"])
            if phase.get("self_cpu_s") is not None
            else "—"
        )
        lines.append(
            f"| `{phase['name']}` | {phase['count']} "
            f"| {_fmt_seconds(phase['self_s'])} | {phase['share']:.1%} "
            f"| {_fmt_seconds(phase['wall_s'])} | {cpu} |"
        )

    cost = report["cost"]
    lines += [
        "",
        "## Where the money went",
        "",
        f"{cost['questions']} questions in {cost['rounds']} rounds → "
        f"{cost['hits']} HITs × {cost['omega']} workers × "
        f"${cost['price']:.2f} = **${cost['total_cost']:.2f}**",
    ]
    for dim, title in (
        ("by_scheduler", "By scheduler"),
        ("by_phase", "By phase"),
        ("by_layer", "By layer"),
    ):
        groups = cost.get(dim) or {}
        if not groups or set(groups) == {"(unattributed)"}:
            continue
        lines += [
            "",
            f"### {title}",
            "",
            "| group | rounds | questions | HITs | cost |",
            "|---|---|---|---|---|",
        ]
        for key in sorted(groups):
            bucket = groups[key]
            lines.append(
                f"| {key} | {bucket['rounds']} | {bucket['questions']} "
                f"| {bucket['hits']} | ${bucket['cost']:.2f} |"
            )

    journal = report.get("journal")
    if journal:
        lines += ["", "## Journal", ""]
        for key in sorted(journal):
            lines.append(f"- **{key}**: {journal[key]}")

    metrics = report.get("metrics") or {}
    fsync = {
        k: v for k, v in metrics.items()
        if k.startswith("crowdsky_journal_fsync_seconds")
        or k.startswith("crowdsky_sweep_cache_lookup_seconds")
    }
    if fsync:
        lines += [
            "",
            "## I/O latency series",
            "",
            "| series | value |",
            "|---|---|",
        ]
        for key in sorted(fsync):
            lines.append(f"| `{key}` | {fsync[key]:g} |")
    lines.append("")
    return "\n".join(lines)


def write_run_report(report: Mapping[str, Any], directory: str) -> Dict[str, str]:
    """Persist ``report.json`` + ``report.md`` atomically under
    ``directory``; returns the written paths."""
    import os

    validate_run_report(report)
    os.makedirs(directory, exist_ok=True)
    json_path = os.path.join(directory, "report.json")
    md_path = os.path.join(directory, "report.md")
    atomic_write_text(json_path, json.dumps(report, indent=2, sort_keys=True) + "\n")
    atomic_write_text(md_path, render_markdown(report))
    return {"json": json_path, "markdown": md_path}

"""Metrics registry: counters, gauges and fixed-bucket histograms.

The registry holds *series* keyed by ``(metric name, sorted labels)``.
Series are created on first touch and accumulate for the registry's
lifetime; export with :meth:`MetricsRegistry.to_prometheus` or
:meth:`MetricsRegistry.snapshot`.

Two registries exist per instrumented run:

* every :class:`~repro.crowd.platform.SimulatedCrowd` owns one
  (``crowd.metrics``) scoped to that run — it is what
  :class:`~repro.core.result.CrowdSkylineResult` reports from,
* the globally installed :class:`~repro.obs.Observation` (when tracing
  is on) receives the same increments, aggregated across every run in
  its scope — it is what ``--metrics`` exports.

The module also fixes the canonical metric names (the paper's headline
quantities) so emitters, exporters and tests never spell them ad hoc.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.exceptions import ObservabilityError

# -- canonical metric names -------------------------------------------------

#: Micro-questions posted to workers (the paper's monetary-cost driver).
QUESTIONS_ASKED = "crowdsky_questions_asked_total"
#: Executed platform rounds (the paper's latency unit).
ROUNDS = "crowdsky_rounds_total"
#: Individual worker assignments that returned a vote.
WORKER_ASSIGNMENTS = "crowdsky_worker_assignments_total"
#: Questions served from the platform answer cache (never re-asked).
CACHE_HITS = "crowdsky_cache_hits_total"
#: Attribute-questions answerable from the preference graph (directly or
#: via transitivity) without asking the crowd.
QUESTIONS_SAVED_TRANSITIVITY = "crowdsky_questions_saved_transitivity_total"
#: Pair-relation lookups answered from the preference system's memo
#: (no closure query needed), labelled by ``backend``.
PREF_CACHE_HITS = "crowdsky_pref_cache_hits_total"
#: Incremental transitive-closure maintenance updates (per-node set or
#: bitset writes), labelled by ``backend``.
CLOSURE_UPDATES = "crowdsky_closure_updates_total"
#: Question re-posts after an injected fault.
RETRIES = "crowdsky_retries_total"
#: Missed deadlines: expired HITs plus per-question retry deadlines.
TIMEOUTS = "crowdsky_timeouts_total"
#: Idle rounds spent waiting out retry backoff.
BACKOFF_ROUNDS = "crowdsky_backoff_rounds_total"
#: Questions permanently given up on, labelled by ``reason``.
UNRESOLVED_QUESTIONS = "crowdsky_unresolved_questions_total"
#: Answers aggregated from fewer votes than assigned or from spam.
DEGRADED_ANSWERS = "crowdsky_degraded_answers_total"
#: Injected fault events, labelled by ``kind``.
FAULTS_INJECTED = "crowdsky_faults_injected_total"
#: Rounds refused because they would exceed the question budget.
BUDGET_DENIALS = "crowdsky_budget_denials_total"
#: Tuples whose skyline status was decided.
TUPLES_EVALUATED = "crowdsky_tuples_evaluated_total"
#: Histogram of executed round sizes (questions per round).
ROUND_SIZE = "crowdsky_round_size_questions"
#: Histogram of verdicts committed per closure transaction (one
#: :meth:`~repro.core.preference.PreferenceSystem.apply_verdicts` call
#: per crowd round).
CLOSURE_BATCH_SIZE = "crowdsky_closure_batch_size"
#: Wall seconds spent per instrumented phase, labelled by ``phase``.
PHASE_SECONDS = "crowdsky_phase_seconds_total"
#: Derived gauge: worker assignments per posted question.
MEAN_VOTES_PER_QUESTION = "crowdsky_mean_votes_per_question"
#: Sweep cells finished, labelled by ``status`` (computed / cached).
SWEEP_CELLS = "crowdsky_sweep_cells_total"
#: Records appended to the write-ahead vote journal.
JOURNAL_RECORDS = "crowdsky_journal_records_total"
#: Postings served from a journal replay instead of a live backend.
REPLAYED_POSTINGS = "crowdsky_replayed_postings_total"
#: Seconds spent in one journal flush+fsync (histogram; the durability
#: tax every committed posting pays).
JOURNAL_FSYNC_SECONDS = "crowdsky_journal_fsync_seconds"
#: Seconds spent in one sweep-cache lookup or store (histogram),
#: labelled by ``status`` (hit / miss / corrupt / store).
SWEEP_CACHE_LOOKUP_SECONDS = "crowdsky_sweep_cache_lookup_seconds"
#: Candidate tuples shipped from shards to the merge coordinator by the
#: sharded machine phase (stays near the skyline size, not ``n``).
SHARD_TUPLES_SHIPPED = "crowdsky_shard_tuples_shipped_total"
#: Candidate pairs evaluated by the sharded machine phase, labelled by
#: ``stage`` (local / merge).
SHARD_DOMINANCE_CHECKS = "crowdsky_shard_dominance_checks_total"

#: Bucket upper bounds for :data:`ROUND_SIZE`.
ROUND_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0)

#: Bucket upper bounds (seconds) for the I/O latency histograms
#: (:data:`JOURNAL_FSYNC_SECONDS`, :data:`SWEEP_CACHE_LOOKUP_SECONDS`).
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0,
)

#: Default help strings attached on first registration.
DEFAULT_HELP: Dict[str, str] = {
    QUESTIONS_ASKED: "Micro-questions posted to the crowd",
    ROUNDS: "Executed platform rounds",
    WORKER_ASSIGNMENTS: "Worker assignments that returned a vote",
    CACHE_HITS: "Questions served from the platform answer cache",
    QUESTIONS_SAVED_TRANSITIVITY:
        "Attribute-questions derived from the preference graph for free",
    PREF_CACHE_HITS:
        "Pair-relation lookups served from the preference-system memo",
    CLOSURE_UPDATES:
        "Transitive-closure maintenance updates in the preference graphs",
    RETRIES: "Question re-posts after an injected fault",
    TIMEOUTS: "Expired HITs plus missed per-question retry deadlines",
    BACKOFF_ROUNDS: "Idle rounds spent waiting out retry backoff",
    UNRESOLVED_QUESTIONS: "Questions permanently given up on",
    DEGRADED_ANSWERS: "Answers aggregated from partial or spam votes",
    FAULTS_INJECTED: "Injected platform fault events",
    BUDGET_DENIALS: "Rounds refused by the question budget",
    TUPLES_EVALUATED: "Tuples whose skyline status was decided",
    ROUND_SIZE: "Questions per executed round",
    CLOSURE_BATCH_SIZE: "Verdicts committed per closure transaction",
    PHASE_SECONDS: "Wall seconds spent per instrumented phase",
    MEAN_VOTES_PER_QUESTION: "Worker assignments per posted question",
    SWEEP_CELLS: "Sweep cells finished, by status",
    JOURNAL_RECORDS: "Records appended to the write-ahead vote journal",
    REPLAYED_POSTINGS: "Postings served from a journal replay",
    JOURNAL_FSYNC_SECONDS: "Seconds spent in one journal flush+fsync",
    SWEEP_CACHE_LOOKUP_SECONDS:
        "Seconds spent in one sweep-cache lookup or store, by status",
    SHARD_TUPLES_SHIPPED:
        "Candidate tuples shipped from shards to the merge coordinator",
    SHARD_DOMINANCE_CHECKS:
        "Candidate pairs evaluated by the sharded machine phase, by stage",
}

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: _LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """Monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str, labels: _LabelKey):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up")
        self.value += amount


class Gauge:
    """Value that can go up and down (or be set outright)."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str, labels: _LabelKey):
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-boundary cumulative histogram (Prometheus semantics)."""

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum",
                 "count")

    def __init__(
        self, name: str, help: str, labels: _LabelKey,
        buckets: Tuple[float, ...],
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                "histogram buckets must be a non-empty ascending sequence"
            )
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # last bucket is +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1
                return
        self.counts[-1] += 1

    def cumulative(self) -> List[int]:
        """Cumulative per-bucket counts ending with the +Inf bucket."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out


class MetricsRegistry:
    """Get-or-create home for metric series."""

    def __init__(self) -> None:
        self._series: Dict[Tuple[str, _LabelKey], Any] = {}

    def _get(self, cls, name: str, help: str, labels: Dict[str, str],
             **kwargs: Any):
        key = (name, _label_key(labels))
        series = self._series.get(key)
        if series is None:
            series = cls(
                name, help or DEFAULT_HELP.get(name, ""), key[1], **kwargs
            )
            self._series[key] = series
        elif not isinstance(series, cls):
            raise ObservabilityError(
                f"metric {name!r} already registered as {series.kind}"
            )
        return series

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: str) -> Gauge:
        return self._get(Gauge, name, help, labels)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Iterable[float] = ROUND_SIZE_BUCKETS,
        **labels: str,
    ) -> Histogram:
        return self._get(
            Histogram, name, help, labels, buckets=tuple(buckets)
        )

    # -- reading ------------------------------------------------------------

    def value(self, name: str, **labels: str) -> float:
        """Current value of one series (a histogram's observation count);
        0.0 when the series does not exist."""
        series = self._series.get((name, _label_key(labels)))
        if series is None:
            return 0.0
        if isinstance(series, Histogram):
            return float(series.count)
        return float(series.value)

    def total(self, name: str) -> float:
        """Sum of a metric across all of its label sets."""
        total = 0.0
        for (series_name, _), series in self._series.items():
            if series_name != name:
                continue
            if isinstance(series, Histogram):
                total += series.count
            else:
                total += series.value
        return total

    def series(self) -> List[Any]:
        """All series, sorted by (name, labels) for stable export."""
        return [
            self._series[key] for key in sorted(self._series.keys())
        ]

    def snapshot(self) -> Dict[str, float]:
        """Flat ``{'name{labels}': value}`` view (histograms expand to
        ``_sum`` / ``_count`` / cumulative ``_bucket`` keys)."""
        out: Dict[str, float] = {}
        for series in self.series():
            rendered = _render_labels(series.labels)
            if isinstance(series, Histogram):
                cumulative = series.cumulative()
                bounds = [str(b) for b in series.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    labels = dict(series.labels)
                    labels["le"] = bound
                    key = (
                        f"{series.name}_bucket"
                        f"{_render_labels(_label_key(labels))}"
                    )
                    out[key] = float(count)
                out[f"{series.name}_sum{rendered}"] = series.sum
                out[f"{series.name}_count{rendered}"] = float(series.count)
            else:
                out[f"{series.name}{rendered}"] = float(series.value)
        return out

    # -- cross-process merging ----------------------------------------------

    def dump(self) -> List[Dict[str, Any]]:
        """Serialize every series to JSON-able dicts (for shipping a
        worker process's registry back to the parent; see
        :meth:`absorb`)."""
        out: List[Dict[str, Any]] = []
        for series in self.series():
            record: Dict[str, Any] = {
                "kind": series.kind,
                "name": series.name,
                "help": series.help,
                "labels": [list(pair) for pair in series.labels],
            }
            if isinstance(series, Histogram):
                record["buckets"] = list(series.buckets)
                record["counts"] = list(series.counts)
                record["sum"] = series.sum
                record["count"] = series.count
            else:
                record["value"] = series.value
            out.append(record)
        return out

    def absorb(self, records: Iterable[Dict[str, Any]]) -> None:
        """Merge a :meth:`dump` from another registry into this one.

        Counters and gauges add their values; histograms add per-bucket
        counts (boundaries must match). Used to fold worker-process
        metrics into the parent observation after a parallel sweep.
        """
        for record in records:
            labels = {k: v for k, v in record.get("labels", [])}
            kind = record.get("kind")
            name = record["name"]
            help_text = record.get("help", "")
            if kind == "histogram":
                series = self.histogram(
                    name, help_text,
                    buckets=tuple(record["buckets"]), **labels,
                )
                if list(series.buckets) != [
                    float(b) for b in record["buckets"]
                ]:
                    raise ObservabilityError(
                        f"histogram {name!r} bucket mismatch on absorb"
                    )
                for index, count in enumerate(record["counts"]):
                    series.counts[index] += count
                series.sum += record["sum"]
                series.count += record["count"]
            elif kind == "gauge":
                self.gauge(name, help_text, **labels).inc(record["value"])
            elif kind == "counter":
                self.counter(name, help_text, **labels).inc(
                    record["value"]
                )
            else:
                raise ObservabilityError(
                    f"cannot absorb series of kind {kind!r}"
                )

    def to_prometheus(self) -> str:
        """Prometheus text exposition of every series."""
        lines: List[str] = []
        described = set()
        for series in self.series():
            if series.name not in described:
                described.add(series.name)
                if series.help:
                    lines.append(f"# HELP {series.name} {series.help}")
                lines.append(f"# TYPE {series.name} {series.kind}")
            rendered = _render_labels(series.labels)
            if isinstance(series, Histogram):
                cumulative = series.cumulative()
                bounds = [_format(b) for b in series.buckets] + ["+Inf"]
                for bound, count in zip(bounds, cumulative):
                    labels = dict(series.labels)
                    labels["le"] = bound
                    lines.append(
                        f"{series.name}_bucket"
                        f"{_render_labels(_label_key(labels))} {count}"
                    )
                lines.append(
                    f"{series.name}_sum{rendered} {_format(series.sum)}"
                )
                lines.append(
                    f"{series.name}_count{rendered} {series.count}"
                )
            else:
                lines.append(
                    f"{series.name}{rendered} {_format(series.value)}"
                )
        return "\n".join(lines) + ("\n" if lines else "")


def _format(value: float) -> str:
    """Render a sample value (integers without a trailing ``.0``)."""
    if float(value).is_integer():
        return str(int(value))
    return f"{value:.10g}"

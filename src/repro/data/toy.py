"""The paper's worked toy datasets (Figures 1 and 3).

The paper never states the latent ``A3`` values, only the preference
relationships revealed by the worked examples. We derived total orders
consistent with *every* example:

* **Figure 1 dataset** — Examples 2-8, Tables 1-3 and Figures 2/4 imply
  (writing ``x ≺ y`` for "x preferred over y in A3"):
  ``b ≺ a``, ``e ≺ b``, ``f ≺ e``, ``e ≺ {c, d, g, i}``, ``h ≺ e``,
  ``f ≺ h``, ``k ≺ i``, ``i ≺ l``, ``f ≺ j``. The total order
  ``f ≺ h ≺ e ≺ k ≺ i ≺ b ≺ l ≺ g ≺ d ≺ c ≺ a ≺ j`` satisfies all of
  them and reproduces the paper's question/round counts exactly
  (12 questions serial, 9 rounds ParallelDSet, 6 rounds ParallelSL,
  final skyline ``{b, e, i, l, k, f, h}``).
* **Figure 3 dataset** — §3.4's anti-correlated example where ``e``
  dominates ``{b, i, j}`` in ``AC`` and each remaining tuple is resolved
  with a single question against ``e`` (9 questions total). We use
  ``e ≺ b ≺ i ≺ j ≺ a ≺ c ≺ d ≺ f ≺ g ≺ h``.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)

#: Known values of the Figure 1(a) toy dataset, smaller preferred.
FIGURE1_KNOWN: Dict[str, Sequence[float]] = {
    "a": (2, 8),
    "b": (1, 6),
    "c": (4, 10),
    "d": (5, 7),
    "e": (4, 4),
    "f": (5, 9),
    "g": (6, 5),
    "h": (7, 7),
    "i": (7, 2),
    "j": (8, 9),
    "k": (9, 3),
    "l": (9, 1),
}

#: Latent A3 preference order for Figure 1 (rank 1 = most preferred).
FIGURE1_LATENT_ORDER: Sequence[str] = (
    "f", "h", "e", "k", "i", "b", "l", "g", "d", "c", "a", "j",
)

#: The paper's final crowdsourced skyline for the Figure 1 dataset.
FIGURE1_SKYLINE_LABELS = frozenset({"b", "e", "i", "l", "k", "f", "h"})

#: Known values of the Figure 3(a) anti-correlated toy dataset.
FIGURE3_KNOWN: Dict[str, Sequence[float]] = {
    "b": (2, 5),
    "e": (3, 4),
    "i": (4, 2),
    "j": (5, 1),
    "a": (5, 10),
    "c": (6, 9),
    "f": (7, 8),
    "d": (8, 7),
    "g": (9, 6),
    "h": (10, 5),
}

#: Latent A3 preference order for Figure 3 (``e`` most preferred).
FIGURE3_LATENT_ORDER: Sequence[str] = (
    "e", "b", "i", "j", "a", "c", "d", "f", "g", "h",
)


def _build_toy(
    known: Dict[str, Sequence[float]], latent_order: Sequence[str]
) -> Relation:
    schema = Schema(
        [
            Attribute("A1", AttributeKind.KNOWN, Direction.MIN),
            Attribute("A2", AttributeKind.KNOWN, Direction.MIN),
            Attribute("A3", AttributeKind.CROWD, Direction.MIN),
        ]
    )
    rank = {label: float(i + 1) for i, label in enumerate(latent_order)}
    rows = [
        Tuple(known=tuple(values), latent=(rank[label],), label=label)
        for label, values in known.items()
    ]
    return Relation(schema, rows)


def figure1_dataset() -> Relation:
    """The 12-tuple toy dataset of Figure 1 with a consistent latent order."""
    return _build_toy(FIGURE1_KNOWN, FIGURE1_LATENT_ORDER)


def figure3_dataset() -> Relation:
    """The 10-tuple anti-correlated toy dataset of Figure 3 (§3.4)."""
    return _build_toy(FIGURE3_KNOWN, FIGURE3_LATENT_ORDER)

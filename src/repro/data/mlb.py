"""The MLB pitchers dataset for query Q3 (paper §6.2).

The paper uses 40 MLB pitchers from the 2013 season with
``AK = {wins MAX, strike_outs MAX, ERA MIN}`` and the crowd attribute
``valuable MAX`` — how valuable crowds believe each pitcher is. The paper
validates the crowdsourced skyline against the 2013 Cy Young award
candidates and reports the skyline
``{Clayton Kershaw, Bartolo Colon, Yu Darvish, Max Scherzer}``.

Reproduction: we embed 40 pitchers with their (approximate) 2013 season
statistics. The latent "valuable" ground truth is a WAR-style composite
``2·W + 0.05·SO + 15·(5 − ERA)`` — strictly increasing in wins and
strikeouts and decreasing in ERA, so perceived value is consistent with
pitching dominance (a pitcher beaten on every stat is also perceived as
less valuable). Under that model the crowdsourced skyline equals the
paper's four Cy Young candidates; the unit tests pin this.
"""

from __future__ import annotations

from typing import Sequence, Tuple as TupleT

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)

#: (name, wins, strikeouts, ERA) for the 2013 season (approximate).
PITCHERS: Sequence[TupleT[str, int, int, float]] = (
    ("Clayton Kershaw", 16, 232, 1.83),
    ("Max Scherzer", 21, 240, 2.90),
    ("Yu Darvish", 13, 277, 2.83),
    ("Bartolo Colon", 18, 117, 2.65),
    ("Adam Wainwright", 19, 219, 2.94),
    ("Jordan Zimmermann", 19, 161, 3.25),
    ("Francisco Liriano", 16, 163, 3.02),
    ("Chris Sale", 11, 226, 3.07),
    ("Matt Harvey", 9, 191, 2.27),
    ("Jose Fernandez", 12, 187, 2.19),
    ("Zack Greinke", 15, 148, 2.63),
    ("Hisashi Iwakuma", 14, 185, 2.66),
    ("Madison Bumgarner", 13, 199, 2.77),
    ("Cliff Lee", 14, 222, 2.87),
    ("Felix Hernandez", 12, 216, 3.04),
    ("Stephen Strasburg", 8, 191, 3.00),
    ("Anibal Sanchez", 14, 202, 2.57),
    ("John Lackey", 10, 161, 3.52),
    ("David Price", 10, 151, 3.33),
    ("Justin Verlander", 13, 217, 3.46),
    ("James Shields", 13, 196, 3.15),
    ("Hiroki Kuroda", 11, 150, 3.31),
    ("Sonny Gray", 5, 67, 2.67),
    ("Kris Medlen", 15, 157, 3.11),
    ("Julio Teheran", 14, 170, 3.20),
    ("Mike Minor", 13, 181, 3.21),
    ("Scott Kazmir", 10, 162, 4.04),
    ("Chris Tillman", 16, 179, 3.71),
    ("Lance Lynn", 15, 198, 3.97),
    ("Michael Wacha", 4, 65, 2.78),
    ("Patrick Corbin", 14, 178, 3.41),
    ("Hyun-Jin Ryu", 14, 154, 3.00),
    ("Travis Wood", 9, 144, 3.11),
    ("Shelby Miller", 15, 169, 3.06),
    ("Ian Kennedy", 7, 163, 4.91),
    ("Jeff Samardzija", 8, 214, 4.34),
    ("R.A. Dickey", 14, 177, 4.21),
    ("Gio Gonzalez", 11, 192, 3.36),
    ("Homer Bailey", 11, 199, 3.49),
    ("Mat Latos", 14, 187, 3.16),
)

#: The paper's reported crowdsourced skyline for Q3 (Cy Young candidates).
PAPER_Q3_SKYLINE = frozenset(
    {"Clayton Kershaw", "Bartolo Colon", "Yu Darvish", "Max Scherzer"}
)


def perceived_value(wins: int, strikeouts: int, era: float) -> float:
    """WAR-style latent value, strictly monotone in each pitching stat."""
    return 2.0 * wins + 0.05 * strikeouts + 15.0 * (5.0 - era)


def mlb_dataset() -> Relation:
    """Build the Q3 MLB pitchers relation (40 tuples)."""
    schema = Schema(
        [
            Attribute("wins", AttributeKind.KNOWN, Direction.MAX),
            Attribute("strike_outs", AttributeKind.KNOWN, Direction.MAX),
            Attribute("era", AttributeKind.KNOWN, Direction.MIN),
            Attribute("valuable", AttributeKind.CROWD, Direction.MAX),
        ]
    )
    rows = [
        Tuple(
            known=(float(wins), float(so), era),
            latent=(perceived_value(wins, so, era),),
            label=name,
        )
        for name, wins, so, era in PITCHERS
    ]
    return Relation(schema, rows)

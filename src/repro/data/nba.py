"""An NBA players dataset — a fourth domain corpus beyond the paper's Q1-Q3.

Multi-criteria player comparison is the skyline literature's classic
motivating example (Börzsönyi et al. open with it), and it slots directly
into the crowd-enabled formulation: per-game statistics are machine-known
while "overall impact" is a matter of crowd judgment.

``AK = {points, rebounds, assists}`` (all MAX) over 50 players'
2012-13-season per-game lines; the crowd attribute ``impact MAX`` uses a
monotone composite of the stat line as its latent ground truth, so a
player strictly beaten on every stat is also perceived as less impactful
— the same modelling rule as the MLB dataset (see DESIGN.md).
"""

from __future__ import annotations

from typing import Sequence, Tuple as TupleT

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)

#: (name, points, rebounds, assists) per game, 2012-13 season (approx.).
PLAYERS: Sequence[TupleT[str, float, float, float]] = (
    ("Carmelo Anthony", 28.7, 6.9, 2.6),
    ("Kevin Durant", 28.1, 7.9, 4.6),
    ("Kobe Bryant", 27.3, 5.6, 6.0),
    ("LeBron James", 26.8, 8.0, 7.3),
    ("James Harden", 25.9, 4.9, 5.8),
    ("Russell Westbrook", 23.2, 5.2, 7.4),
    ("Stephen Curry", 22.9, 4.0, 6.9),
    ("Kyrie Irving", 22.5, 3.7, 5.9),
    ("Dwyane Wade", 21.2, 5.0, 5.1),
    ("LaMarcus Aldridge", 21.1, 9.1, 2.6),
    ("Tony Parker", 20.3, 3.0, 7.6),
    ("Blake Griffin", 18.0, 8.3, 3.7),
    ("Dwight Howard", 17.1, 12.4, 1.4),
    ("David Lee", 18.5, 11.2, 3.5),
    ("Brook Lopez", 19.4, 6.9, 0.9),
    ("Zach Randolph", 15.4, 11.2, 1.4),
    ("Chris Paul", 16.9, 3.7, 9.7),
    ("Deron Williams", 18.9, 3.0, 7.7),
    ("Rajon Rondo", 13.7, 5.6, 11.1),
    ("Tim Duncan", 17.8, 9.9, 2.7),
    ("Marc Gasol", 14.1, 7.8, 4.0),
    ("Joakim Noah", 11.9, 11.1, 4.0),
    ("Al Horford", 17.4, 10.2, 3.2),
    ("Paul George", 17.4, 7.6, 4.1),
    ("Monta Ellis", 19.2, 3.9, 6.0),
    ("Jrue Holiday", 17.7, 4.2, 8.0),
    ("Damian Lillard", 19.0, 3.1, 6.5),
    ("Al Jefferson", 17.8, 9.2, 2.1),
    ("Josh Smith", 17.5, 8.4, 4.2),
    ("Greg Monroe", 16.0, 9.6, 3.5),
    ("DeMarcus Cousins", 17.1, 9.9, 2.7),
    ("Paul Pierce", 18.6, 6.3, 4.8),
    ("Ty Lawson", 16.7, 2.7, 6.9),
    ("Mike Conley", 14.6, 2.8, 6.1),
    ("John Wall", 18.5, 4.0, 7.6),
    ("Nikola Vucevic", 13.1, 11.9, 1.9),
    ("Serge Ibaka", 13.2, 7.7, 0.5),
    ("Kenneth Faried", 11.5, 9.2, 1.0),
    ("Anderson Varejao", 14.1, 14.4, 3.4),
    ("Kevin Love", 18.3, 14.0, 2.3),
    ("Pau Gasol", 13.7, 8.6, 4.1),
    ("Chris Bosh", 16.6, 6.8, 1.7),
    ("Luol Deng", 16.5, 6.3, 3.0),
    ("Thaddeus Young", 14.8, 7.5, 1.6),
    ("Jeff Green", 12.8, 3.9, 1.6),
    ("Klay Thompson", 16.6, 3.7, 2.2),
    ("George Hill", 14.2, 3.7, 4.7),
    ("Goran Dragic", 14.7, 3.1, 7.4),
    ("Nicolas Batum", 14.3, 5.6, 4.9),
    ("Andre Iguodala", 13.0, 5.3, 5.4),
)

#: Latent "impact" weights: points carry most signal, playmaking and
#: rebounding add to it. Strictly increasing in every stat.
_POINT_WEIGHT = 1.0
_REBOUND_WEIGHT = 1.2
_ASSIST_WEIGHT = 1.5


def perceived_impact(points: float, rebounds: float, assists: float) -> float:
    """Monotone composite latent for the ``impact`` crowd attribute."""
    return (
        _POINT_WEIGHT * points
        + _REBOUND_WEIGHT * rebounds
        + _ASSIST_WEIGHT * assists
    )


def nba_dataset() -> Relation:
    """Build the NBA players relation (50 tuples)."""
    schema = Schema(
        [
            Attribute("points", AttributeKind.KNOWN, Direction.MAX),
            Attribute("rebounds", AttributeKind.KNOWN, Direction.MAX),
            Attribute("assists", AttributeKind.KNOWN, Direction.MAX),
            Attribute("impact", AttributeKind.CROWD, Direction.MAX),
        ]
    )
    rows = [
        Tuple(
            known=(points, rebounds, assists),
            latent=(perceived_impact(points, rebounds, assists),),
            label=name,
        )
        for name, points, rebounds, assists in PLAYERS
    ]
    return Relation(schema, rows)

"""Relation model with known and crowd attributes (paper §2.2).

The paper splits the attribute set ``A`` into *known* attributes ``AK``
whose values live in the database and *crowd* attributes ``AC`` whose
values are all missing (the "hand-off crowdsourcing" setting) and must be
elicited from workers. This module provides:

* :class:`Attribute` — name, kind (known/crowd) and preference direction,
* :class:`Schema` — an ordered, validated attribute list,
* :class:`Tuple` — one row: known values plus *latent* crowd values
  (the hidden ground truth that only the simulated crowd may consult),
* :class:`Relation` — a schema plus rows, with vectorized accessors.

Preference canonicalization
---------------------------
The paper assumes "smaller values over AK are more preferred". User-facing
schemas may declare ``MAX`` attributes (e.g. ``box_office MAX``); the
relation canonicalizes every attribute to smaller-is-better internally via
:meth:`Relation.known_matrix`, so all skyline code works in one convention.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple as TupleT

import numpy as np

from repro.exceptions import DataError, SchemaError, UnknownAttributeError


class AttributeKind(enum.Enum):
    """Whether an attribute's values are machine-known or crowd-assessed."""

    KNOWN = "known"
    CROWD = "crowd"


class Direction(enum.Enum):
    """Preference direction of an attribute.

    ``MIN`` means smaller values are preferred (the paper's canonical
    convention); ``MAX`` means larger values are preferred.
    """

    MIN = "min"
    MAX = "max"


@dataclass(frozen=True)
class Attribute:
    """A single attribute of the relation schema.

    Parameters
    ----------
    name:
        Attribute name, unique within a schema.
    kind:
        :attr:`AttributeKind.KNOWN` for machine attributes in ``AK`` or
        :attr:`AttributeKind.CROWD` for crowd attributes in ``AC``.
    direction:
        Preference direction. For crowd attributes the direction applies
        to the *latent* ground-truth values consulted by simulated
        workers.
    """

    name: str
    kind: AttributeKind = AttributeKind.KNOWN
    direction: Direction = Direction.MIN

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("attribute name must be non-empty")

    @property
    def is_known(self) -> bool:
        """True when the attribute belongs to ``AK``."""
        return self.kind is AttributeKind.KNOWN

    @property
    def is_crowd(self) -> bool:
        """True when the attribute belongs to ``AC``."""
        return self.kind is AttributeKind.CROWD


class Schema:
    """An ordered collection of attributes defining ``A = AK ∪ AC``.

    The two attribute subsets are disjoint by construction: each attribute
    carries its own :class:`AttributeKind`.
    """

    def __init__(self, attributes: Iterable[Attribute]):
        self._attributes: TupleT[Attribute, ...] = tuple(attributes)
        if not self._attributes:
            raise SchemaError("schema needs at least one attribute")
        names = [attr.name for attr in self._attributes]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        self._index = {attr.name: i for i, attr in enumerate(self._attributes)}
        self._known = tuple(a for a in self._attributes if a.is_known)
        self._crowd = tuple(a for a in self._attributes if a.is_crowd)

    @classmethod
    def simple(
        cls,
        num_known: int,
        num_crowd: int,
        direction: Direction = Direction.MIN,
    ) -> "Schema":
        """Build an anonymous schema ``A1..Ak`` known, ``C1..Cm`` crowd."""
        if num_known < 0 or num_crowd < 0:
            raise SchemaError("attribute counts must be non-negative")
        attrs = [
            Attribute(f"A{i + 1}", AttributeKind.KNOWN, direction)
            for i in range(num_known)
        ]
        attrs += [
            Attribute(f"C{j + 1}", AttributeKind.CROWD, direction)
            for j in range(num_crowd)
        ]
        return cls(attrs)

    @property
    def attributes(self) -> TupleT[Attribute, ...]:
        """All attributes in declaration order."""
        return self._attributes

    @property
    def known_attributes(self) -> TupleT[Attribute, ...]:
        """The attributes of ``AK`` in declaration order."""
        return self._known

    @property
    def crowd_attributes(self) -> TupleT[Attribute, ...]:
        """The attributes of ``AC`` in declaration order."""
        return self._crowd

    @property
    def num_known(self) -> int:
        """``|AK|``."""
        return len(self._known)

    @property
    def num_crowd(self) -> int:
        """``|AC|``."""
        return len(self._crowd)

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by name, raising on unknown names."""
        try:
            return self._attributes[self._index[name]]
        except KeyError:
            raise UnknownAttributeError(
                f"schema has no attribute named {name!r}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        known = ", ".join(a.name for a in self._known)
        crowd = ", ".join(a.name for a in self._crowd)
        return f"Schema(AK=[{known}], AC=[{crowd}])"


@dataclass(frozen=True)
class Tuple:
    """One row of a relation.

    ``known`` holds the values over ``AK`` in schema order. ``latent``
    holds the hidden ground-truth values over ``AC`` in schema order —
    per the paper these are *never* visible to the algorithms; only the
    crowd oracle (simulated workers) may consult them to answer
    questions. ``label`` is an optional human-readable id used by the toy
    datasets (``a`` .. ``l``) and the real-life datasets (movie titles).
    """

    known: TupleT[float, ...]
    latent: TupleT[float, ...] = ()
    label: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "known", tuple(float(v) for v in self.known))
        object.__setattr__(self, "latent", tuple(float(v) for v in self.latent))

    def __repr__(self) -> str:
        name = self.label or "t"
        ks = ", ".join(f"{v:g}" for v in self.known)
        return f"{name}({ks})"


class Relation:
    """A dataset instance ``R`` over a :class:`Schema`.

    Tuples are addressed by their integer index (stable for the lifetime
    of the relation); labels are kept for presentation. The relation also
    exposes canonicalized numpy matrices used by the vectorized skyline
    substrate.
    """

    def __init__(self, schema: Schema, tuples: Iterable[Tuple]):
        self._schema = schema
        self._tuples: List[Tuple] = list(tuples)
        for i, row in enumerate(self._tuples):
            if len(row.known) != schema.num_known:
                raise DataError(
                    f"tuple {i} has {len(row.known)} known values, schema "
                    f"expects {schema.num_known}"
                )
            if row.latent and len(row.latent) != schema.num_crowd:
                raise DataError(
                    f"tuple {i} has {len(row.latent)} latent values, schema "
                    f"expects {schema.num_crowd}"
                )
        self._known_matrix: Optional[np.ndarray] = None
        self._latent_matrix: Optional[np.ndarray] = None

    @property
    def schema(self) -> Schema:
        """The relation's schema."""
        return self._schema

    @property
    def tuples(self) -> Sequence[Tuple]:
        """All tuples in index order (read-only view)."""
        return tuple(self._tuples)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple]:
        return iter(self._tuples)

    def __getitem__(self, index: int) -> Tuple:
        return self._tuples[index]

    def label(self, index: int) -> str:
        """Human-readable label of a tuple (falls back to ``t<index>``)."""
        row = self._tuples[index]
        return row.label if row.label is not None else f"t{index}"

    def index_of(self, label: str) -> int:
        """Index of the tuple carrying ``label`` (first match)."""
        for i, row in enumerate(self._tuples):
            if row.label == label:
                return i
        raise DataError(f"no tuple labelled {label!r}")

    def known_matrix(self) -> np.ndarray:
        """Known values as an ``(n, |AK|)`` float array, smaller-is-better.

        ``MAX`` attributes are negated so that all downstream dominance
        code can assume the paper's canonical "smaller preferred"
        convention.
        """
        if self._known_matrix is None:
            data = np.asarray([row.known for row in self._tuples], dtype=float)
            if data.size == 0:
                data = data.reshape(len(self._tuples), self._schema.num_known)
            for j, attr in enumerate(self._schema.known_attributes):
                if attr.direction is Direction.MAX:
                    data[:, j] = -data[:, j]
            self._known_matrix = data
        return self._known_matrix

    def latent_matrix(self) -> np.ndarray:
        """Latent crowd values as ``(n, |AC|)``, smaller-is-better.

        Only the simulated crowd (oracle/workers) and accuracy metrics may
        consult this; algorithms must not.
        """
        if self._latent_matrix is None:
            if any(not row.latent for row in self._tuples) and self._schema.num_crowd:
                raise DataError(
                    "relation has crowd attributes but some tuples lack "
                    "latent values"
                )
            data = np.asarray(
                [row.latent for row in self._tuples], dtype=float
            ).reshape(len(self._tuples), self._schema.num_crowd)
            for j, attr in enumerate(self._schema.crowd_attributes):
                if attr.direction is Direction.MAX:
                    data[:, j] = -data[:, j]
            self._latent_matrix = data
        return self._latent_matrix

    def subset(self, indices: Sequence[int]) -> "Relation":
        """A new relation holding the given tuples (re-indexed)."""
        return Relation(self._schema, [self._tuples[i] for i in indices])

    def __repr__(self) -> str:
        return f"Relation(n={len(self)}, schema={self._schema!r})"


def relation_fingerprint(relation: Relation) -> str:
    """Content hash of a relation: schema plus canonical matrices.

    Two relations fingerprint equal exactly when every algorithm (and
    the simulated crowd's oracle, which reads the latent matrix) would
    behave identically on them. A crowd run's journal header records
    this so a resume can refuse to replay against the wrong dataset.
    Labels are presentation-only and deliberately excluded.
    """
    digest = hashlib.sha256()
    for attr in relation.schema.attributes:
        digest.update(
            f"{attr.name}|{attr.kind.value}|{attr.direction.value};".encode()
        )
    digest.update(b"#known#")
    digest.update(relation.known_matrix().tobytes())
    if relation.schema.num_crowd:
        digest.update(b"#latent#")
        digest.update(relation.latent_matrix().tobytes())
    return digest.hexdigest()

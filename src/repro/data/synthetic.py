"""Synthetic benchmark data generators (paper §6.1).

The paper evaluates on the classic skyline benchmark distributions of
Börzsönyi, Kossmann and Stocker (ICDE 2001): *independent* (IND) and
*anti-correlated* (ANT). We additionally provide *correlated* (COR) for
completeness. All attribute values are drawn from ``[0, 1]``; the crowd
attributes receive latent values from the same distribution, used only by
the simulated crowd to answer questions (as in the paper).

The anti-correlated generator follows the original benchmark recipe:
points are placed close to the hyperplane ``Σ x_i = d/2`` by starting all
coordinates at a plane position ``v ~ N(0.5, σ)`` and performing random
pairwise value exchanges that keep the sum constant, so a tuple that is
good in one dimension tends to be bad in another — the regime where many
``AK``-non-skyline tuples turn into skyline tuples in ``A`` (§3.4).
"""

from __future__ import annotations

import enum
from typing import Optional

import numpy as np

from repro.data.relation import Relation, Schema, Tuple
from repro.exceptions import DataError


class Distribution(enum.Enum):
    """Synthetic data distribution (Börzsönyi benchmark)."""

    INDEPENDENT = "IND"
    ANTI_CORRELATED = "ANT"
    CORRELATED = "COR"

    @classmethod
    def parse(cls, text: str) -> "Distribution":
        """Parse ``IND``/``ANT``/``COR`` (case-insensitive)."""
        key = text.strip().upper()
        for member in cls:
            if member.value == key or member.name == key:
                return member
        raise DataError(f"unknown distribution {text!r}")


_PLANE_SIGMA = 0.5 / 6.0  # keeps v within [0, 1] at ~3 sigma


def _sample_plane_positions(rng: np.random.Generator, n: int) -> np.ndarray:
    """Positions of the anti-correlation hyperplane, clipped resamples."""
    values = rng.normal(0.5, _PLANE_SIGMA, size=n)
    bad = (values < 0.0) | (values > 1.0)
    while np.any(bad):
        values[bad] = rng.normal(0.5, _PLANE_SIGMA, size=int(bad.sum()))
        bad = (values < 0.0) | (values > 1.0)
    return values


def _independent(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    return rng.random((n, d))


def _anti_correlated(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    if d == 1:
        return rng.random((n, 1))
    data = np.repeat(_sample_plane_positions(rng, n)[:, None], d, axis=1)
    # Random sum-preserving exchanges between attribute pairs. Several
    # passes decorrelate the coordinates along the hyperplane.
    exchanges = max(2 * d, 6)
    for _ in range(exchanges):
        i, j = rng.choice(d, size=2, replace=False)
        # The transferable amount keeps both coordinates inside [0, 1].
        low = -np.minimum(data[:, i], 1.0 - data[:, j])
        high = np.minimum(1.0 - data[:, i], data[:, j])
        delta = rng.uniform(low, high)
        data[:, i] += delta
        data[:, j] -= delta
    return data


def _correlated(rng: np.random.Generator, n: int, d: int) -> np.ndarray:
    base = _sample_plane_positions(rng, n)[:, None]
    jitter = rng.normal(0.0, 0.05, size=(n, d))
    return np.clip(base + jitter, 0.0, 1.0)


_GENERATORS = {
    Distribution.INDEPENDENT: _independent,
    Distribution.ANTI_CORRELATED: _anti_correlated,
    Distribution.CORRELATED: _correlated,
}


def generate_synthetic(
    n: int,
    num_known: int,
    num_crowd: int,
    distribution: Distribution = Distribution.INDEPENDENT,
    seed: Optional[int] = None,
    rng: Optional[np.random.Generator] = None,
) -> Relation:
    """Generate a synthetic relation per the paper's §6.1 setup.

    Parameters
    ----------
    n:
        Cardinality (paper grid: 2K-10K, default 4K).
    num_known:
        ``|AK|`` (paper grid: 2-5, default 4).
    num_crowd:
        ``|AC|`` (paper grid: 1-3, default 1).
    distribution:
        IND / ANT / COR; the distribution covers *all* ``d`` attributes —
        known and latent crowd values are drawn jointly, as in the paper.
    seed, rng:
        Reproducibility controls; pass at most one of them.

    Returns
    -------
    Relation
        ``n`` tuples with ``num_known`` known and ``num_crowd`` latent
        crowd values in ``[0, 1]``, smaller preferred.
    """
    if n <= 0:
        raise DataError("cardinality must be positive")
    if num_known < 1:
        raise DataError("need at least one known attribute")
    if num_crowd < 0:
        raise DataError("crowd attribute count must be non-negative")
    if rng is not None and seed is not None:
        raise DataError("pass either seed or rng, not both")
    if rng is None:
        rng = np.random.default_rng(seed)

    d = num_known + num_crowd
    data = _GENERATORS[distribution](rng, n, d)
    schema = Schema.simple(num_known, num_crowd)
    rows = [
        Tuple(known=tuple(data[i, :num_known]), latent=tuple(data[i, num_known:]))
        for i in range(n)
    ]
    return Relation(schema, rows)

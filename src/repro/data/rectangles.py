"""The Rectangles dataset for query Q1 (paper §6.2).

The paper adopts 50 images from Marcus et al. (VLDB 2011) whose true sizes
are ``(30 + 3i) × (40 + 5i)`` for ``i ∈ [0, 50)``, each randomly rotated.
Workers are shown two rotated rectangles and asked which is larger.

Reproduction: rotation changes the *recorded* axis-aligned bounding box —
that is what makes the known attributes lose information and the crowd
attribute (true area) worth asking about. For rectangle ``i`` with true
size ``w0 × h0`` rotated by ``θ``, the bounding box is

.. math::  W = w0 |\\cos θ| + h0 |\\sin θ|, \\qquad
           H = w0 |\\sin θ| + h0 |\\cos θ|.

``AK = {bbox_width MAX, bbox_height MAX}``; ``AC = {area MAX}`` with the
latent ground truth ``w0 · h0`` (rotation-invariant), which simulated
workers consult when answering "which rectangle is larger?".
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)

#: Number of rectangles in the paper's dataset.
NUM_RECTANGLES = 50

#: Default seed so that examples/benchmarks are reproducible.
DEFAULT_SEED = 173  # the paper's OpenProceedings id


def true_size(i: int) -> tuple:
    """True ``(width, height)`` of rectangle ``i`` per the paper's formula."""
    return (30 + 3 * i, 40 + 5 * i)


def rectangles_dataset(
    n: int = NUM_RECTANGLES, seed: Optional[int] = DEFAULT_SEED
) -> Relation:
    """Build the Q1 rectangles relation.

    Parameters
    ----------
    n:
        Number of rectangles (paper: 50).
    seed:
        Seed for the random rotations.
    """
    rng = np.random.default_rng(seed)
    schema = Schema(
        [
            Attribute("bbox_width", AttributeKind.KNOWN, Direction.MAX),
            Attribute("bbox_height", AttributeKind.KNOWN, Direction.MAX),
            Attribute("area", AttributeKind.CROWD, Direction.MAX),
        ]
    )
    rows = []
    for i in range(n):
        w0, h0 = true_size(i)
        theta = rng.uniform(0.0, math.pi / 2.0)
        width = w0 * abs(math.cos(theta)) + h0 * abs(math.sin(theta))
        height = w0 * abs(math.sin(theta)) + h0 * abs(math.cos(theta))
        rows.append(
            Tuple(
                known=(width, height),
                latent=(float(w0 * h0),),
                label=f"rect{i}",
            )
        )
    return Relation(schema, rows)

"""The IMDb movies dataset for query Q2 (paper §6.2).

The paper uses "50 popular movies released in 2000-2012" from IMDb with
``AK = {box_office MAX, release_year MAX}`` and the crowd attribute
``rating MAX`` (how good/romantic/... the movie is). IMDb's aggregated
rating serves as the latent ground truth that simulated workers consult.

The paper reports that the crowdsourced skyline for Q2 is
``{Avatar, The Avengers, Inception, The Lord of the Rings: The Fellowship
of the Ring, The Dark Knight Rises}`` where ``{Avatar, The Avengers}`` is
already the skyline in ``AK``. Since the paper does not list its 50
movies, we curated an equivalent list (worldwide grosses in $M, IMDb-style
ratings) whose machine skyline matches the paper's reported result
exactly; the unit tests pin this.
"""

from __future__ import annotations

from typing import Sequence, Tuple as TupleT

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)

#: (title, release_year, worldwide box office in $M, rating 0-10).
MOVIES: Sequence[TupleT[str, int, float, float]] = (
    ("Avatar", 2009, 2788.0, 8.0),
    ("The Avengers", 2012, 1519.6, 8.1),
    ("Inception", 2010, 836.8, 8.8),
    ("The Lord of the Rings: The Fellowship of the Ring", 2001, 898.2, 8.8),
    ("The Dark Knight Rises", 2012, 1084.9, 8.4),
    ("Gladiator", 2000, 460.5, 8.5),
    ("The Departed", 2006, 291.5, 8.5),
    ("The Prestige", 2006, 109.7, 8.5),
    ("Memento", 2000, 39.7, 8.4),
    ("City of God", 2002, 30.6, 8.6),
    ("The Pianist", 2002, 120.1, 8.5),
    ("Eternal Sunshine of the Spotless Mind", 2004, 74.0, 8.3),
    ("WALL-E", 2008, 532.7, 8.4),
    ("Up", 2009, 735.1, 8.2),
    ("Finding Nemo", 2003, 940.3, 8.1),
    ("Pirates of the Caribbean: Dead Man's Chest", 2006, 1066.2, 7.3),
    ("Harry Potter and the Deathly Hallows Part 2", 2011, 1342.0, 8.1),
    ("Transformers: Dark of the Moon", 2011, 1123.8, 6.2),
    ("Toy Story 3", 2010, 1067.0, 8.3),
    ("Alice in Wonderland", 2010, 1025.5, 6.4),
    ("Shrek 2", 2004, 928.8, 7.2),
    ("Spider-Man 3", 2007, 894.9, 6.2),
    ("Ice Age: Dawn of the Dinosaurs", 2009, 886.7, 6.9),
    ("Harry Potter and the Sorcerer's Stone", 2001, 974.8, 7.6),
    ("Skyfall", 2012, 1108.6, 7.8),
    ("The Hobbit: An Unexpected Journey", 2012, 1017.0, 7.8),
    ("The Twilight Saga: Breaking Dawn Part 2", 2012, 829.7, 5.5),
    ("The Hunger Games", 2012, 694.4, 7.2),
    ("Pirates of the Caribbean: On Stranger Tides", 2011, 1045.7, 6.6),
    ("Kung Fu Panda 2", 2011, 665.7, 7.2),
    ("Fast Five", 2011, 626.1, 7.3),
    ("Mission: Impossible - Ghost Protocol", 2011, 694.7, 7.4),
    ("The Amazing Spider-Man", 2012, 757.9, 6.9),
    ("Madagascar 3: Europe's Most Wanted", 2012, 746.9, 6.8),
    ("Ice Age: Continental Drift", 2012, 877.2, 6.5),
    ("Brave", 2012, 540.4, 7.1),
    ("Ted", 2012, 549.4, 6.9),
    ("Django Unchained", 2012, 425.4, 8.4),
    ("The King's Speech", 2010, 414.2, 8.0),
    ("Black Swan", 2010, 329.4, 8.0),
    ("The Social Network", 2010, 224.9, 7.7),
    ("Shutter Island", 2010, 294.8, 8.2),
    ("Slumdog Millionaire", 2008, 378.4, 8.0),
    ("The Curious Case of Benjamin Button", 2008, 335.8, 7.8),
    ("Kung Fu Panda", 2008, 632.1, 7.6),
    ("Iron Man", 2008, 585.8, 7.9),
    ("Ratatouille", 2007, 623.7, 8.1),
    ("Casino Royale", 2006, 616.5, 8.0),
    ("The Bourne Ultimatum", 2007, 444.1, 8.0),
    ("Monsters, Inc.", 2001, 577.4, 8.1),
)

#: The paper's reported crowdsourced skyline for Q2.
PAPER_Q2_SKYLINE = frozenset(
    {
        "Avatar",
        "The Avengers",
        "Inception",
        "The Lord of the Rings: The Fellowship of the Ring",
        "The Dark Knight Rises",
    }
)

#: The paper's reported skyline in ``AK`` alone for Q2.
PAPER_Q2_AK_SKYLINE = frozenset({"Avatar", "The Avengers"})


def movies_dataset() -> Relation:
    """Build the Q2 movies relation (50 tuples)."""
    schema = Schema(
        [
            Attribute("box_office", AttributeKind.KNOWN, Direction.MAX),
            Attribute("release_year", AttributeKind.KNOWN, Direction.MAX),
            Attribute("rating", AttributeKind.CROWD, Direction.MAX),
        ]
    )
    rows = [
        Tuple(known=(box, float(year)), latent=(rating,), label=title)
        for title, year, box, rating in MOVIES
    ]
    return Relation(schema, rows)

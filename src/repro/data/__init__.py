"""Datasets and the relation model (known + crowd attributes).

This subpackage provides:

* :mod:`repro.data.relation` — the schema/tuple/relation abstraction with
  known attributes ``AK`` and crowd attributes ``AC`` (paper §2.2),
* :mod:`repro.data.synthetic` — the Börzsönyi-style independent (IND),
  anti-correlated (ANT) and correlated (COR) generators used in §6.1,
* :mod:`repro.data.rectangles`, :mod:`repro.data.movies`,
  :mod:`repro.data.mlb` — the three real-life datasets of §6.2 (Q1-Q3),
  embedded so the evaluation is runnable offline,
* :mod:`repro.data.toy` — the worked toy datasets of Figures 1 and 3.
"""

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset, figure3_dataset

__all__ = [
    "Attribute",
    "AttributeKind",
    "Direction",
    "Distribution",
    "Relation",
    "Schema",
    "Tuple",
    "figure1_dataset",
    "figure3_dataset",
    "generate_synthetic",
]

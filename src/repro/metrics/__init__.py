"""Evaluation metrics (paper §6)."""

from repro.metrics.accuracy import (
    AccuracyReport,
    ak_skyline,
    ground_truth_skyline,
    precision_recall,
)

__all__ = [
    "AccuracyReport",
    "ak_skyline",
    "ground_truth_skyline",
    "precision_recall",
]

"""Skyline accuracy metrics (paper §6.1).

The paper measures accuracy only over the *newly retrieved* skyline
tuples, ``SKY_A(R) − SKY_AK(R)`` — the tuples crowdsourcing is
responsible for — with precision and recall against the ground truth
(latent values).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

import numpy as np

from repro.data.relation import Relation
from repro.skyline.bnl import bnl_skyline


def ak_skyline(relation: Relation) -> Set[int]:
    """``SKY_AK(R)`` — the machine skyline over known attributes only."""
    return set(bnl_skyline(relation.known_matrix()))


def ground_truth_skyline(relation: Relation) -> Set[int]:
    """``SKY_A(R)`` from latent values — the ideal crowdsourced skyline."""
    full = np.hstack([relation.known_matrix(), relation.latent_matrix()])
    return set(bnl_skyline(full))


@dataclass(frozen=True)
class AccuracyReport:
    """Precision/recall of a crowdsourced skyline on new skyline tuples."""

    precision: float
    recall: float
    predicted_new: int
    truth_new: int

    @property
    def f1(self) -> float:
        """Harmonic mean of precision and recall."""
        if self.precision + self.recall == 0:
            return 0.0
        return (
            2 * self.precision * self.recall / (self.precision + self.recall)
        )


def precision_recall(
    predicted_skyline: Set[int], relation: Relation
) -> AccuracyReport:
    """Score a predicted skyline against the latent ground truth.

    Both the prediction and the truth are restricted to tuples outside
    ``SKY_AK(R)`` (the paper's convention); a perfect-crowd run scores
    precision = recall = 1.0. Empty prediction/truth sides score 1.0 —
    nothing was claimed / nothing was missed.
    """
    base = ak_skyline(relation)
    truth_new = ground_truth_skyline(relation) - base
    predicted_new = set(predicted_skyline) - base
    correct = len(predicted_new & truth_new)
    precision = correct / len(predicted_new) if predicted_new else 1.0
    recall = correct / len(truth_new) if truth_new else 1.0
    return AccuracyReport(
        precision=precision,
        recall=recall,
        predicted_new=len(predicted_new),
        truth_new=len(truth_new),
    )

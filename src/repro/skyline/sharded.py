"""Sharded machine-phase skyline (distributed-skyline template).

Partition the relation into deterministic shards, do per-shard work
with the vectorized dominance kernels (optionally fanned out over a
``ProcessPoolExecutor``), then merge — the local-skyline/merge scheme
of *Computing Skylines on Distributed Data* (see PAPERS.md), adapted
to two regimes this codebase actually runs:

* :func:`sharded_skyline_mask` — per-shard **local skylines** followed
  by a communication-cost-aware merge: a tuple dominated inside its own
  shard can never be in the global skyline, so only shard-local skyline
  survivors are shipped to the coordinator (``tuples_shipped`` stays
  near the final skyline size, not ``n``). This is the path that scales
  to millions of tuples; it never materializes an ``n × n`` matrix.
* :func:`sharded_dominance_matrix` — row-block sharding of the exact
  boolean dominance matrix the crowd pipeline needs (``DS(t)`` must
  exist for *every* tuple, skyline or not, so the full matrix is the
  deliverable). Each shard computes its own rows; assembly in plan
  order makes the result bit-identical to
  :func:`repro.skyline.dominance.dominance_matrix`, which is what lets
  :func:`repro.core.engine.build_context` switch over without changing
  a single downstream question.

Determinism contract (docs/sharding.md): partitioners are pure
functions of ``(n, shards, seed)`` — no RNG objects, no dict-order or
scheduling dependence — and every merge walks shards in plan order, so
a sharded run is byte-identical across processes, job counts and
repeat invocations.

Both entry points emit ``shard.map`` / ``shard.merge`` tracer spans;
:func:`sharded_skyline_mask` additionally increments the
:data:`repro.obs.metrics.SHARD_TUPLES_SHIPPED` and
:data:`repro.obs.metrics.SHARD_DOMINANCE_CHECKS` counters.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.exceptions import CrowdSkyError
from repro.obs import NOOP_TRACER, current_observation
from repro.obs.metrics import SHARD_DOMINANCE_CHECKS, SHARD_TUPLES_SHIPPED
from repro.skyline.dominance import dominance_matrix


# ---------------------------------------------------------------------------
# Partitioners
# ---------------------------------------------------------------------------


def range_partition(n: int, shards: int, seed: int = 0) -> List[np.ndarray]:
    """Contiguous index ranges, sizes differing by at most one.

    ``seed`` is accepted for signature uniformity and ignored — a range
    partition has nothing to randomize.
    """
    return [
        part for part in np.array_split(np.arange(n, dtype=np.int64), shards)
    ]


def hash_partition(n: int, shards: int, seed: int = 0) -> List[np.ndarray]:
    """Seeded hash partition: shard ``i`` gets indices whose mixed hash
    lands in residue class ``i``.

    Uses a splitmix64-style integer finalizer over ``index + seed·φ``
    rather than a stateful RNG, so the assignment is a pure function of
    ``(n, shards, seed)`` (RA002: nothing here depends on process or
    call order). Within a shard, indices stay in ascending order.
    """
    index = np.arange(n, dtype=np.uint64)
    golden = np.uint64(0x9E3779B97F4A7C15)
    with np.errstate(over="ignore"):
        x = index * golden + np.uint64(seed) * np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
    assignment = (x % np.uint64(shards)).astype(np.int64)
    return [
        np.flatnonzero(assignment == shard).astype(np.int64)
        for shard in range(shards)
    ]


#: partitioner name -> callable(n, shards, seed) -> list of index arrays.
PARTITIONERS: Dict[str, Callable[[int, int, int], List[np.ndarray]]] = {
    "range": range_partition,
    "hash": hash_partition,
}


@dataclass(frozen=True)
class ShardPlan:
    """A deterministic assignment of tuple indices to shards.

    ``parts[s]`` holds the (ascending) global indices of shard ``s``;
    empty shards are legal (``shards > n`` simply leaves some empty).
    """

    n: int
    shards: int
    partitioner: str
    seed: int
    parts: Tuple[np.ndarray, ...]

    def sizes(self) -> List[int]:
        return [int(part.size) for part in self.parts]


def make_plan(
    n: int, shards: int, partitioner: str = "range", seed: int = 0
) -> ShardPlan:
    """Build the shard plan; validates the partitioner name and count."""
    if shards < 1:
        raise CrowdSkyError(f"shard count must be >= 1, got {shards}")
    build = PARTITIONERS.get(partitioner)
    if build is None:
        raise CrowdSkyError(
            f"unknown shard partitioner {partitioner!r}; "
            f"pick one of {sorted(PARTITIONERS)}"
        )
    return ShardPlan(
        n=n,
        shards=shards,
        partitioner=partitioner,
        seed=seed,
        parts=tuple(build(n, shards, seed)),
    )


# ---------------------------------------------------------------------------
# Local skyline kernel (sort-filter, no n x n matrix)
# ---------------------------------------------------------------------------


def local_skyline_mask(
    data: np.ndarray, block_size: int = 1024
) -> Tuple[np.ndarray, int]:
    """Skyline membership mask without the quadratic matrix.

    Sort-filter (Chomicki's SFS idea, vectorized): rows are processed in
    ascending attribute-sum order. Strict dominance implies a strictly
    smaller sum, so every dominator of a row precedes it — each block
    only needs checking against the skyline grown so far, plus a
    pairwise pass among the block's own sky-survivors (a row dominated
    only by a sky-dominated blockmate is sky-dominated too, by
    transitivity, so checking survivors suffices).

    Returns ``(mask, dominance_checks)`` where ``dominance_checks``
    counts evaluated candidate pairs; equality with
    :func:`repro.skyline.dominance.skyline_mask` is pinned by
    ``tests/test_sharded.py``.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    keep = np.zeros(n, dtype=bool)
    if n == 0:
        return keep, 0
    order = np.argsort(data.sum(axis=1), kind="stable")
    sky_blocks: List[np.ndarray] = []
    sky_size = 0
    checks = 0
    for start in range(0, n, block_size):
        indices = order[start:start + block_size]
        rows = data[indices]
        dominated = np.zeros(indices.size, dtype=bool)
        if sky_size:
            if len(sky_blocks) > 1:
                sky_blocks = [np.concatenate(sky_blocks)]
            sky = sky_blocks[0]
            # Chunk over the accumulated skyline so the broadcast temp
            # stays O(block_size * chunk * d).
            for s0 in range(0, sky_size, block_size):
                chunk = sky[s0:s0 + block_size]
                le = np.all(rows[:, None, :] >= chunk[None, :, :], axis=2)
                lt = np.any(rows[:, None, :] > chunk[None, :, :], axis=2)
                dominated |= np.any(le & lt, axis=1)
                checks += indices.size * chunk.shape[0]
        survivors = indices[~dominated]
        if survivors.size > 1:
            local = dominance_matrix(data[survivors])
            checks += survivors.size * survivors.size
            survivors = survivors[~local.any(axis=0)]
        keep[survivors] = True
        if survivors.size:
            sky_blocks.append(data[survivors])
            sky_size += survivors.size
    return keep, checks


# ---------------------------------------------------------------------------
# Pool workers (module-level so ProcessPoolExecutor can pickle them)
# ---------------------------------------------------------------------------


def _local_skyline_cell(rows: np.ndarray) -> Tuple[np.ndarray, int]:
    """Worker: local skyline of one shard's rows."""
    return local_skyline_mask(rows)


def _matrix_rows_cell(
    data: np.ndarray, indices: np.ndarray
) -> np.ndarray:
    """Worker: the dominance-matrix rows owned by one shard."""
    return _matrix_rows(data, indices)


def _matrix_rows(
    data: np.ndarray, indices: np.ndarray, chunk_size: int = 512
) -> np.ndarray:
    """``M[indices, :]`` of the full dominance matrix, with the same
    row chunking as :func:`repro.skyline.dominance.dominance_matrix` so
    the broadcast temporaries stay ``O(chunk_size · n · d)``."""
    out = np.empty((indices.size, data.shape[0]), dtype=bool)
    for start in range(0, indices.size, chunk_size):
        rows = data[indices[start:start + chunk_size]]
        le = np.all(rows[:, None, :] <= data[None, :, :], axis=2)
        lt = np.any(rows[:, None, :] < data[None, :, :], axis=2)
        out[start:start + rows.shape[0]] = le & lt
    return out


# ---------------------------------------------------------------------------
# Sharded skyline (local skylines + communication-aware merge)
# ---------------------------------------------------------------------------


@dataclass
class ShardStats:
    """Communication/work accounting for one sharded computation."""

    shards: int
    partitioner: str
    shard_sizes: List[int] = field(default_factory=list)
    #: Local-skyline sizes — exactly what each shard ships to the merge.
    local_skyline_sizes: List[int] = field(default_factory=list)
    #: Candidate tuples transferred from shards to the coordinator.
    tuples_shipped: int = 0
    #: Candidate pairs evaluated inside shards (map stage).
    local_checks: int = 0
    #: Candidate pairs evaluated by the coordinator (merge stage).
    merge_checks: int = 0
    skyline_size: int = 0

    @property
    def dominance_checks(self) -> int:
        """Total pairs evaluated across map and merge stages."""
        return self.local_checks + self.merge_checks


def sharded_skyline_mask(
    data: np.ndarray,
    shards: int,
    partitioner: str = "range",
    jobs: int = 1,
    seed: int = 0,
    plan: Optional[ShardPlan] = None,
) -> Tuple[np.ndarray, ShardStats]:
    """Global skyline mask via per-shard local skylines plus a merge.

    The merge is communication-cost-aware: each shard prunes its own
    dominated tuples *before* transfer, so only local-skyline survivors
    (``stats.tuples_shipped`` of them, tracked per run) reach the
    coordinator, which then computes the skyline of the concatenated
    candidates. Correct for any partition: a global skyline tuple is
    undominated within its shard, so it always survives the map stage;
    a shipped non-skyline candidate is dominated by some tuple whose
    own shard-local dominator chain ends in a shipped survivor, so the
    merge removes it (transitivity).

    ``jobs > 1`` fans the map stage over a ``ProcessPoolExecutor``;
    results are aggregated in plan order, so the output is identical
    for every job count.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if plan is None:
        plan = make_plan(n, shards, partitioner, seed)
    elif plan.n != n:
        raise CrowdSkyError(
            f"shard plan was built for n={plan.n}, data has n={n}"
        )
    stats = ShardStats(
        shards=plan.shards,
        partitioner=plan.partitioner,
        shard_sizes=plan.sizes(),
    )
    observation = current_observation()
    spans = observation.tracer if observation.enabled else NOOP_TRACER

    with spans.span(
        "shard.map", shards=plan.shards, partitioner=plan.partitioner,
        jobs=jobs, n=n,
    ):
        shard_rows = [data[part] for part in plan.parts]
        if jobs > 1 and sum(1 for rows in shard_rows if rows.size) > 1:
            workers = min(jobs, len(shard_rows))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_local_skyline_cell, rows)
                    for rows in shard_rows
                ]
                local = [future.result() for future in futures]
        else:
            local = [_local_skyline_cell(rows) for rows in shard_rows]
        candidates: List[np.ndarray] = []
        for part, (mask, checks) in zip(plan.parts, local):
            survivors = part[mask]
            candidates.append(survivors)
            stats.local_skyline_sizes.append(int(survivors.size))
            stats.local_checks += checks

    with spans.span("shard.merge", shards=plan.shards):
        shipped = np.concatenate(candidates) if candidates else (
            np.zeros(0, dtype=np.int64)
        )
        stats.tuples_shipped = int(shipped.size)
        merged_mask, merge_checks = local_skyline_mask(data[shipped])
        stats.merge_checks = merge_checks
        keep = np.zeros(n, dtype=bool)
        keep[shipped[merged_mask]] = True
        stats.skyline_size = int(np.count_nonzero(keep))

    if observation.enabled:
        observation.metrics.counter(SHARD_TUPLES_SHIPPED).inc(
            stats.tuples_shipped
        )
        observation.metrics.counter(
            SHARD_DOMINANCE_CHECKS, stage="local"
        ).inc(stats.local_checks)
        observation.metrics.counter(
            SHARD_DOMINANCE_CHECKS, stage="merge"
        ).inc(stats.merge_checks)
    return keep, stats


# ---------------------------------------------------------------------------
# Sharded dominance matrix (the crowd pipeline's machine phase)
# ---------------------------------------------------------------------------


def sharded_dominance_matrix(
    data: np.ndarray,
    shards: int,
    partitioner: str = "range",
    jobs: int = 1,
    seed: int = 0,
    plan: Optional[ShardPlan] = None,
) -> np.ndarray:
    """The full boolean dominance matrix, computed shard-by-shard.

    Each shard owns the matrix rows of its tuple indices (every row is
    independent of every other, so row blocks parallelize trivially);
    assembly scatters them back by global index, making the result
    bit-identical to :func:`repro.skyline.dominance.dominance_matrix`
    for any shard count, partitioner or job count — the property the
    engine's byte-identity contract rests on.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    if plan is None:
        plan = make_plan(n, shards, partitioner, seed)
    elif plan.n != n:
        raise CrowdSkyError(
            f"shard plan was built for n={plan.n}, data has n={n}"
        )
    observation = current_observation()
    spans = observation.tracer if observation.enabled else NOOP_TRACER
    result = np.zeros((n, n), dtype=bool)

    with spans.span(
        "shard.map", shards=plan.shards, partitioner=plan.partitioner,
        jobs=jobs, n=n,
    ):
        if jobs > 1 and sum(1 for part in plan.parts if part.size) > 1:
            workers = min(jobs, len(plan.parts))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(_matrix_rows_cell, data, part)
                    for part in plan.parts
                ]
                blocks = [future.result() for future in futures]
        else:
            blocks = [_matrix_rows(data, part) for part in plan.parts]

    with spans.span("shard.merge", shards=plan.shards):
        for part, block in zip(plan.parts, blocks):
            if part.size:
                result[part] = block
    if observation.enabled:
        # The matrix regime ships every row block back — n rows, n*n
        # checks — unlike the merge regime's O(skyline) traffic; the
        # stage label keeps the two regimes apart in the export.
        observation.metrics.counter(SHARD_TUPLES_SHIPPED).inc(n)
        observation.metrics.counter(
            SHARD_DOMINANCE_CHECKS, stage="matrix"
        ).inc(n * n)
    return result

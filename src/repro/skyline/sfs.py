"""Sort-filter skyline (SFS, Chomicki et al. 2003).

Tuples are first sorted by a monotone scoring function (sum of
coordinates); in that order, a tuple can only be dominated by tuples that
precede it, so a single forward pass against the running skyline window
suffices — and no window tuple is ever evicted. Typically much faster than
BNL on large inputs; both are provided as independent substrates and
cross-checked in the test suite.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.skyline.dominance import dominates


def sfs_skyline(data: np.ndarray, indices: Sequence[int] = None) -> List[int]:
    """Indices of the skyline tuples of ``data`` (smaller preferred).

    Same contract as :func:`repro.skyline.bnl.bnl_skyline`.
    """
    data = np.asarray(data, dtype=float)
    if indices is None:
        rows = np.arange(data.shape[0])
    else:
        rows = np.asarray(list(indices), dtype=int)
    if rows.size == 0:
        return []

    subset = data[rows]
    scores = subset.sum(axis=1)
    # Primary key: the monotone score. Tie-break lexicographically by the
    # attribute values — among score ties (possible through floating-point
    # rounding even when one tuple strictly dominates the other), a
    # dominating tuple is componentwise ≤ and therefore sorts first,
    # preserving the SFS invariant that dominators precede dominatees.
    keys = tuple(subset[:, j] for j in range(subset.shape[1] - 1, -1, -1))
    order = rows[np.lexsort(keys + (scores,))]

    window: List[int] = []
    for i in order:
        row = data[i]
        if any(dominates(data[j], row) for j in window):
            continue
        window.append(int(i))
    return sorted(window)

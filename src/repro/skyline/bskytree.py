"""Pivot-based skyline with incomparability sharing (BSkyTree-style).

The paper's dominating-set idea builds on "the property of sharing
incomparability" from BSkyTree (Lee & Hwang, EDBT 2010, the paper's
[10]): pick a *pivot* tuple, map every tuple to the binary lattice
vector that records per-attribute whether it beats the pivot, and note
that two tuples whose vectors are incomparable in the lattice are
incomparable in the data — no point-to-point test needed.

This module implements the simplified BSkyTree-S scheme: choose the
pivot by minimizing the range-normalized sum (a balanced pivot), split
tuples into lattice regions, recurse per region, and filter candidate
regions only against regions whose lattice vector dominates theirs.
It serves as a fourth independent machine-skyline substrate; the
property tests pin its agreement with BNL/SFS/D&C.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from repro.skyline.dominance import dominates

#: Below this size a quadratic scan beats the lattice bookkeeping.
_BASE_CASE = 24


def _brute_force(data: np.ndarray, rows: List[int]) -> List[int]:
    return [
        i
        for i in rows
        if not any(j != i and dominates(data[j], data[i]) for j in rows)
    ]


def _select_pivot(data: np.ndarray, rows: List[int]) -> int:
    """A balanced pivot: minimal normalized coordinate sum.

    Normalizing by the per-attribute spread keeps the two lattice halves
    of comparable size, which is what makes region-level incomparability
    pay off.
    """
    subset = data[rows]
    low = subset.min(axis=0)
    spread = subset.max(axis=0) - low
    spread[spread == 0.0] = 1.0
    scores = ((subset - low) / spread).sum(axis=1)
    return rows[int(np.argmin(scores))]


def _lattice_vector(data: np.ndarray, pivot: int, row: int) -> int:
    """Bitmask with bit ``j`` set when ``row`` is >= pivot on attribute
    ``j`` (i.e. no better than the pivot there)."""
    mask = 0
    for j in range(data.shape[1]):
        if data[row, j] >= data[pivot, j]:
            mask |= 1 << j
    return mask


def _vector_dominates(a: int, b: int) -> bool:
    """Lattice order: ``a``'s no-better set is a strict subset of ``b``'s."""
    return a != b and (a & b) == a


def _bskytree(data: np.ndarray, rows: List[int]) -> List[int]:
    if len(rows) <= _BASE_CASE:
        return _brute_force(data, rows)

    pivot = _select_pivot(data, rows)
    full_mask = (1 << data.shape[1]) - 1

    regions: Dict[int, List[int]] = {}
    for i in rows:
        if i == pivot:
            continue
        vector = _lattice_vector(data, pivot, i)
        if vector == full_mask:
            # No attribute better than the pivot. Equal tuples are
            # incomparable (kept); strictly worse ones are dominated.
            if bool(np.all(data[i] == data[pivot])):
                regions.setdefault(full_mask, []).append(i)
            continue
        regions.setdefault(vector, []).append(i)

    if len(regions) == 1:
        only = next(iter(regions.values()))
        if len(only) >= len(rows) - 1:
            # Degenerate pivot: no lattice split. Recursing would shed a
            # single tuple per level; hand the region to SFS instead.
            from repro.skyline.sfs import sfs_skyline

            return sfs_skyline(data, rows)

    # Local skylines per region; a region cannot shrink another region
    # with an incomparable lattice vector (incomparability sharing). The
    # full-mask region holds only pivot-equal tuples — mutually
    # incomparable by definition, no recursion needed (and recursing
    # would shrink by one tuple per level).
    local: Dict[int, List[int]] = {
        vector: (
            list(members)
            if vector == full_mask
            else _bskytree(data, members)
        )
        for vector, members in regions.items()
    }

    # The min-normalized-sum pivot is normally a skyline tuple, but
    # floating-point rounding can tie the sums of a dominator/dominatee
    # pair — verify instead of assuming.
    pivot_dominated = any(
        dominates(data[j], data[pivot])
        for candidates in local.values()
        for j in candidates
    )
    result = [] if pivot_dominated else [pivot]
    for vector, candidates in local.items():
        survivors = []
        for i in candidates:
            dominated = False
            for other, other_candidates in local.items():
                if other == vector or not _vector_dominates(other, vector):
                    continue
                if any(dominates(data[j], data[i])
                       for j in other_candidates):
                    dominated = True
                    break
            if not dominated and not dominates(data[pivot], data[i]):
                survivors.append(i)
        result.extend(survivors)
    return result


def bskytree_skyline(
    data: np.ndarray, indices: Sequence[int] = None
) -> List[int]:
    """Indices of the skyline tuples of ``data`` (smaller preferred).

    Same contract as :func:`repro.skyline.bnl.bnl_skyline`.
    """
    data = np.asarray(data, dtype=float)
    rows = list(range(data.shape[0])) if indices is None else list(indices)
    if not rows:
        return []
    return sorted(_bskytree(data, rows))

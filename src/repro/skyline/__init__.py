"""Machine-only skyline substrate (paper §2.2, §3.1, §4.2).

These components operate on fully-known data (the ``AK`` projection, or
the full matrix when computing ground truth):

* :mod:`repro.skyline.dominance` — dominance/incomparability predicates
  and the vectorized pairwise dominance matrix,
* :mod:`repro.skyline.bnl` — block-nested-loops skyline (Börzsönyi 2001),
* :mod:`repro.skyline.sfs` — sort-filter skyline (Chomicki 2003),
* :mod:`repro.skyline.dnc` — divide & conquer skyline,
* :mod:`repro.skyline.bskytree` — pivot-based skyline with
  incomparability sharing (BSkyTree-style, the paper's [10]),
* :mod:`repro.skyline.layers` — skyline layers + covering graph (§4.2),
* :mod:`repro.skyline.dominating` — dominating sets ``DS(t)`` and pair
  frequency ``freq(u, v)`` (§3.1, §3.4).
"""

from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import (
    DominanceRelation,
    compare,
    dominance_matrix,
    dominates,
    incomparable,
)
from repro.skyline.dominating import (
    dominating_sets,
    evaluation_order,
    pair_frequency,
    pair_frequency_table,
)
from repro.skyline.layers import covering_graph, skyline_layers
from repro.skyline.sfs import sfs_skyline

__all__ = [
    "DominanceRelation",
    "bnl_skyline",
    "bskytree_skyline",
    "compare",
    "covering_graph",
    "dnc_skyline",
    "dominance_matrix",
    "dominates",
    "dominating_sets",
    "evaluation_order",
    "incomparable",
    "pair_frequency",
    "pair_frequency_table",
    "sfs_skyline",
    "skyline_layers",
]

"""Machine-only skyline substrate (paper §2.2, §3.1, §4.2).

These components operate on fully-known data (the ``AK`` projection, or
the full matrix when computing ground truth):

* :mod:`repro.skyline.dominance` — dominance/incomparability predicates
  and the vectorized pairwise dominance matrix,
* :mod:`repro.skyline.bnl` — block-nested-loops skyline (Börzsönyi 2001),
* :mod:`repro.skyline.sfs` — sort-filter skyline (Chomicki 2003),
* :mod:`repro.skyline.dnc` — divide & conquer skyline,
* :mod:`repro.skyline.bskytree` — pivot-based skyline with
  incomparability sharing (BSkyTree-style, the paper's [10]),
* :mod:`repro.skyline.layers` — skyline layers + covering graph (§4.2),
* :mod:`repro.skyline.dominating` — dominating sets ``DS(t)`` and pair
  frequency ``freq(u, v)`` (§3.1, §3.4),
* :mod:`repro.skyline.sharded` — deterministic shard partitioners,
  per-shard local skylines with a communication-cost-aware merge, and
  the row-sharded dominance matrix (docs/sharding.md).
"""

from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import (
    DominanceRelation,
    compare,
    dominance_matrix,
    dominates,
    incomparable,
)
from repro.skyline.dominating import (
    dominating_sets,
    dominating_sets_from_matrix,
    evaluation_order,
    pair_frequency,
    pair_frequency_table,
)
from repro.skyline.layers import covering_graph, skyline_layers
from repro.skyline.sfs import sfs_skyline
from repro.skyline.sharded import (
    ShardPlan,
    ShardStats,
    local_skyline_mask,
    make_plan,
    sharded_dominance_matrix,
    sharded_skyline_mask,
)

__all__ = [
    "DominanceRelation",
    "ShardPlan",
    "ShardStats",
    "bnl_skyline",
    "bskytree_skyline",
    "compare",
    "covering_graph",
    "dnc_skyline",
    "dominance_matrix",
    "dominates",
    "dominating_sets",
    "dominating_sets_from_matrix",
    "evaluation_order",
    "incomparable",
    "local_skyline_mask",
    "make_plan",
    "pair_frequency",
    "pair_frequency_table",
    "sfs_skyline",
    "sharded_dominance_matrix",
    "sharded_skyline_mask",
    "skyline_layers",
]

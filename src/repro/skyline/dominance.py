"""Dominance primitives over fully-known value matrices (paper §2.2).

All functions assume the canonical "smaller preferred" convention
(relations canonicalize ``MAX`` attributes by negation, see
:meth:`repro.data.relation.Relation.known_matrix`).

Definitions (paper Definitions 1-2): ``s`` *dominates* ``t`` when ``s`` is
no worse on every attribute and strictly better on at least one; ``s`` and
``t`` are *incomparable* when neither dominates the other.
"""

from __future__ import annotations

import enum
from typing import Sequence, Union

import numpy as np

ArrayLike = Union[Sequence[float], np.ndarray]


class DominanceRelation(enum.Enum):
    """Outcome of comparing two tuples on known values."""

    FIRST_DOMINATES = "first"
    SECOND_DOMINATES = "second"
    EQUAL = "equal"
    INCOMPARABLE = "incomparable"


def dominates(s: ArrayLike, t: ArrayLike) -> bool:
    """True when ``s ≺ t`` (``s`` no worse everywhere, better somewhere)."""
    s = np.asarray(s, dtype=float)
    t = np.asarray(t, dtype=float)
    return bool(np.all(s <= t) and np.any(s < t))


def incomparable(s: ArrayLike, t: ArrayLike) -> bool:
    """True when neither tuple dominates the other and they differ."""
    return not dominates(s, t) and not dominates(t, s)


def compare(s: ArrayLike, t: ArrayLike) -> DominanceRelation:
    """Full three-way-plus-equal comparison of two tuples."""
    s = np.asarray(s, dtype=float)
    t = np.asarray(t, dtype=float)
    s_no_worse = bool(np.all(s <= t))
    t_no_worse = bool(np.all(t <= s))
    if s_no_worse and t_no_worse:
        return DominanceRelation.EQUAL
    if s_no_worse:
        return DominanceRelation.FIRST_DOMINATES
    if t_no_worse:
        return DominanceRelation.SECOND_DOMINATES
    return DominanceRelation.INCOMPARABLE


def dominance_matrix(data: np.ndarray, chunk_size: int = 512) -> np.ndarray:
    """Boolean matrix ``M`` with ``M[i, j] = data[i] dominates data[j]``.

    Vectorized with row chunking so memory stays at
    ``O(chunk_size · n · d)`` — the paper's grids go to ``n = 10K`` where a
    naive Python double loop would be prohibitive.

    Parameters
    ----------
    data:
        ``(n, d)`` float matrix, smaller preferred.
    chunk_size:
        Rows per broadcasting block.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    result = np.zeros((n, n), dtype=bool)
    if n == 0:
        return result
    # Comparison buffers are hoisted out of the chunk loop and reused
    # (ufunc ``out=``) — re-allocating the (b, n, d) broadcast temp per
    # pass dominated the layer-computation profile.
    b = min(chunk_size, n)
    cmp = np.empty((b, n, data.shape[1]), dtype=bool)
    le = np.empty((b, n), dtype=bool)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        size = stop - start
        block = data[start:stop, None, :]  # (b, 1, d)
        np.less_equal(block, data[None, :, :], out=cmp[:size])
        cmp[:size].all(axis=2, out=le[:size])
        np.less(block, data[None, :, :], out=cmp[:size])
        cmp[:size].any(axis=2, out=result[start:stop])
        np.logical_and(le[:size], result[start:stop],
                       out=result[start:stop])
    return result


def skyline_mask(data: np.ndarray, chunk_size: int = 512) -> np.ndarray:
    """Boolean mask of skyline membership, computed without the full matrix.

    A tuple is in the skyline iff no other tuple dominates it
    (paper Definition 3).
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    dominated = np.zeros(n, dtype=bool)
    if n == 0:
        return ~dominated
    # Same hoisted-buffer scheme as :func:`dominance_matrix`.
    b = min(chunk_size, n)
    cmp = np.empty((b, n, data.shape[1]), dtype=bool)
    le = np.empty((b, n), dtype=bool)
    lt = np.empty((b, n), dtype=bool)
    for start in range(0, n, chunk_size):
        stop = min(start + chunk_size, n)
        size = stop - start
        block = data[start:stop, None, :]
        np.less_equal(block, data[None, :, :], out=cmp[:size])
        cmp[:size].all(axis=2, out=le[:size])
        np.less(block, data[None, :, :], out=cmp[:size])
        cmp[:size].any(axis=2, out=lt[:size])
        np.logical_and(le[:size], lt[:size], out=lt[:size])
        dominated |= lt[:size].any(axis=0)
    return ~dominated

"""Block-nested-loops (BNL) skyline (Börzsönyi et al., ICDE 2001).

The classic in-memory skyline algorithm: maintain a window of candidate
skyline tuples; every incoming tuple is compared against the window and
either discarded (dominated), inserted (incomparable with everything), or
inserted while evicting the window tuples it dominates.

Used as the machine-side substrate for computing ``SKY_AK(R)`` and for
ground-truth skylines in the evaluation.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.skyline.dominance import dominates


def bnl_skyline(data: np.ndarray, indices: Sequence[int] = None) -> List[int]:
    """Indices of the skyline tuples of ``data`` (smaller preferred).

    Parameters
    ----------
    data:
        ``(n, d)`` float matrix.
    indices:
        Optional subset of row indices to restrict the computation to;
        returned indices always refer to rows of ``data``.

    Returns
    -------
    list of int
        Skyline row indices in ascending order.
    """
    data = np.asarray(data, dtype=float)
    if indices is None:
        candidate_rows = range(data.shape[0])
    else:
        candidate_rows = list(indices)

    window: List[int] = []
    for i in candidate_rows:
        row = data[i]
        dominated = False
        survivors: List[int] = []
        for j in window:
            other = data[j]
            if dominates(other, row):
                dominated = True
                survivors = window  # keep window untouched
                break
            if not dominates(row, other):
                survivors.append(j)
        if dominated:
            continue
        survivors.append(i)
        window = survivors
    return sorted(window)

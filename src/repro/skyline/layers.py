"""Skyline layers and the covering (dominance) graph (paper §4.2).

The ``i``-th skyline layer is the skyline of the tuples not in any earlier
layer (Definition 6). The parallelization scheduler ``ParallelSL`` uses
the *direct pointer* set ``c(t)`` — tuples that directly point to ``t`` in
the dominance graph. We realize ``c(t)`` as the covering relation
(transitive reduction) of ``≺_AK``: ``s ∈ c(t)`` iff ``s ≺ t`` and no
``w`` exists with ``s ≺ w ≺ t``. This matches the ``c(t)`` sets listed in
the paper's Table 3 for the toy dataset.
"""

from __future__ import annotations

from typing import Dict, List, Set

import numpy as np

from repro.skyline.dominance import dominance_matrix


def skyline_layers_from_matrix(matrix: np.ndarray) -> List[List[int]]:
    """Skyline layers from a precomputed dominance matrix."""
    n = matrix.shape[0]
    remaining = np.ones(n, dtype=bool)
    layers: List[List[int]] = []
    while np.any(remaining):
        active = matrix[np.ix_(remaining, remaining)]
        dominated_within = np.any(active, axis=0)
        indices = np.flatnonzero(remaining)
        layer = [int(i) for i in indices[~dominated_within]]
        if not layer:  # pragma: no cover - cannot happen on finite posets
            raise RuntimeError("empty skyline layer")
        layers.append(layer)
        remaining[layer] = False
    return layers


def covering_graph_from_matrix(matrix: np.ndarray) -> Dict[int, Set[int]]:
    """Direct-pointer sets ``c(t)`` from a precomputed dominance matrix.

    ``s`` is a direct dominator of ``t`` iff ``s ≺ t`` with no
    intermediate ``w`` (``s ≺ w ≺ t``) — i.e. ``s`` dominates none of
    ``t``'s other dominators. One submatrix reduction per tuple keeps
    this vectorized (`the paper's grids reach n = 10K`).
    """
    n = matrix.shape[0]
    result: Dict[int, Set[int]] = {}
    for t in range(n):
        dominators = np.flatnonzero(matrix[:, t])
        if dominators.size == 0:
            result[t] = set()
            continue
        sub = matrix[np.ix_(dominators, dominators)]
        direct_mask = ~sub.any(axis=1)
        result[t] = {int(s) for s in dominators[direct_mask]}
    return result


def skyline_layers(data: np.ndarray) -> List[List[int]]:
    """Partition row indices into skyline layers ``SL1, SL2, ...``.

    Parameters
    ----------
    data:
        ``(n, d)`` float matrix, smaller preferred.

    Returns
    -------
    list of list of int
        Layers in order; their concatenation is a permutation of
        ``range(n)``.
    """
    return skyline_layers_from_matrix(dominance_matrix(np.asarray(data, dtype=float)))


def covering_graph(data: np.ndarray) -> Dict[int, Set[int]]:
    """Direct-pointer sets ``c(t)`` of the dominance graph.

    Returns a mapping ``t -> c(t)`` where ``c(t)`` holds the covering
    dominators of ``t`` (the transitive reduction of ``≺``). Tuples with
    no dominator map to the empty set.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    matrix = dominance_matrix(data)
    return covering_graph_from_matrix(matrix)

"""Dominating sets and pair frequencies (paper §3.1, §3.4, §5).

* ``DS(t)`` — the set of tuples that dominate ``t`` in ``AK``
  (Definition 5). Only questions ``(s, t)`` with ``s ∈ DS(t)`` can affect
  whether ``t`` is a skyline tuple (Lemma 1).
* ``freq(u, v)`` — the number of tuples dominated by *both* ``u`` and
  ``v`` in ``AK``; used to order probing questions (§3.4) and to grade
  question importance for dynamic voting (§5).
* The evaluation order sorts tuples by ascending ``|DS(t)|`` (Lemma 3
  guarantees this respects the dominance partial order), breaking ties by
  tuple index — which reproduces the paper's Table 2(a) ordering.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple as TupleT

import numpy as np

from repro.skyline.dominance import dominance_matrix


def dominating_sets(data: np.ndarray) -> List[Set[int]]:
    """``DS(t)`` for every row ``t`` of ``data`` (smaller preferred)."""
    matrix = dominance_matrix(np.asarray(data, dtype=float))
    return dominating_sets_from_matrix(matrix)


def dominating_sets_from_matrix(matrix: np.ndarray) -> List[Set[int]]:
    """``DS(t)`` read off a precomputed dominance matrix.

    Lets callers that already hold the matrix (the sharded machine
    phase, :func:`repro.core.engine.build_context`) derive the sets
    without a second quadratic pass over the data.
    """
    return [set(int(s) for s in np.flatnonzero(matrix[:, t]))
            for t in range(matrix.shape[0])]


def evaluation_order(dominating: List[Set[int]]) -> List[int]:
    """Tuple indices sorted by ascending ``|DS(t)|``, ties by index."""
    return sorted(range(len(dominating)), key=lambda t: (len(dominating[t]), t))


def bitset_of(indices) -> int:
    """Pack an index collection into a Python-int bitset."""
    bits = 0
    for index in indices:
        bits |= 1 << index
    return bits


def dominating_bitsets(dominating: List[Set[int]]) -> List[int]:
    """``DS(t)`` sets packed as Python-int bitsets.

    The closure machinery and the parallel schedulers intersect
    dominating sets constantly; a bitset representation turns those
    intersections into single word-parallel AND operations (64 tuples
    per machine word) — the same representation
    :class:`repro.core.preference.BitsetPreferenceGraph` uses.
    """
    return [bitset_of(members) for members in dominating]


def packed_bitset_rows(sets: List[Set[int]], n: int) -> np.ndarray:
    """Index sets packed into rows of a ``(len(sets), ceil(n/64))``
    uint64 matrix.

    The numpy twin of :func:`dominating_bitsets`: a disjointness or
    membership test against many sets becomes one vectorized
    ``AND``/``any`` over the rows instead of a Python loop over
    arbitrary-precision ints. Bit ``i`` of row ``r`` lives at
    ``rows[r, i >> 6] >> (i & 63) & 1``.
    """
    words = max(1, (n + 63) >> 6)
    rows = np.zeros((len(sets), words), dtype=np.uint64)
    for index, members in enumerate(sets):
        if not members:
            continue
        idx = np.fromiter(members, dtype=np.int64, count=len(members))
        np.bitwise_or.at(
            rows[index],
            idx >> 6,
            np.uint64(1) << (idx & 63).astype(np.uint64),
        )
    return rows


def pair_frequency(matrix: np.ndarray, u: int, v: int) -> int:
    """``freq(u, v)`` — tuples dominated by both ``u`` and ``v`` in AK."""
    return int(np.count_nonzero(matrix[u] & matrix[v]))


def pair_frequency_table(
    data: np.ndarray,
) -> TupleT[np.ndarray, Dict[TupleT[int, int], int]]:
    """The dominance matrix plus a lazy frequency lookup helper.

    Returns the boolean dominance matrix and an (initially empty) cache
    dict; use :func:`pair_frequency` for individual lookups. Provided for
    callers that need many frequencies without recomputing the matrix.
    """
    matrix = dominance_matrix(np.asarray(data, dtype=float))
    cache: Dict[TupleT[int, int], int] = {}
    return matrix, cache


class FrequencyOracle:
    """Cached ``freq(u, v)`` lookups over a fixed dominance matrix.

    ``freq`` depends only on the machine-known ``AK`` values, so it can be
    precomputed/cached freely without touching the crowd.
    """

    def __init__(self, dominance: np.ndarray):
        self._matrix = np.asarray(dominance, dtype=bool)
        self._cache: Dict[TupleT[int, int], int] = {}

    def freq(self, u: int, v: int) -> int:
        """``freq(u, v)``, symmetric in its arguments."""
        key = (u, v) if u <= v else (v, u)
        value = self._cache.get(key)
        if value is None:
            value = pair_frequency(self._matrix, u, v)
            self._cache[key] = value
        return value

    def freq_matrix(self, members: List[int]) -> np.ndarray:
        """``freq(u, v)`` for all pairs of ``members`` as a ``k × k``
        matrix (vectorized; used by probing on large dominating sets)."""
        rows = self._matrix[members].astype(np.int64)
        return rows @ rows.T

    def quantiles(self, probabilities: List[float]) -> List[float]:
        """Quantiles of ``freq`` over all dominated-pair combinations.

        Used by dynamic voting to derive the ``α``/``β`` importance
        thresholds from the data (paper §5/§6.1: top ~30% of questions get
        more workers, bottom ~30% fewer). The population is all unordered
        pairs ``(u, v)`` of tuples that dominate at least one common tuple
        — the pairs that can actually appear as probing questions.
        """
        counts = self._matrix.astype(np.int64)
        # freq(u, v) = (M M^T)[u, v]: co-domination counts for all pairs.
        co_domination = counts @ counts.T
        iu = np.triu_indices(co_domination.shape[0], k=1)
        values = co_domination[iu]
        values = values[values > 0]
        if values.size == 0:
            return [0.0 for _ in probabilities]
        return [float(np.quantile(values, p)) for p in probabilities]

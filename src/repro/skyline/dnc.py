"""Divide & conquer skyline (Börzsönyi et al., ICDE 2001, §5).

Splits the input by the median of the first attribute, computes partial
skylines recursively, and merges by removing the tuples of the "worse"
half dominated by the "better" half. Provided as a third independent
skyline substrate; the property-based tests assert that BNL, SFS and D&C
always agree.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from repro.skyline.dominance import dominates

_BASE_CASE = 32


def _brute_force(data: np.ndarray, rows: List[int]) -> List[int]:
    result = []
    for i in rows:
        if not any(
            j != i and dominates(data[j], data[i]) for j in rows
        ):
            result.append(i)
    return result


def _merge(data: np.ndarray, better: List[int], worse: List[int]) -> List[int]:
    survivors = [
        i for i in worse
        if not any(dominates(data[j], data[i]) for j in better)
    ]
    return better + survivors


def _dnc(data: np.ndarray, rows: List[int]) -> List[int]:
    if len(rows) <= _BASE_CASE:
        return _brute_force(data, rows)
    values = data[rows, 0]
    median = float(np.median(values))
    low = [i for i in rows if data[i, 0] <= median]
    high = [i for i in rows if data[i, 0] > median]
    if not high or not low:
        # Degenerate split (many equal values) — fall back to brute force.
        return _brute_force(data, rows)
    sky_low = _dnc(data, low)
    sky_high = _dnc(data, high)
    return _merge(data, sky_low, sky_high)


def dnc_skyline(data: np.ndarray, indices: Sequence[int] = None) -> List[int]:
    """Indices of the skyline tuples of ``data`` (smaller preferred).

    Same contract as :func:`repro.skyline.bnl.bnl_skyline`.
    """
    data = np.asarray(data, dtype=float)
    rows = list(range(data.shape[0])) if indices is None else list(indices)
    if not rows:
        return []
    return sorted(_dnc(data, rows))

"""Hypothesis strategies for preference-graph and relation properties.

Shared between the backend differential suite
(``tests/test_preference_differential.py``) and the general property
tests: answer sequences replayable into any preference backend, and
small relations mixing known and crowd attributes.
"""

from hypothesis import strategies as st

from repro.crowd.questions import Preference
from tests.conftest import make_relation

#: All three crowd answers.
_answers = st.sampled_from(
    [Preference.LEFT, Preference.RIGHT, Preference.EQUAL]
)


@st.composite
def answer_events(draw, n: int, num_attributes: int = 1):
    """One ``(u, v, attribute, answer)`` event with ``u != v``."""
    u = draw(st.integers(0, n - 1))
    v = draw(st.integers(0, n - 2))
    if v >= u:
        v += 1
    attribute = draw(st.integers(0, num_attributes - 1))
    return (u, v, attribute, draw(_answers))


@st.composite
def answer_sequences(
    draw,
    max_n: int = 12,
    max_attributes: int = 2,
    max_answers: int = 60,
):
    """A replayable crowd-answer history.

    Returns ``(n, num_attributes, events)`` where ``events`` is a list
    of ``(u, v, attribute, answer)`` tuples. Sequences deliberately
    include repeats, ties and contradictions — the cases where closure
    maintenance and rejection bookkeeping can drift between backends.
    """
    n = draw(st.integers(2, max_n))
    num_attributes = draw(st.integers(1, max_attributes))
    events = draw(
        st.lists(
            answer_events(n, num_attributes), max_size=max_answers
        )
    )
    return (n, num_attributes, events)


@st.composite
def consistent_answer_sequences(draw, max_n: int = 10, max_answers: int = 40):
    """Answer sequences drawn from a latent total order (with ties) —
    contradiction-free by construction, safe under the RAISE policy."""
    n = draw(st.integers(2, max_n))
    ranks = draw(
        st.lists(
            st.integers(0, max(1, n // 2)), min_size=n, max_size=n
        )
    )
    pairs = draw(
        st.lists(
            st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
            max_size=max_answers,
        )
    )
    events = []
    for u, v in pairs:
        if u == v:
            continue
        if ranks[u] < ranks[v]:
            answer = Preference.LEFT
        elif ranks[u] > ranks[v]:
            answer = Preference.RIGHT
        else:
            answer = Preference.EQUAL
        events.append((u, v, 0, answer))
    return (n, 1, events, ranks)


@st.composite
def verdict_rounds(
    draw,
    max_n: int = 12,
    max_attributes: int = 2,
    max_rounds: int = 8,
    max_round_size: int = 10,
):
    """Round-shaped verdict batches for the closure-transaction pin.

    Returns ``(n, num_attributes, rounds)`` where ``rounds`` is a list
    of verdict batches, each a list of ``(u, v, attribute, answer)``
    tuples — the shape :meth:`PreferenceSystem.apply_verdicts` ingests.
    Batches deliberately mix repeats, ties and contradictions (within
    and across rounds) — acceptance under KEEP_FIRST is order-sensitive,
    so a transaction that reorders or dedupes would be caught here.
    """
    n = draw(st.integers(2, max_n))
    num_attributes = draw(st.integers(1, max_attributes))
    rounds = draw(
        st.lists(
            st.lists(
                answer_events(n, num_attributes), max_size=max_round_size
            ),
            max_size=max_rounds,
        )
    )
    return (n, num_attributes, rounds)


@st.composite
def pair_query_batches(draw, n: int, max_pairs: int = 40):
    """Aligned pair batches for the bulk-kernel pin: duplicates and
    symmetric twins are likely by construction, ``u == v`` included."""
    node = st.integers(0, n - 1)
    return draw(st.lists(st.tuples(node, node), max_size=max_pairs))


@st.composite
def small_relations(
    draw,
    max_tuples: int = 14,
    max_known: int = 3,
    max_crowd: int = 2,
    value_range: int = 5,
):
    """Small integer-grid relations with known *and* crowd attributes.

    Ties and duplicate rows are likely by construction — the nasty
    cases for dominance logic and tie-class bookkeeping.
    """
    num_known = draw(st.integers(1, max_known))
    num_crowd = draw(st.integers(1, max_crowd))
    count = draw(st.integers(1, max_tuples))
    cell = st.integers(0, value_range)
    known = draw(
        st.lists(
            st.tuples(*[cell] * num_known),
            min_size=count,
            max_size=count,
        )
    )
    latent = draw(
        st.lists(
            st.tuples(*[cell] * num_crowd),
            min_size=count,
            max_size=count,
        )
    )
    return make_relation(known, latent)

"""Hypothesis strategies for property-based tests.

Re-exports commonly used strategies for convenience::

    from tests.strategies import fault_plans, lossy_fault_plans, \
        retry_policies, small_crowd_relations, ROBUSTNESS_SETTINGS
"""

from tests.strategies.faults import (
    fault_plans,
    lossy_fault_plans,
    retry_policies,
    small_crowd_relations,
)
from tests.strategies.settings import ROBUSTNESS_SETTINGS

__all__ = [
    "ROBUSTNESS_SETTINGS",
    "fault_plans",
    "lossy_fault_plans",
    "retry_policies",
    "small_crowd_relations",
]

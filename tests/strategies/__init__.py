"""Hypothesis strategies for property-based tests.

Re-exports commonly used strategies for convenience::

    from tests.strategies import fault_plans, lossy_fault_plans, \
        retry_policies, small_crowd_relations, ROBUSTNESS_SETTINGS
    from tests.strategies import answer_sequences, small_relations
"""

from tests.strategies.faults import (
    fault_plans,
    lossy_fault_plans,
    retry_policies,
    small_crowd_relations,
)
from tests.strategies.modules import module_names, python_modules
from tests.strategies.preferences import (
    answer_events,
    answer_sequences,
    consistent_answer_sequences,
    pair_query_batches,
    small_relations,
    verdict_rounds,
)
from tests.strategies.relations import (
    KINDS,
    crowd_relations,
    known_matrices,
)
from tests.strategies.settings import DIFFERENTIAL_SETTINGS, ROBUSTNESS_SETTINGS

__all__ = [
    "DIFFERENTIAL_SETTINGS",
    "KINDS",
    "ROBUSTNESS_SETTINGS",
    "answer_events",
    "answer_sequences",
    "consistent_answer_sequences",
    "crowd_relations",
    "fault_plans",
    "known_matrices",
    "lossy_fault_plans",
    "module_names",
    "pair_query_batches",
    "python_modules",
    "retry_policies",
    "small_crowd_relations",
    "small_relations",
    "verdict_rounds",
]

"""Hypothesis strategies generating syntactically-valid Python modules.

Used by the invariant-linter crash-safety property
(``tests/test_analysis.py``): the linter must never raise on *any*
parseable module, however weird. Sources are valid by construction —
statements are assembled from indentation-aware templates — and drawn
to deliberately brush against every rule family: wall-clock calls,
unseeded RNGs, set iteration, ``repro.*`` imports, ``.event(...)`` /
``.counter(...)`` calls, runner-shaped strings, bare/silent
``except``, mutable defaults and ``# repro: noqa`` comments.

The interprocedural family (RA013-RA016) widened the surface: the
generator also emits decorated functions, nested defs, classes with
methods, ``pool.submit(...)`` shapes, ``tracer.span(...)`` uses (bare
and ``with``-managed), journal ``_write("post"/"commit")`` pairs and
``add_answer`` calls, so the call-graph builder and the rules walking
it are fuzzed over the same shapes they check for real.
"""

from __future__ import annotations

from typing import List

from hypothesis import strategies as st

#: Dotted module names spanning every scope the rules key off.
MODULE_NAMES = (
    "repro.core.generated",
    "repro.crowd.generated",
    "repro.experiments.generated",
    "repro.obs.schema",
    "repro.obs.metrics",
    "repro.sorting.generated",
    "repro.analysis.generated",
    "repro.generated",
    "loose_module",
    # interprocedural scopes: pool-checked, ordering-checked, and the
    # persistence module set all get generated bodies too
    "repro.experiments.sweep",
    "repro.skyline.sharded",
    "repro.core.resume",
)

_NAMES = st.sampled_from(
    ["x", "y", "data", "seen", "items", "config", "seed", "tracer",
     "registry", "np", "os", "time", "random", "sorted", "set", "list"]
)

_CONSTS = st.sampled_from(
    ["0", "1", "None", "True", "3.5", "'a'",
     "'crowd.round'", "'crowd.rnd'", "'crowdsky_rounds_total'",
     "'repro.experiments.generated:cell'", "'repro.missing:cell'",
     "'not a runner'"]
)

_DOTTED_CALLS = st.sampled_from(
    ["time.time()", "time.perf_counter_ns()", "datetime.datetime.now()",
     "random.random()", "random.Random(7)", "np.random.default_rng()",
     "np.random.default_rng(seed)", "np.random.rand(3)",
     "os.listdir('.')", "sorted(os.listdir('.'))", "os.getenv('HOME')",
     "os.environ.get('X')", "tracer.event('crowd.round', round=1)",
     "tracer.event(name)", "registry.counter('crowdsky_rounds_total')",
     "registry.counter(ROUNDS)", "path.rglob('*.py')",
     "pool.submit(cell, 1)", "pool.submit(lambda: 1)",
     "pool.submit(helper, seed)", "pool.submit()",
     "tracer.span('crowd.round')", "tracer.span(name).attr",
     "journal._write('post', x)", "journal._write('commit', x)",
     "journal._write(kind, x)", "prefs.add_answer(x, y, 'a', 1)",
     "prefs.apply_verdicts(items)", "cm.__enter__()",
     "cm.__exit__(None, None, None)", "self.helper()",
     "os.urandom(8)"]
)

_DECORATORS = st.sampled_from(
    ["@staticmethod", "@property", "@functools.lru_cache",
     "@observe('cell')"]
)

_IMPORTS = st.sampled_from(
    ["import os", "import time", "import numpy as np", "import random",
     "from time import time", "from repro.exceptions import CrowdSkyError",
     "from repro.experiments.sweep import Cell",
     "from repro.obs import observe", "from repro.crowd import platform",
     "import repro.experiments", "from . import sibling"]
)

_COMMENTS = st.sampled_from(
    ["", "  # repro: noqa", "  # repro: noqa RA001",
     "  # repro: noqa RA003,RA011 - generated", "  # plain comment"]
)


@st.composite
def _expr(draw, depth: int = 2) -> str:
    choices = [_NAMES, _CONSTS, _DOTTED_CALLS]
    if depth > 0:
        sub = _expr(depth=depth - 1)
        choices.extend([
            st.builds(lambda a, b: f"{{{a}, {b}}}", sub, sub),
            st.builds(lambda a, b: f"[{a}, {b}]", sub, sub),
            st.builds(lambda a, b: f"{a} | {b}", sub, sub),
            st.builds(lambda a: f"set({a})", sub),
            st.builds(lambda a: f"list({a})", sub),
            st.builds(lambda a: f"sorted({a})", sub),
            st.builds(lambda a, b: f"{a}({b})", _NAMES, sub),
            st.builds(lambda a: f"{{v for v in {a}}}", sub),
        ])
    return draw(draw(st.sampled_from(choices)))


def _indent(lines: List[str], by: str = "    ") -> List[str]:
    return [by + line for line in lines]


@st.composite
def _simple_stmt(draw) -> List[str]:
    kind = draw(st.integers(min_value=0, max_value=4))
    comment = draw(_COMMENTS)
    if kind == 0:
        return [draw(_IMPORTS) + comment]
    if kind == 1:
        return [f"{draw(_NAMES)} = {draw(_expr())}" + comment]
    if kind == 2:
        return [draw(_expr()) + comment]
    if kind == 3:
        return ["pass" + comment]
    return [f"{draw(_NAMES)} |= {draw(_expr())}" + comment]


@st.composite
def _block(draw, depth: int) -> List[str]:
    statements = draw(
        st.lists(_stmt(depth), min_size=1, max_size=3)
    )
    return [line for stmt in statements for line in stmt]


@st.composite
def _stmt(draw, depth: int = 2) -> List[str]:
    if depth <= 0:
        return draw(_simple_stmt())
    kind = draw(st.integers(min_value=0, max_value=7))
    if kind == 0:
        return draw(_simple_stmt())
    if kind == 1:  # for loop
        head = f"for {draw(_NAMES)} in {draw(_expr())}:" + draw(_COMMENTS)
        return [head] + _indent(draw(_block(depth - 1)))
    if kind == 2:  # if / else
        lines = [f"if {draw(_expr())}:"]
        lines += _indent(draw(_block(depth - 1)))
        if draw(st.booleans()):
            lines.append("else:")
            lines += _indent(draw(_block(depth - 1)))
        return lines
    if kind == 3:  # try / except
        handler = draw(st.sampled_from(
            ["except:", "except ValueError:", "except (OSError, KeyError):",
             "except Exception as error:"]
        ))
        body = draw(st.sampled_from([["pass"], ["..."], ["raise"],
                                     ["x = 1"]]))
        return (
            ["try:"] + _indent(draw(_block(depth - 1)))
            + [handler + draw(_COMMENTS)] + _indent(body)
        )
    if kind == 4:  # function def (decorated/nested variants included)
        params = draw(st.sampled_from(
            ["", "config, seed", "a, acc=[]", "a, acc={}", "a, b=None",
             "*args, **kwargs"]
        ))
        name = draw(st.sampled_from(["cell", "runner", "helper", "_f"]))
        lines = []
        if draw(st.booleans()):
            lines.append(draw(_DECORATORS))
        lines.append(f"def {name}({params}):")
        if draw(st.booleans()):  # nested def (unpicklable by reference)
            inner_name = draw(st.sampled_from(["inner", "cell", "_g"]))
            lines += _indent([f"def {inner_name}():"])
            lines += _indent(_indent(draw(_block(depth - 1))))
            lines += _indent([f"return {inner_name}"])
        else:
            lines += _indent(draw(_block(depth - 1)))
            if draw(st.booleans()):
                lines += _indent([f"return {draw(_expr())}"])
        return lines
    if kind == 5:  # class with a method
        lines = [f"class {draw(st.sampled_from(['C', 'Runner']))}:"]
        inner = [f"def m(self, acc={draw(st.sampled_from(['[]', 'None']))}):"]
        inner += _indent(draw(_block(depth - 1)))
        return lines + _indent(inner)
    if kind == 6:  # with block (span discipline shapes)
        head = draw(st.sampled_from(
            ["with tracer.span('crowd.round'):",
             "with tracer.span(name) as span:",
             "with open('out.json', 'w') as fh:",
             f"with {draw(_NAMES)}:"]
        ))
        return [head] + _indent(draw(_block(depth - 1)))
    # dict/registry assignment (exercises the schema extractor)
    target = draw(st.sampled_from(
        ["EVENT_ATTRS", "TABLE", "ROUNDS", "NAMES"]
    ))
    value = draw(st.sampled_from(
        ["{}", "{'crowd.round': {'round': (int,)}}",
         "{1: 'x', 'y': 2}", "'crowdsky_generated_total'",
         "{'sweep.cached': {}}"]
    ))
    return [f"{target} = {value}"]


@st.composite
def python_modules(draw) -> str:
    """A syntactically-valid Python module source string."""
    lines: List[str] = []
    if draw(st.booleans()):
        lines.append('"""Generated module docstring."""')
    for stmt in draw(st.lists(_stmt(), min_size=1, max_size=6)):
        lines.extend(stmt)
    return "\n".join(lines) + "\n"


def module_names() -> st.SearchStrategy:
    """Dotted module names covering every rule scope."""
    return st.sampled_from(MODULE_NAMES)

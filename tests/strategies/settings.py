"""Shared Hypothesis settings profiles for the test suite."""

from hypothesis import HealthCheck, settings

#: Profile for the fault-injection property tests: each example runs a
#: full (small) skyline computation, so examples are few and undeadlined.
ROBUSTNESS_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

#: Profile for the backend differential suite: state comparisons are
#: cheap, so examples are plentiful; deadlines stay off because the
#: first example pays numpy/import warm-up.
DIFFERENTIAL_SETTINGS = settings(
    max_examples=120,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

"""Hypothesis strategies for relation value matrices and relations.

``known_matrices`` generates the shapes that stress dominance logic —
independent, correlated, anticorrelated and duplicate-heavy integer
grids with tunable tie density (values are drawn from ``levels``
distinct integers, so fewer levels means more ties). Values are built
from plain drawn integers rather than float arrays so Hypothesis can
shrink failing examples to readable grids.

``crowd_relations`` wraps the same generator into a small
one-crowd-attribute :class:`repro.data.relation.Relation` for
full-pipeline differential properties (the sharded harness).
"""

from hypothesis import strategies as st

import numpy as np

from tests.conftest import make_relation

#: The distribution shapes ``known_matrices`` draws from.
KINDS = ("independent", "correlated", "anticorrelated", "duplicate_heavy")


def _clipped(base, delta, levels):
    return min(max(base + delta, 0), levels - 1)


@st.composite
def known_matrices(
    draw,
    min_rows=1,
    max_rows=40,
    min_cols=1,
    max_cols=4,
    kinds=KINDS,
    max_levels=8,
):
    """An ``(n, d)`` float matrix of one of the :data:`KINDS` shapes.

    ``levels`` (drawn in ``[2, max_levels]``) bounds the distinct values
    per column; small draws produce the tie- and duplicate-dense grids
    where dominance code historically breaks.
    """
    rows = draw(st.integers(min_rows, max_rows))
    cols = draw(st.integers(min_cols, max_cols))
    kind = draw(st.sampled_from(kinds))
    levels = draw(st.integers(2, max_levels))
    value = st.integers(0, levels - 1)
    jitter = st.integers(-1, 1)
    if kind == "independent":
        grid = draw(
            st.lists(
                st.lists(value, min_size=cols, max_size=cols),
                min_size=rows,
                max_size=rows,
            )
        )
    elif kind == "duplicate_heavy":
        distinct = max(1, rows // 3)
        pool = draw(
            st.lists(
                st.lists(value, min_size=cols, max_size=cols),
                min_size=distinct,
                max_size=distinct,
            )
        )
        grid = [
            pool[draw(st.integers(0, distinct - 1))] for _ in range(rows)
        ]
    else:
        # Correlated: every column tracks a per-row base value (good
        # rows are good everywhere). Anticorrelated: the back half of
        # the columns tracks the mirrored base (good somewhere, bad
        # elsewhere — the skyline-maximizing shape).
        grid = []
        for _ in range(rows):
            base = draw(value)
            row = []
            for col in range(cols):
                column_base = base
                if kind == "anticorrelated" and col >= (cols + 1) // 2:
                    column_base = levels - 1 - base
                row.append(_clipped(column_base, draw(jitter), levels))
            grid.append(row)
    return np.asarray(grid, dtype=float)


@st.composite
def crowd_relations(
    draw, max_rows=14, max_known=3, kinds=KINDS, max_levels=6
):
    """A small relation (known grid from ``known_matrices`` plus one
    crowd attribute) for end-to-end scheduler differentials."""
    known = draw(
        known_matrices(
            min_rows=1,
            max_rows=max_rows,
            min_cols=1,
            max_cols=max_known,
            kinds=kinds,
            max_levels=max_levels,
        )
    )
    rows = known.shape[0]
    latent = draw(
        st.lists(
            st.tuples(st.integers(0, 5)), min_size=rows, max_size=rows
        )
    )
    return make_relation(
        [tuple(int(v) for v in row) for row in known], latent
    )

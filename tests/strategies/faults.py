"""Hypothesis strategies for fault-tolerance properties.

The strategies build *configurations*, not live objects with RNG state:
``fault_plans`` returns the kwargs for a :class:`repro.crowd.faults.
FaultPlan` so each property-test run can construct a fresh plan (plans
carry generator state and must not be reused across runs).
"""

from hypothesis import strategies as st

from repro.crowd.retry import RetryPolicy
from tests.conftest import make_relation

#: Fault rates kept below certainty so runs keep making progress.
_rates = st.floats(
    min_value=0.0, max_value=0.5, allow_nan=False, allow_infinity=False
)


@st.composite
def fault_plans(draw):
    """Kwargs for an arbitrary :class:`FaultPlan` (spam included)."""
    return {
        "abandonment_rate": draw(_rates),
        "hit_timeout_rate": draw(_rates),
        "transient_error_rate": draw(_rates),
        "spam_burst_rate": draw(_rates),
        "seed": draw(st.integers(0, 2 ** 16)),
    }


@st.composite
def lossy_fault_plans(draw):
    """Kwargs for plans that *lose* answers but never corrupt them
    (no spam bursts) — the regime with a superset guarantee."""
    kwargs = draw(fault_plans())
    kwargs["spam_burst_rate"] = 0.0
    return kwargs


@st.composite
def retry_policies(draw):
    """An arbitrary valid :class:`RetryPolicy` (stateless, reusable)."""
    return RetryPolicy(
        max_attempts=draw(st.integers(1, 4)),
        backoff_base=draw(st.integers(0, 3)),
        backoff_factor=draw(
            st.floats(min_value=1.0, max_value=3.0, allow_nan=False)
        ),
        max_backoff=draw(st.integers(0, 6)),
        deadline_rounds=draw(
            st.one_of(st.none(), st.integers(2, 12))
        ),
    )


@st.composite
def small_crowd_relations(draw):
    """Small integer-grid relations with one crowd attribute — ties and
    duplicates included, the nasty cases for dominance logic."""
    known = draw(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=14,
        )
    )
    latent = draw(
        st.lists(
            st.tuples(st.integers(0, 5)),
            min_size=len(known),
            max_size=len(known),
        )
    )
    return make_relation(known, latent)

"""Tests for the experiment harness, table reproductions and the CLI."""

import pytest

from repro.exceptions import ExperimentError
from repro.experiments.cli import main
from repro.experiments.registry import (
    ExperimentResult,
    available_experiments,
    run_experiment,
)
from repro.experiments.report import format_rows, format_table
from repro.experiments.tables import (
    table1_rows,
    table2_question_total,
    table2_rows,
    table3_rows,
)


class TestTables:
    def test_table1_totals_26_questions(self):
        rows = table1_rows()
        assert sum(row["|DS(t)|"] for row in rows) == 26

    def test_table1_contents(self):
        rows = {row["t"]: row for row in table1_rows()}
        assert rows["a"]["DS(t)"] == "{b}"
        assert rows["j"]["DS(t)"] == "{a, b, d, e, f, g, h, i}"
        assert rows["k"]["Q(t)"] == "(k, i), (k, l)"

    def test_table2_order(self):
        order = [row["t"] for row in table2_rows()]
        assert order == ["a", "g", "d", "k", "c", "f", "h", "j"]

    def test_table2_totals_18_questions(self):
        """Example 4: pruning a, g, d leaves 18 questions."""
        assert table2_question_total() == 18

    def test_table2_pruned_sets(self):
        rows = {row["t"]: row for row in table2_rows()}
        assert rows["c"]["Q(t) after P1"] == "(c, b), (c, e)"
        assert rows["j"]["Q(t) after P1"] == (
            "(j, b), (j, e), (j, f), (j, h), (j, i)"
        )

    def test_table3_six_rounds(self):
        rows = table3_rows()
        round_rows = [row for row in rows if isinstance(row["round"], int)]
        assert len(round_rows) == 6
        assert "(a, b)" in round_rows[0]["questions"]
        assert round_rows[5]["questions"] == "(f, j)"


class TestRegistry:
    def test_all_paper_artifacts_registered(self):
        expected = {
            "table1", "table2", "table3",
            "fig6a", "fig6b", "fig6c",
            "fig7a", "fig7b", "fig7c",
            "fig8", "fig9", "fig10", "fig11",
            "fig12a", "fig12b", "q_accuracy", "extra_lofi",
            "extra_latency",
        }
        assert set(available_experiments()) == expected

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            run_experiment("fig99")

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            run_experiment("table1", scale="galactic")

    def test_table_experiment_runs(self):
        result = run_experiment("table1", scale="smoke")
        assert isinstance(result, ExperimentResult)
        assert result.rows

    def test_question_sweep_smoke(self):
        result = run_experiment("fig6a", scale="smoke")
        assert {"Baseline", "DSet", "P1", "P1+P2", "P1+P2+P3"} <= set(
            result.columns
        )
        for row in result.rows:
            assert row["P1+P2+P3"] <= row["Baseline"]

    def test_rounds_sweep_smoke(self):
        result = run_experiment("fig8", scale="smoke")
        for row in result.rows:
            assert row["ParallelSL"] <= row["Serial"]
            assert row["ParallelDSet"] <= row["Serial"]

    def test_voting_accuracy_smoke(self):
        result = run_experiment("fig10", scale="smoke")
        for row in result.rows:
            assert 0.0 <= row["StaticVoting precision"] <= 1.0
            assert 0.0 <= row["DynamicVoting recall"] <= 1.0


class TestReport:
    def test_format_rows_alignment(self):
        text = format_rows(["a", "b"], [{"a": 1, "b": 2.5}, {"a": 10}])
        lines = text.splitlines()
        assert lines[0].startswith("a")
        assert len(lines) == 4

    def test_format_table_includes_title(self):
        result = run_experiment("table1", scale="smoke")
        text = format_table(result)
        assert "table1" in text


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig8" in out and "table1" in out

    def test_run_table(self, capsys):
        assert main(["run", "table1", "--scale", "smoke"]) == 0
        assert "Dominating sets" in capsys.readouterr().out

    def test_run_unknown_experiment(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "error" in capsys.readouterr().err

"""Fault injection, retry/backoff, and graceful degradation.

Covers the robustness layer end to end:

* unit semantics of :class:`RetryPolicy` and :class:`FaultPlan`,
* the strict-mode exception contract and the non-strict unresolved
  contract at the platform level,
* byte-identity of a zero-rate plan with the plain platform,
* seeded determinism of whole fault-injected executions (swept over
  ``REPRO_FAULT_SEEDS``, see ``make test-robustness``),
* the acceptance matrix: every scheduler completes on every
  distribution at n=200 under heavy fault rates, returning a degraded
  result instead of raising,
* Hypothesis properties: termination for arbitrary fault
  configurations, and the conservative-superset guarantee for lossy
  (spam-free) plans with perfect workers,
* atomicity of round accounting under a strict budget abort.
"""

import os
import re

import pytest
from hypothesis import given

from repro.core.crowdsky import crowdsky, crowdsky_budgeted
from repro.core.parallel import parallel_dset, parallel_sl
from repro.crowd.faults import FaultPlan, FaultStats, HitOutcome
from repro.crowd.hits import HitLedger
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import (
    MultiwayQuestion,
    PairwiseQuestion,
    UnaryQuestion,
)
from repro.crowd.retry import RetryPolicy
from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import (
    BudgetExhaustedError,
    CrowdPlatformError,
    FaultInjectionError,
    QuestionTimeoutError,
    RetriesExhaustedError,
)
from repro.metrics.accuracy import ground_truth_skyline
from tests.strategies import (
    ROBUSTNESS_SETTINGS,
    fault_plans,
    lossy_fault_plans,
    retry_policies,
    small_crowd_relations,
)

SCHEDULERS = [crowdsky, parallel_dset, parallel_sl]

#: Seeds swept by the robustness suite; override via the env var
#: (space- or comma-separated), e.g. ``make test-robustness
#: REPRO_FAULT_SEEDS="0 1 2 3 4"``.
FAULT_SEEDS = [
    int(s)
    for s in re.split(
        r"[,\s]+", os.environ.get("REPRO_FAULT_SEEDS", "0 1 7").strip()
    )
    if s
]

#: The acceptance-matrix fault regime: heavy but survivable.
HEAVY_FAULTS = dict(
    abandonment_rate=0.3,
    hit_timeout_rate=0.2,
    transient_error_rate=0.1,
    spam_burst_rate=0.05,
)


def run_trace(result, crowd):
    """Everything that must be identical across same-seed runs."""
    return (
        sorted(result.skyline),
        result.stats.questions,
        result.stats.rounds,
        result.stats.round_sizes,
        result.stats.retried_per_round,
        result.stats.worker_assignments,
        result.stats.retries,
        result.stats.timeouts,
        result.stats.abandoned_assignments,
        result.stats.degraded_answers,
        result.stats.unresolved_questions,
        result.stats.backoff_rounds,
        result.degraded,
        result.unresolved_pairs,
        result.fault_stats.as_dict() if result.fault_stats else None,
        crowd.question_log,
    )


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(backoff_base=1, backoff_factor=2.0, max_backoff=8)
        assert [policy.backoff_rounds(k) for k in (1, 2, 3, 4, 5)] == [
            1, 2, 4, 8, 8,
        ]

    def test_zero_base_never_waits(self):
        policy = RetryPolicy(backoff_base=0)
        assert policy.backoff_rounds(1) == 0
        assert policy.backoff_rounds(4) == 0

    def test_attempts_left(self):
        policy = RetryPolicy(max_attempts=3)
        assert policy.attempts_left(2)
        assert not policy.attempts_left(3)

    def test_single_attempt_disables_retries(self):
        assert not RetryPolicy(max_attempts=1).attempts_left(1)

    def test_deadline(self):
        assert not RetryPolicy(deadline_rounds=None).past_deadline(10 ** 6)
        policy = RetryPolicy(deadline_rounds=5)
        assert not policy.past_deadline(4)
        assert policy.past_deadline(5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_attempts": 0},
            {"backoff_base": -1},
            {"backoff_factor": 0.5},
            {"max_backoff": -1},
            {"deadline_rounds": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CrowdPlatformError):
            RetryPolicy(**kwargs)

    def test_backoff_rejects_zero_failures(self):
        with pytest.raises(CrowdPlatformError):
            RetryPolicy().backoff_rounds(0)


class TestFaultPlan:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"abandonment_rate": -0.1},
            {"hit_timeout_rate": 1.5},
            {"transient_error_rate": 2.0},
            {"spam_burst_rate": -1.0},
            {"hit_timeout_rate": 0.6, "spam_burst_rate": 0.6},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(CrowdPlatformError):
            FaultPlan(**kwargs)

    def test_any_faults(self):
        assert not FaultPlan(seed=0).any_faults()
        assert FaultPlan(transient_error_rate=0.1, seed=0).any_faults()

    def test_rolls_are_deterministic_per_seed(self):
        def roll_sequence():
            plan = FaultPlan(
                abandonment_rate=0.4,
                hit_timeout_rate=0.3,
                transient_error_rate=0.2,
                spam_burst_rate=0.3,
                seed=13,
            )
            trace = [plan.roll_hit() for _ in range(20)]
            trace += [plan.roll_transient() for _ in range(20)]
            trace += [plan.roll_abandonment() for _ in range(20)]
            return trace, plan.stats.as_dict()

        assert roll_sequence() == roll_sequence()

    def test_rolls_tally_stats(self):
        plan = FaultPlan(hit_timeout_rate=1.0, seed=0)
        assert plan.roll_hit() is HitOutcome.EXPIRED
        assert plan.stats.expired_hits == 1
        plan = FaultPlan(spam_burst_rate=1.0, seed=0)
        assert plan.roll_hit() is HitOutcome.SPAM
        assert plan.stats.spam_bursts == 1
        plan = FaultPlan(transient_error_rate=1.0, abandonment_rate=1.0, seed=0)
        assert plan.roll_transient() and plan.roll_abandonment()
        assert plan.stats.transient_errors == 1
        assert plan.stats.abandoned_assignments == 1
        assert plan.stats.total_events() == 2

    def test_stats_merge(self):
        a = FaultStats(expired_hits=1, failed_questions=2)
        b = FaultStats(spam_bursts=3, failed_questions=1)
        merged = a.merge(b)
        assert merged.expired_hits == 1
        assert merged.spam_bursts == 3
        assert merged.failed_questions == 3


class TestExceptionHierarchy:
    def test_fault_errors_are_platform_errors(self):
        for exc in (
            FaultInjectionError,
            QuestionTimeoutError,
            RetriesExhaustedError,
        ):
            assert issubclass(exc, CrowdPlatformError)

    def test_top_level_exports(self):
        import repro

        for name in (
            "FaultPlan",
            "FaultStats",
            "RetryPolicy",
            "BudgetExhaustedError",
            "FaultInjectionError",
            "QuestionTimeoutError",
            "RetriesExhaustedError",
        ):
            assert hasattr(repro, name)
            assert name in repro.__all__


class TestStrictModeContract:
    """Platform-level fate of a question that can never be answered."""

    def question(self, toy):
        return PairwiseQuestion(toy.index_of("f"), toy.index_of("j"))

    def test_strict_without_retry_raises_fault_injection(self, toy):
        crowd = SimulatedCrowd(
            toy, seed=0, faults=FaultPlan(hit_timeout_rate=1.0, seed=0),
            strict=True,
        )
        with pytest.raises(FaultInjectionError):
            crowd.ask_pairwise_round([self.question(toy)])

    def test_strict_with_retry_raises_retries_exhausted(self, toy):
        crowd = SimulatedCrowd(
            toy, seed=0, faults=FaultPlan(hit_timeout_rate=1.0, seed=0),
            retry=RetryPolicy(max_attempts=2), strict=True,
        )
        with pytest.raises(RetriesExhaustedError):
            crowd.ask_pairwise_round([self.question(toy)])

    def test_strict_deadline_raises_question_timeout(self, toy):
        crowd = SimulatedCrowd(
            toy, seed=0, faults=FaultPlan(hit_timeout_rate=1.0, seed=0),
            retry=RetryPolicy(max_attempts=100, deadline_rounds=3),
            strict=True,
        )
        with pytest.raises(QuestionTimeoutError):
            crowd.ask_pairwise_round([self.question(toy)])

    def test_default_is_non_strict_once_faults_attached(self, toy):
        plain = SimulatedCrowd(toy, seed=0)
        faulty = SimulatedCrowd(toy, seed=0, faults=FaultPlan(seed=0))
        assert plain.strict and not faulty.strict

    def test_non_strict_marks_unresolved_instead(self, toy):
        crowd = SimulatedCrowd(
            toy, seed=0, faults=FaultPlan(hit_timeout_rate=1.0, seed=0),
            retry=RetryPolicy(max_attempts=2),
        )
        question = self.question(toy)
        answers = crowd.ask_pairwise_round([question])
        assert question not in answers
        assert crowd.is_unresolved(question)
        assert question.key() in crowd.unresolved_keys
        assert crowd.stats.unresolved_questions == 1
        assert crowd.ask_pairwise(question) is None

    def test_unresolved_questions_are_never_reposted(self, toy):
        crowd = SimulatedCrowd(
            toy, seed=0, faults=FaultPlan(hit_timeout_rate=1.0, seed=0),
        )
        question = self.question(toy)
        crowd.ask_pairwise_round([question])
        posted = crowd.stats.questions
        crowd.ask_pairwise_round([question])
        assert crowd.stats.questions == posted

    def test_retry_recovers_and_pays_for_reposts(self, toy):
        # Expiry on exactly the first HIT roll: the re-post succeeds.
        def expires_then_recovers(s):
            plan = FaultPlan(hit_timeout_rate=0.5, seed=s)
            return (
                plan.roll_hit() is HitOutcome.EXPIRED
                and plan.roll_hit() is HitOutcome.OK
            )

        seed = next(s for s in range(100) if expires_then_recovers(s))
        crowd = SimulatedCrowd(
            toy, seed=0,
            faults=FaultPlan(hit_timeout_rate=0.5, seed=seed),
            retry=RetryPolicy(max_attempts=3, backoff_base=1),
        )
        question = self.question(toy)
        answers = crowd.ask_pairwise_round([question])
        assert question in answers
        assert crowd.stats.retries >= 1
        # The re-post is a further platform round and is paid again.
        assert crowd.stats.rounds >= 2
        assert sum(crowd.stats.round_sizes) >= 2
        assert crowd.stats.backoff_rounds >= 1


class TestZeroRateIdentity:
    """A zero-rate plan must be byte-identical to no plan at all."""

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_zero_rate_strict_matches_seed_behaviour(
        self, small_independent, scheduler
    ):
        plain_crowd = SimulatedCrowd(small_independent, seed=0)
        plain = scheduler(small_independent, plain_crowd)
        faulty_crowd = SimulatedCrowd(
            small_independent, seed=0,
            faults=FaultPlan(seed=99), retry=RetryPolicy(), strict=True,
        )
        faulty = scheduler(small_independent, faulty_crowd)
        assert run_trace(plain, plain_crowd)[:-3] == run_trace(
            faulty, faulty_crowd
        )[:-3]
        assert plain_crowd.question_log == faulty_crowd.question_log
        assert not faulty.degraded
        assert faulty.unresolved_pairs == []
        assert faulty.fault_stats.total_events() == 0


@pytest.mark.faults
class TestSeededDeterminism:
    """Same (worker seed, fault seed) pair → identical execution."""

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_repeat_runs_are_identical(self, scheduler, seed):
        relation = generate_synthetic(
            80, 2, 1, Distribution.INDEPENDENT, seed=seed
        )

        def run():
            crowd = SimulatedCrowd(
                relation, seed=seed,
                faults=FaultPlan(seed=seed + 1, **HEAVY_FAULTS),
                retry=RetryPolicy(max_attempts=3, deadline_rounds=25),
            )
            return run_trace(scheduler(relation, crowd), crowd)

        assert run() == run()

    @pytest.mark.parametrize("seed", FAULT_SEEDS)
    def test_different_fault_seeds_touch_only_fault_path(self, seed):
        """Changing the *fault* seed must not silently change worker
        behaviour: a lossless rerun still answers from ground truth."""
        relation = generate_synthetic(
            60, 2, 1, Distribution.ANTI_CORRELATED, seed=seed
        )
        truth = ground_truth_skyline(relation)
        crowd = SimulatedCrowd(
            relation, seed=seed,
            faults=FaultPlan(
                abandonment_rate=0.3, hit_timeout_rate=0.2,
                transient_error_rate=0.1, seed=seed + 1,
            ),
            retry=RetryPolicy(max_attempts=4, deadline_rounds=40),
        )
        result = parallel_sl(relation, crowd)
        assert result.skyline >= truth


@pytest.mark.faults
class TestGracefulDegradation:
    """The acceptance matrix: heavy faults never crash a scheduler."""

    @pytest.mark.parametrize(
        "distribution", list(Distribution), ids=[d.value for d in Distribution]
    )
    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_heavy_faults_complete_degraded(self, scheduler, distribution):
        relation = generate_synthetic(200, 2, 1, distribution, seed=3)
        crowd = SimulatedCrowd(
            relation, seed=0,
            faults=FaultPlan(seed=1, **HEAVY_FAULTS),
            retry=RetryPolicy(max_attempts=3, deadline_rounds=25),
        )
        result = scheduler(relation, crowd)
        assert result.skyline <= set(range(len(relation)))
        assert result.degraded
        assert result.unresolved_pairs
        assert result.fault_stats.total_events() > 0
        assert result.stats.retries > 0
        assert result.stats.timeouts > 0
        assert result.stats.unresolved_questions == len(
            result.unresolved_pairs
        )

    @pytest.mark.parametrize("scheduler", SCHEDULERS)
    def test_lossy_faults_keep_superset_guarantee(self, scheduler):
        """Without spam (and with perfect workers) faults only lose
        answers, so the degraded skyline can only gain tuples."""
        relation = generate_synthetic(
            200, 2, 1, Distribution.INDEPENDENT, seed=5
        )
        truth = ground_truth_skyline(relation)
        crowd = SimulatedCrowd(
            relation, seed=0,
            faults=FaultPlan(
                abandonment_rate=0.3, hit_timeout_rate=0.2,
                transient_error_rate=0.1, seed=2,
            ),
            retry=RetryPolicy(max_attempts=2, deadline_rounds=20),
        )
        result = scheduler(relation, crowd)
        assert result.skyline >= truth

    def test_result_surfaces_fault_accounting(self):
        relation = generate_synthetic(
            100, 2, 1, Distribution.INDEPENDENT, seed=3
        )
        crowd = SimulatedCrowd(
            relation, seed=0,
            faults=FaultPlan(seed=1, **HEAVY_FAULTS),
            retry=RetryPolicy(max_attempts=3, deadline_rounds=25),
        )
        result = crowdsky(relation, crowd)
        summary = result.summary()
        assert "retries=" in summary
        assert "DEGRADED" in summary
        assert f"unresolved_pairs={len(result.unresolved_pairs)}" in summary
        table = result.round_table()
        assert all("retried" in row for row in table)
        assert any(row["retried"] for row in table)
        # Rows only exist for rounds that delivered answers, but each
        # row's count must agree with the per-round accounting.
        retried = result.stats.retried_per_round
        for row in table:
            assert row["retried"] == retried[row["round"] - 1]

    def test_clean_summary_stays_clean(self, small_independent):
        result = crowdsky(small_independent)
        assert "DEGRADED" not in result.summary()
        assert "retries=" not in result.summary()
        assert all("retried" not in row for row in result.round_table())


class TestFaultProperties:
    """Hypothesis: the engine terminates for *any* fault configuration,
    and lossy plans preserve the conservative superset."""

    @ROBUSTNESS_SETTINGS
    @given(
        relation=small_crowd_relations(),
        plan_kwargs=fault_plans(),
        policy=retry_policies(),
    )
    def test_terminates_for_any_fault_rates(
        self, relation, plan_kwargs, policy
    ):
        for scheduler in SCHEDULERS:
            crowd = SimulatedCrowd(
                relation, seed=0, faults=FaultPlan(**plan_kwargs),
                retry=policy,
            )
            result = scheduler(relation, crowd)
            assert result.skyline <= set(range(len(relation)))
            if not result.degraded:
                assert result.unresolved_pairs == []

    @ROBUSTNESS_SETTINGS
    @given(
        relation=small_crowd_relations(),
        plan_kwargs=lossy_fault_plans(),
        policy=retry_policies(),
    )
    def test_lossy_plans_return_superset(self, relation, plan_kwargs, policy):
        truth = ground_truth_skyline(relation)
        for scheduler in SCHEDULERS:
            crowd = SimulatedCrowd(
                relation, seed=0, faults=FaultPlan(**plan_kwargs),
                retry=policy,
            )
            result = scheduler(relation, crowd)
            assert result.skyline >= truth


class TestBudgetAtomicity:
    """A strict budget abort must leave accounting untouched (the round
    either commits fully or not at all)."""

    def snapshot(self, crowd, ledger):
        stats = crowd.stats
        return (
            stats.questions,
            stats.rounds,
            stats.cached_hits,
            list(stats.round_sizes),
            stats.worker_assignments,
            ledger.num_hits,
            len(crowd.question_log),
        )

    def test_pairwise_abort_records_nothing(self, toy):
        ledger = HitLedger()
        crowd = SimulatedCrowd(toy, seed=0, max_questions=1, ledger=ledger)
        f, j, e, h = (toy.index_of(x) for x in "fjeh")
        crowd.ask_pairwise_round([PairwiseQuestion(f, j)])
        before = self.snapshot(crowd, ledger)
        with pytest.raises(BudgetExhaustedError):
            # One cached + two fresh: the old bug committed the cached
            # hit before noticing the budget was blown.
            crowd.ask_pairwise_round(
                [
                    PairwiseQuestion(f, j),
                    PairwiseQuestion(f, e),
                    PairwiseQuestion(f, h),
                ]
            )
        assert self.snapshot(crowd, ledger) == before

    def test_multiway_abort_records_nothing(self, toy):
        ledger = HitLedger()
        crowd = SimulatedCrowd(toy, seed=0, max_questions=1, ledger=ledger)
        crowd.ask_pairwise_round(
            [PairwiseQuestion(toy.index_of("f"), toy.index_of("j"))]
        )
        before = self.snapshot(crowd, ledger)
        with pytest.raises(BudgetExhaustedError):
            crowd.ask_multiway_round(
                [MultiwayQuestion((0, 1, 2)), MultiwayQuestion((3, 4, 5))]
            )
        assert self.snapshot(crowd, ledger) == before

    def test_unary_abort_records_nothing(self, toy):
        ledger = HitLedger()
        crowd = SimulatedCrowd(toy, seed=0, max_questions=1, ledger=ledger)
        crowd.ask_pairwise_round(
            [PairwiseQuestion(toy.index_of("f"), toy.index_of("j"))]
        )
        before = self.snapshot(crowd, ledger)
        with pytest.raises(BudgetExhaustedError):
            crowd.ask_unary_round([UnaryQuestion(0), UnaryQuestion(1)])
        assert self.snapshot(crowd, ledger) == before

    def test_non_strict_budget_completes_degraded(self, small_independent):
        crowd = SimulatedCrowd(
            small_independent, seed=0, max_questions=25, strict=False
        )
        result = crowdsky(small_independent, crowd)
        assert result.stats.questions <= 25
        assert result.budget_exhausted
        assert result.degraded
        assert crowd.budget_degraded

    def test_budgeted_wrapper_still_works_strict(self, small_independent):
        result = crowdsky_budgeted(small_independent, 25)
        assert result.budget_exhausted
        assert result.degraded
        assert result.stats.questions <= 25

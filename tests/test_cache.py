"""Tests for the incremental-lint result cache and ``check --changed``.

Covers, per CONTRIBUTING.md's pre-commit recipe:

* cached output is byte-identical to the uncached engine, cold and
  warm;
* editing one file re-computes exactly that module's findings plus the
  project rules (whose verdicts may depend on any module);
* cache keys fold in the module *name* (scoped rules), the linter's
  own source fingerprint, and the config;
* corrupt/mismatched entries and unwritable cache roots degrade to
  cache-off rather than failing the check;
* ``repro-analysis check --changed`` reports findings only in files
  git sees as modified, and refuses politely outside a work tree.
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path

import pytest

from repro.analysis import AnalysisConfig, analyze_paths
from repro.analysis.cache import (
    AnalysisCache,
    analyze_paths_cached,
    rules_fingerprint,
)
from repro.analysis.cli import main

pytestmark = pytest.mark.analysis

#: Fires RA010 (bare except) wherever it lives — no scoping needed.
BARE_EXCEPT = "try:\n    pass\nexcept:\n    pass\n"
CLEAN = "def double(x):\n    return 2 * x\n"


def _tree(root: Path) -> Path:
    src = root / "src"
    src.mkdir()
    (src / "alpha.py").write_text(BARE_EXCEPT)
    (src / "beta.py").write_text(CLEAN)
    return src


# -- cache correctness --------------------------------------------------------


def test_cached_run_matches_uncached_cold_and_warm(tmp_path):
    src = _tree(tmp_path)
    config = AnalysisConfig()
    expected, _ = analyze_paths([str(src)], config)
    assert expected  # the fixture really produces findings

    cache = AnalysisCache(root=tmp_path / "cache", config=config)
    cold, _, cache = analyze_paths_cached([str(src)], config, None, cache)
    assert cold == expected
    assert cache.hits == 0

    warm_cache = AnalysisCache(root=tmp_path / "cache", config=config)
    warm, _, warm_cache = analyze_paths_cached(
        [str(src)], config, None, warm_cache
    )
    assert warm == expected
    assert warm_cache.misses == 0
    assert warm_cache.hits == 3  # two modules + the project-rule entry


def test_edit_invalidates_the_edited_module_and_project_rules(tmp_path):
    src = _tree(tmp_path)
    config = AnalysisConfig()
    root = tmp_path / "cache"
    analyze_paths_cached(
        [str(src)], config, None, AnalysisCache(root=root, config=config)
    )

    (src / "beta.py").write_text(CLEAN + "\n# touched\n")
    cache = AnalysisCache(root=root, config=config)
    findings, _, cache = analyze_paths_cached(
        [str(src)], config, None, cache
    )
    expected, _ = analyze_paths([str(src)], config)
    assert findings == expected
    # alpha served from cache; beta and the whole-tree entry recomputed
    assert cache.hits == 1
    assert cache.misses == 2


def test_module_key_depends_on_module_name(tmp_path):
    cache = AnalysisCache(root=tmp_path)
    source = "import time\ndef f():\n    return time.time()\n"
    in_scope = cache.module_key("repro.core.x", source, "all")
    loose = cache.module_key("loose", source, "all")
    assert in_scope != loose


def test_fingerprint_is_stable_and_config_sensitive(tmp_path):
    default = AnalysisConfig()
    assert rules_fingerprint(default) == rules_fingerprint(
        AnalysisConfig()
    )
    narrowed = AnalysisConfig(
        deterministic_packages=("repro.core",)
    )
    assert rules_fingerprint(default) != rules_fingerprint(narrowed)


def test_corrupt_and_version_mismatched_entries_are_misses(tmp_path):
    cache = AnalysisCache(root=tmp_path / "cache")
    key = cache.module_key("m", "x = 1\n", "all")
    cache.put(key, [])
    assert cache.get(key) == []

    path = cache._path_for(key)
    path.write_text("not json{")
    assert cache.get(key) is None
    path.write_text(json.dumps({"version": 999, "findings": []}))
    assert cache.get(key) is None


def test_unwritable_cache_root_degrades_to_cache_off(tmp_path):
    blocker = tmp_path / "occupied"
    blocker.write_text("a file where the cache dir should go")
    cache = AnalysisCache(root=blocker)
    key = cache.module_key("m", "x = 1\n", "all")
    cache.put(key, [])  # swallowed OSError
    assert cache.get(key) is None


# -- check --changed ----------------------------------------------------------


def _git(cwd: Path, *args: str) -> None:
    subprocess.run(
        ["git", "-c", "user.email=t@example.invalid",
         "-c", "user.name=t", *args],
        cwd=cwd, check=True, capture_output=True,
    )


@pytest.fixture()
def git_tree(tmp_path, monkeypatch):
    """A git work tree with one committed-clean file and one modified
    file, both carrying a finding."""
    src = _tree(tmp_path)
    (src / "beta.py").write_text(CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-q", "-m", "seed")
    # alpha stays committed+unmodified (its finding must not show);
    # beta gains a finding and is now modified
    (src / "beta.py").write_text(BARE_EXCEPT)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv(
        "REPRO_ANALYSIS_CACHE_DIR", str(tmp_path / "lintcache")
    )
    return src


def test_changed_reports_only_git_modified_files(git_tree, capsys):
    code = main(
        ["check", str(git_tree), "--changed", "--no-baseline"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "beta.py" in out
    assert "alpha.py" not in out
    assert "diff-scoped to 1 file(s)" in out
    assert "cache" in out


def test_changed_is_warm_on_the_second_run(git_tree, capsys):
    main(["check", str(git_tree), "--changed", "--no-baseline",
          "--format", "json"])
    capsys.readouterr()
    main(["check", str(git_tree), "--changed", "--no-baseline",
          "--format", "json"])
    document = json.loads(capsys.readouterr().out)
    summary = document["summary"]
    assert summary["changed_files"] == 1
    assert summary["cache"]["misses"] == 0
    assert summary["cache"]["hits"] == 3
    assert [f["path"] for f in document["findings"]] == [
        str(git_tree / "beta.py")
    ]


def test_changed_respects_no_cache(git_tree, capsys):
    code = main(
        ["check", str(git_tree), "--changed", "--no-baseline",
         "--no-cache"]
    )
    out = capsys.readouterr().out
    assert code == 1
    assert "hit(s)" not in out  # no cache note in the summary line


def test_changed_outside_a_work_tree_exits_2(
    tmp_path, monkeypatch, capsys
):
    src = _tree(tmp_path)
    monkeypatch.chdir(tmp_path)
    monkeypatch.setenv("GIT_DIR", str(tmp_path / "nonexistent.git"))
    code = main(["check", str(src), "--changed", "--no-baseline"])
    err = capsys.readouterr().err
    assert code == 2
    assert "requires a git work tree" in err

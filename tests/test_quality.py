"""Tests for worker-quality tracking and weighted voting (the [11] line)."""

import numpy as np
import pytest

from repro.crowd.oracle import GroundTruthOracle
from repro.crowd.quality import (
    QualityAwareCrowd,
    WorkerQualityTracker,
    weighted_vote,
)
from repro.crowd.questions import PairwiseQuestion, Preference
from repro.crowd.workers import BernoulliWorker, SpammerWorker, WorkerPool
from repro.exceptions import CrowdPlatformError

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL


class TestWorkerQualityTracker:
    def test_prior_validated(self):
        with pytest.raises(CrowdPlatformError):
            WorkerQualityTracker(prior_correct=0.0)

    def test_prior_mean_before_observations(self):
        tracker = WorkerQualityTracker(prior_correct=4.0, prior_wrong=1.0)
        assert tracker.accuracy(0) == pytest.approx(0.8)
        assert tracker.observations(0) == 0

    def test_estimates_converge(self):
        tracker = WorkerQualityTracker()
        for _ in range(100):
            tracker.record(1, True)
        for _ in range(100):
            tracker.record(2, False)
        assert tracker.accuracy(1) > 0.95
        assert tracker.accuracy(2) < 0.1

    def test_weight_sign(self):
        tracker = WorkerQualityTracker()
        for _ in range(50):
            tracker.record(1, True)
            tracker.record(2, False)
        assert tracker.weight(1) > 0
        assert tracker.weight(2) < 0

    def test_weight_clipped(self):
        tracker = WorkerQualityTracker()
        for _ in range(10_000):
            tracker.record(1, True)
        assert tracker.weight(1) <= np.log(0.95 / 0.05) + 1e-9


class TestWeightedVote:
    def _tracker(self):
        tracker = WorkerQualityTracker()
        for _ in range(60):
            tracker.record(1, True)   # expert
            tracker.record(2, False)  # anti-expert
            tracker.record(3, False)
        return tracker

    def test_expert_outvotes_two_spammers(self):
        tracker = self._tracker()
        votes = [(1, L), (2, R), (3, R)]
        assert weighted_vote(votes, tracker) is L

    def test_negative_weights_flip_votes(self):
        """An anti-expert's vote is evidence for the opposite answer."""
        tracker = self._tracker()
        votes = [(2, R), (3, R)]
        # Two unreliable workers voting R push R's bucket negative; the
        # tie resolves to EQUAL rather than trusting them.
        assert weighted_vote(votes, tracker) is not R

    def test_empty_votes_rejected(self):
        with pytest.raises(CrowdPlatformError):
            weighted_vote([], WorkerQualityTracker())


class TestQualityAwareCrowd:
    def _build(self, spammer_fraction, seed=0, gold_rate=0.3):
        relation_latent = np.arange(20, dtype=float)[:, None]
        oracle = GroundTruthOracle.__new__(GroundTruthOracle)
        oracle._latent = relation_latent
        workers = (
            [SpammerWorker()] * int(20 * spammer_fraction)
            + [BernoulliWorker(accuracy=0.9)]
            * (20 - int(20 * spammer_fraction))
        )
        pool = WorkerPool(workers)
        gold = [PairwiseQuestion(0, 19), PairwiseQuestion(1, 18)]
        return QualityAwareCrowd(
            oracle, pool, gold, omega=5, gold_rate=gold_rate, seed=seed
        )

    def test_validation(self):
        crowd = self._build(0.0)
        with pytest.raises(CrowdPlatformError):
            QualityAwareCrowd(
                crowd._oracle, crowd._pool, [], seed=1
            )

    def test_calibration_serves_gold(self):
        crowd = self._build(0.5, seed=1)
        crowd.calibrate(rounds=10)
        assert crowd.gold_served == 50  # 10 rounds × ω=5

    def test_weighted_beats_majority_with_spammers(self):
        """The [11] headline: quality weighting rescues noisy pools."""
        questions = [
            PairwiseQuestion(i, 19 - i) for i in range(8)
        ]
        weighted_correct = 0
        majority_correct = 0
        trials = 0
        for seed in range(12):
            crowd = self._build(0.5, seed=seed)
            crowd.calibrate(rounds=30)
            for question in questions:
                truth = crowd._oracle.pairwise_truth(question)
                if crowd.ask(question) is truth:
                    weighted_correct += 1
                if crowd.ask_majority(question) is truth:
                    majority_correct += 1
                trials += 1
        assert weighted_correct >= majority_correct
        assert weighted_correct / trials > 0.8

    def test_gold_rate_bounds_validated(self):
        crowd = self._build(0.0)
        with pytest.raises(CrowdPlatformError):
            QualityAwareCrowd(
                crowd._oracle, crowd._pool,
                [PairwiseQuestion(0, 1)], gold_rate=1.5,
            )

"""Tests for the three machine skyline algorithms (BNL, SFS, D&C)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.skyline.bnl import bnl_skyline
from repro.skyline.bskytree import bskytree_skyline
from repro.skyline.dnc import dnc_skyline
from repro.skyline.dominance import dominates
from repro.skyline.sfs import sfs_skyline

ALGORITHMS = [bnl_skyline, sfs_skyline, dnc_skyline, bskytree_skyline]

matrices = arrays(
    dtype=float,
    shape=st.tuples(
        st.integers(min_value=1, max_value=60),
        st.integers(min_value=1, max_value=4),
    ),
    elements=st.floats(min_value=0.0, max_value=1.0, width=32),
)


def brute_force(data):
    n = data.shape[0]
    return sorted(
        t
        for t in range(n)
        if not any(s != t and dominates(data[s], data[t]) for s in range(n))
    )


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestAlgorithmContract:
    def test_empty_subset(self, algorithm):
        data = np.random.default_rng(0).random((5, 2))
        assert algorithm(data, indices=[]) == []

    def test_single_tuple(self, algorithm):
        assert algorithm(np.asarray([[0.5, 0.5]])) == [0]

    def test_matches_brute_force(self, algorithm):
        data = np.random.default_rng(1).random((80, 3))
        assert algorithm(data) == brute_force(data)

    def test_restricted_indices(self, algorithm):
        data = np.asarray(
            [[0.1, 0.9], [0.9, 0.1], [0.5, 0.5], [0.05, 0.05]]
        )
        # Tuple 3 dominates everything but is excluded from the subset.
        assert algorithm(data, indices=[0, 1, 2]) == [0, 1, 2]

    def test_duplicates_all_kept(self, algorithm):
        data = np.asarray([[0.2, 0.2], [0.2, 0.2], [0.9, 0.9]])
        assert algorithm(data) == [0, 1]

    def test_total_order_chain(self, algorithm):
        data = np.asarray([[float(i)] * 2 for i in range(10)])
        assert algorithm(data) == [0]

    def test_all_incomparable(self, algorithm):
        data = np.asarray([[float(i), float(9 - i)] for i in range(10)])
        assert algorithm(data) == list(range(10))


class TestCrossAgreement:
    @settings(max_examples=60, deadline=None)
    @given(matrices)
    def test_all_algorithms_agree(self, data):
        results = [algorithm(data) for algorithm in ALGORITHMS]
        assert all(result == results[0] for result in results)

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_skyline_tuples_not_dominated(self, data):
        skyline = bnl_skyline(data)
        for t in skyline:
            assert not any(
                s != t and dominates(data[s], data[t])
                for s in range(data.shape[0])
            )

    @settings(max_examples=40, deadline=None)
    @given(matrices)
    def test_non_skyline_tuples_dominated(self, data):
        skyline = set(bnl_skyline(data))
        for t in range(data.shape[0]):
            if t not in skyline:
                assert any(
                    dominates(data[s], data[t]) for s in skyline
                ), "every non-skyline tuple must be dominated by a skyline tuple"

    def test_dnc_handles_constant_first_attribute(self):
        data = np.zeros((100, 2))
        data[:, 1] = np.arange(100)
        assert dnc_skyline(data) == [0]

    def test_toy_dataset_skyline(self, toy):
        skyline = bnl_skyline(toy.known_matrix())
        labels = {toy.label(i) for i in skyline}
        assert labels == {"b", "e", "i", "l"}

"""Tests for the parallel schedulers, pinned against the paper's rounds."""

import pytest

from repro.core.crowdsky import CrowdSkyConfig, PruningLevel, crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import FIGURE1_SKYLINE_LABELS, figure1_dataset
from repro.metrics.accuracy import ground_truth_skyline


class TestGoldenRounds:
    def test_parallel_dset_nine_rounds(self, toy):
        """Example 7: 12 questions in 9 rounds."""
        result = parallel_dset(toy)
        assert result.stats.questions == 12
        assert result.stats.rounds == 9

    def test_parallel_sl_six_rounds(self, toy):
        """Example 8 / Table 3: 12 questions in 6 rounds."""
        result = parallel_sl(toy)
        assert result.stats.questions == 12
        assert result.stats.rounds == 6

    def test_parallel_sl_schedule_matches_table3(self, toy):
        result = parallel_sl(toy)
        by_round = {}
        for round_number, question, _ in result.question_log:
            pair = tuple(
                sorted((toy.label(question.left), toy.label(question.right)))
            )
            by_round.setdefault(round_number, set()).add(pair)
        assert by_round == {
            1: {("a", "b"), ("e", "g"), ("b", "e"), ("i", "l")},
            2: {("d", "e"), ("i", "k"), ("c", "e")},
            3: {("e", "f"), ("e", "i")},
            4: {("e", "h")},
            5: {("f", "h")},
            6: {("f", "j")},
        }

    def test_both_schedulers_reproduce_paper_skyline(self, toy):
        for algorithm in (parallel_dset, parallel_sl):
            result = algorithm(figure1_dataset())
            assert result.skyline_labels(toy) == set(FIGURE1_SKYLINE_LABELS)


class TestCorrectness:
    @pytest.mark.parametrize("algorithm", [parallel_dset, parallel_sl])
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_ground_truth(self, algorithm, seed):
        relation = generate_synthetic(
            60, 3, 1, Distribution.INDEPENDENT, seed=seed
        )
        assert algorithm(relation).skyline == ground_truth_skyline(relation)

    @pytest.mark.parametrize("algorithm", [parallel_dset, parallel_sl])
    def test_anti_correlated(self, algorithm):
        relation = generate_synthetic(
            50, 2, 1, Distribution.ANTI_CORRELATED, seed=5
        )
        assert algorithm(relation).skyline == ground_truth_skyline(relation)

    @pytest.mark.parametrize("algorithm", [parallel_dset, parallel_sl])
    def test_multi_crowd_attributes(self, algorithm):
        relation = generate_synthetic(
            40, 2, 2, Distribution.INDEPENDENT, seed=9
        )
        assert algorithm(relation).skyline == ground_truth_skyline(relation)

    @pytest.mark.parametrize("algorithm", [parallel_dset, parallel_sl])
    def test_duplicates_preprocessing(self, algorithm):
        from tests.conftest import make_relation

        relation = make_relation(
            [(1, 1), (1, 1), (2, 2)],
            [(2,), (1,), (3,)],
        )
        assert algorithm(relation).skyline == {1}


class TestLatencyOrdering:
    def test_rounds_strictly_improve(self):
        """Serial ≥ ParallelDSet ≥ ParallelSL on the same data (§6.1)."""
        serial = crowdsky(
            generate_synthetic(120, 3, 1, Distribution.INDEPENDENT, seed=1)
        )
        dset = parallel_dset(
            generate_synthetic(120, 3, 1, Distribution.INDEPENDENT, seed=1)
        )
        layered = parallel_sl(
            generate_synthetic(120, 3, 1, Distribution.INDEPENDENT, seed=1)
        )
        assert serial.stats.rounds >= dset.stats.rounds >= layered.stats.rounds
        assert layered.stats.rounds < serial.stats.rounds / 2

    def test_parallel_dset_keeps_serial_question_count(self):
        """§6.1: ParallelDSet generates the same questions as Serial."""
        serial = crowdsky(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=2)
        )
        dset = parallel_dset(
            generate_synthetic(100, 3, 1, Distribution.INDEPENDENT, seed=2)
        )
        # Identical up to evaluation-order effects; allow a tiny delta.
        assert abs(dset.stats.questions - serial.stats.questions) <= max(
            3, serial.stats.questions // 20
        )

    def test_parallel_sl_extra_questions_bounded(self):
        """§6.1: ParallelSL asks ~10% more questions by violating (C2)."""
        serial = crowdsky(
            generate_synthetic(150, 3, 1, Distribution.INDEPENDENT, seed=3)
        )
        layered = parallel_sl(
            generate_synthetic(150, 3, 1, Distribution.INDEPENDENT, seed=3)
        )
        assert layered.stats.questions <= serial.stats.questions * 1.3

    def test_rounds_decrease_with_more_known_attributes(self):
        """Figure 9's key observation for the parallel schedulers."""
        low = parallel_sl(
            generate_synthetic(150, 2, 1, Distribution.INDEPENDENT, seed=4)
        )
        high = parallel_sl(
            generate_synthetic(150, 5, 1, Distribution.INDEPENDENT, seed=4)
        )
        assert high.stats.rounds <= low.stats.rounds


class TestPruningConfigs:
    @pytest.mark.parametrize("algorithm", [parallel_dset, parallel_sl])
    @pytest.mark.parametrize("level", list(PruningLevel))
    def test_all_levels_correct(self, algorithm, level):
        relation = generate_synthetic(
            50, 3, 1, Distribution.INDEPENDENT, seed=6
        )
        result = algorithm(relation, config=CrowdSkyConfig(pruning=level))
        assert result.skyline == ground_truth_skyline(relation)

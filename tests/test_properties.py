"""Cross-module property-based tests on the core invariants.

These are the heavyweight guarantees: with a perfect crowd, every
algorithm (serial, both parallel schedulers, baseline, unary) computes
exactly the latent ground-truth skyline, for arbitrary datasets —
including pathological ones hypothesis invents.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import CrowdSkyConfig, PruningLevel, crowdsky
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.preference import ContradictionPolicy
from repro.core.unary import unary_skyline
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import StaticVoting
from repro.crowd.workers import WorkerPool
from repro.metrics.accuracy import ak_skyline, ground_truth_skyline
from tests.conftest import make_relation

ALGORITHMS = [crowdsky, parallel_dset, parallel_sl, baseline_skyline,
              unary_skyline]

# Small integer grids produce plenty of ties and duplicates — the nasty
# cases for dominance logic.
relations = st.builds(
    make_relation,
    st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)),
        min_size=1,
        max_size=14,
    ),
    st.none(),
).map(lambda r: r)


@st.composite
def crowd_relations(draw):
    known = draw(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 5)),
            min_size=1,
            max_size=14,
        )
    )
    latent = draw(
        st.lists(
            st.tuples(st.integers(0, 5)),
            min_size=len(known),
            max_size=len(known),
        )
    )
    return make_relation(known, latent)


@pytest.mark.parametrize("algorithm", ALGORITHMS)
class TestPerfectCrowdExactness:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_exact_skyline(self, algorithm, relation):
        result = algorithm(relation)
        assert result.skyline == ground_truth_skyline(relation)


class TestStructuralInvariants:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_unique_ak_skyline_tuples_always_in_result(self, relation):
        """AK-skyline tuples stay in the skyline — except AK-duplicates,
        which the degenerate-case preprocessing may resolve in AC."""
        result = crowdsky(relation)
        known = relation.known_matrix()
        for t in ak_skyline(relation):
            has_twin = any(
                s != t and np.array_equal(known[s], known[t])
                for s in range(len(relation))
            )
            if not has_twin:
                assert t in result.skyline

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_parallel_schedulers_agree_with_serial(self, relation):
        serial = crowdsky(relation).skyline
        assert parallel_dset(relation).skyline == serial
        assert parallel_sl(relation).skyline == serial

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_pruning_levels_agree(self, relation):
        baseline = crowdsky(
            relation, config=CrowdSkyConfig(pruning=PruningLevel.DSET)
        ).skyline
        for level in (PruningLevel.P1, PruningLevel.P1_P2,
                      PruningLevel.P1_P2_P3):
            assert crowdsky(
                relation, config=CrowdSkyConfig(pruning=level)
            ).skyline == baseline

    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_no_contradictions_under_perfect_crowd(self, relation):
        """A perfect crowd can never produce a cyclic preference graph."""
        result = crowdsky(
            relation,
            config=CrowdSkyConfig(policy=ContradictionPolicy.RAISE),
        )
        assert result.rejected_answers == 0

    @settings(
        max_examples=20,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(relation=crowd_relations())
    def test_question_budget_bounded_by_all_pairs(self, relation):
        n = len(relation)
        result = crowdsky(relation)
        assert result.stats.questions <= n * (n - 1) // 2


class TestFailureInjection:
    """Robustness under hostile crowds: results may be wrong but the
    engine must terminate, stay acyclic and report a valid skyline set."""

    @pytest.mark.parametrize("accuracy", [0.5, 0.6, 0.8])
    @pytest.mark.parametrize(
        "algorithm", [crowdsky, parallel_dset, parallel_sl]
    )
    def test_noisy_crowd_terminates(self, accuracy, algorithm, toy):
        crowd = SimulatedCrowd(
            toy,
            pool=WorkerPool.uniform(accuracy=accuracy),
            voting=StaticVoting(3),
            seed=99,
        )
        result = algorithm(toy, crowd=crowd)
        assert result.skyline <= set(range(len(toy)))
        assert result.skyline  # a skyline is never empty

    def test_adversarial_crowd_terminates(self, toy):
        """Even an always-wrong crowd cannot hang or crash the engine."""
        crowd = SimulatedCrowd(
            toy,
            pool=WorkerPool.uniform(accuracy=0.0),
            voting=StaticVoting(1),
            seed=0,
        )
        result = crowdsky(toy, crowd=crowd)
        assert result.stats.questions > 0

    def test_spammer_pool_terminates(self, toy, rng):
        crowd = SimulatedCrowd(
            toy,
            pool=WorkerPool.mixed(rng, size=20, spammer_fraction=1.0),
            voting=StaticVoting(5),
            seed=1,
        )
        result = crowdsky(toy, crowd=crowd)
        assert result.skyline

    def test_mixed_pool_with_spammers_still_reasonable(self, rng):
        from repro.data.synthetic import Distribution, generate_synthetic
        from repro.metrics.accuracy import precision_recall

        relation = generate_synthetic(
            80, 3, 1, Distribution.INDEPENDENT, seed=17
        )
        crowd = SimulatedCrowd(
            relation,
            pool=WorkerPool.mixed(
                rng, size=50, spammer_fraction=0.1, mean_accuracy=0.9
            ),
            voting=StaticVoting(5),
            seed=17,
        )
        result = crowdsky(relation, crowd=crowd)
        report = precision_recall(result.skyline, relation)
        assert report.recall >= 0.5

    def test_rejected_answers_counted_under_noise(self):
        from repro.data.synthetic import Distribution, generate_synthetic

        total = 0
        for seed in range(5):
            relation = generate_synthetic(
                100, 2, 1, Distribution.ANTI_CORRELATED, seed=seed
            )
            crowd = SimulatedCrowd(
                relation,
                pool=WorkerPool.uniform(accuracy=0.6),
                voting=StaticVoting(1),
                seed=seed,
            )
            result = parallel_sl(relation, crowd=crowd)
            total += result.rejected_answers
        assert total >= 0  # bookkeeping is wired through (often > 0)

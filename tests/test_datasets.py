"""Tests for the toy and real-life datasets against the paper's facts."""

import numpy as np
import pytest

from repro.data.mlb import PAPER_Q3_SKYLINE, PITCHERS, mlb_dataset, perceived_value
from repro.data.movies import (
    MOVIES,
    PAPER_Q2_AK_SKYLINE,
    PAPER_Q2_SKYLINE,
    movies_dataset,
)
from repro.data.rectangles import rectangles_dataset, true_size
from repro.data.toy import (
    FIGURE1_KNOWN,
    FIGURE1_LATENT_ORDER,
    FIGURE1_SKYLINE_LABELS,
    FIGURE3_LATENT_ORDER,
    figure1_dataset,
    figure3_dataset,
)
from repro.metrics.accuracy import ak_skyline, ground_truth_skyline


class TestFigure1Dataset:
    def test_twelve_tuples_with_paper_values(self, toy):
        assert len(toy) == 12
        for label, values in FIGURE1_KNOWN.items():
            row = toy[toy.index_of(label)]
            assert row.known == tuple(float(v) for v in values)

    def test_ak_skyline_is_b_e_i_l(self, toy):
        labels = {toy.label(i) for i in ak_skyline(toy)}
        assert labels == {"b", "e", "i", "l"}

    def test_ground_truth_skyline_matches_paper(self, toy):
        labels = {toy.label(i) for i in ground_truth_skyline(toy)}
        assert labels == set(FIGURE1_SKYLINE_LABELS)

    def test_latent_order_covers_all_tuples(self):
        assert sorted(FIGURE1_LATENT_ORDER) == sorted(FIGURE1_KNOWN)

    @pytest.mark.parametrize(
        "preferred, over",
        [
            # Every preference the paper's worked examples reveal.
            ("b", "a"), ("e", "b"), ("f", "e"), ("e", "c"), ("e", "d"),
            ("e", "g"), ("e", "i"), ("h", "e"), ("f", "h"), ("k", "i"),
            ("i", "l"), ("f", "j"),
        ],
    )
    def test_latent_order_satisfies_paper_constraints(
        self, toy, preferred, over
    ):
        latent = toy.latent_matrix()[:, 0]
        assert latent[toy.index_of(preferred)] < latent[toy.index_of(over)]


class TestFigure3Dataset:
    def test_ten_tuples(self, toy_fig3):
        assert len(toy_fig3) == 10

    def test_ak_skyline(self, toy_fig3):
        labels = {toy_fig3.label(i) for i in ak_skyline(toy_fig3)}
        assert labels == {"b", "e", "i", "j"}

    def test_uniform_dominating_sets(self, toy_fig3):
        """Every AK-non-skyline tuple is dominated by exactly {b, e, i, j}."""
        from repro.skyline.dominating import dominating_sets

        ds = dominating_sets(toy_fig3.known_matrix())
        expected = {
            toy_fig3.index_of(x) for x in ("b", "e", "i", "j")
        }
        for label in "acdfgh":
            assert ds[toy_fig3.index_of(label)] == expected

    def test_e_most_preferred(self, toy_fig3):
        latent = toy_fig3.latent_matrix()[:, 0]
        assert int(np.argmin(latent)) == toy_fig3.index_of("e")

    def test_latent_order_covers_all(self, toy_fig3):
        assert sorted(FIGURE3_LATENT_ORDER) == sorted(
            toy_fig3.label(i) for i in range(len(toy_fig3))
        )


class TestRectangles:
    def test_fifty_rectangles(self):
        assert len(rectangles_dataset()) == 50

    def test_true_size_formula(self):
        assert true_size(0) == (30, 40)
        assert true_size(49) == (30 + 3 * 49, 40 + 5 * 49)

    def test_latent_is_true_area(self):
        relation = rectangles_dataset()
        for i, row in enumerate(relation):
            w0, h0 = true_size(i)
            assert row.latent == (float(w0 * h0),)

    def test_bbox_at_least_original(self):
        """A rotated bounding box never shrinks below the true sides."""
        relation = rectangles_dataset()
        for i, row in enumerate(relation):
            w0, h0 = true_size(i)
            width, height = row.known
            assert width >= min(w0, h0) - 1e-9
            assert height >= min(w0, h0) - 1e-9
            assert max(width, height) <= float(w0 + h0)

    def test_seed_controls_rotation(self):
        a = rectangles_dataset(seed=1)
        b = rectangles_dataset(seed=2)
        assert a[0].known != b[0].known

    def test_crowd_attribute_is_area_max(self):
        schema = rectangles_dataset().schema
        (crowd,) = schema.crowd_attributes
        assert crowd.name == "area"


class TestMovies:
    def test_fifty_movies(self):
        assert len(MOVIES) == 50
        assert len(movies_dataset()) == 50

    def test_unique_titles(self):
        titles = [title for title, *_ in MOVIES]
        assert len(set(titles)) == 50

    def test_years_within_paper_range(self):
        assert all(2000 <= year <= 2012 for _, year, _, _ in MOVIES)

    def test_ak_skyline_matches_paper(self):
        relation = movies_dataset()
        labels = {relation.label(i) for i in ak_skyline(relation)}
        assert labels == PAPER_Q2_AK_SKYLINE

    def test_ground_truth_skyline_matches_paper(self):
        relation = movies_dataset()
        labels = {relation.label(i) for i in ground_truth_skyline(relation)}
        assert labels == PAPER_Q2_SKYLINE

    def test_new_skyline_movies_average_rating_high(self):
        """§6.2: the three newly retrieved movies average ~8.7/10."""
        ratings = {title: rating for title, _, _, rating in MOVIES}
        new = PAPER_Q2_SKYLINE - PAPER_Q2_AK_SKYLINE
        average = sum(ratings[title] for title in new) / len(new)
        assert 8.5 <= average <= 8.9


class TestMLB:
    def test_forty_pitchers(self):
        assert len(PITCHERS) == 40
        assert len(mlb_dataset()) == 40

    def test_ak_skyline_is_cy_young_candidates(self):
        relation = mlb_dataset()
        labels = {relation.label(i) for i in ak_skyline(relation)}
        assert labels == PAPER_Q3_SKYLINE

    def test_ground_truth_skyline_matches_paper(self):
        relation = mlb_dataset()
        labels = {relation.label(i) for i in ground_truth_skyline(relation)}
        assert labels == PAPER_Q3_SKYLINE

    def test_perceived_value_monotone(self):
        base = perceived_value(15, 200, 3.00)
        assert perceived_value(16, 200, 3.00) > base
        assert perceived_value(15, 210, 3.00) > base
        assert perceived_value(15, 200, 2.80) > base

    def test_era_direction_is_min(self):
        schema = mlb_dataset().schema
        era = schema.attribute("era")
        from repro.data.relation import Direction

        assert era.direction is Direction.MIN


class TestNBA:
    def test_fifty_players(self):
        from repro.data.nba import PLAYERS, nba_dataset

        assert len(PLAYERS) == 50
        assert len(nba_dataset()) == 50

    def test_unique_names(self):
        from repro.data.nba import PLAYERS

        names = [name for name, *_ in PLAYERS]
        assert len(set(names)) == 50

    def test_impact_monotone(self):
        from repro.data.nba import perceived_impact

        base = perceived_impact(20.0, 8.0, 5.0)
        assert perceived_impact(21.0, 8.0, 5.0) > base
        assert perceived_impact(20.0, 9.0, 5.0) > base
        assert perceived_impact(20.0, 8.0, 6.0) > base

    def test_crowd_skyline_equals_ak_skyline(self):
        """A monotone latent never adds skyline tuples beyond AK."""
        from repro.data.nba import nba_dataset

        relation = nba_dataset()
        assert ground_truth_skyline(relation) == ak_skyline(relation)

    def test_lebron_in_skyline(self):
        from repro.data.nba import nba_dataset

        relation = nba_dataset()
        labels = {relation.label(i) for i in ak_skyline(relation)}
        assert "LeBron James" in labels
        assert "Kevin Durant" in labels

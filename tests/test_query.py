"""Tests for the SKYLINE-OF query language (lexer, parser, executor)."""

import pytest

from repro.core.parallel import parallel_sl
from repro.data.movies import PAPER_Q2_SKYLINE, movies_dataset
from repro.data.relation import Direction
from repro.exceptions import QuerySemanticError, QuerySyntaxError
from repro.query.ast import Comparison
from repro.query.executor import execute_query
from repro.query.lexer import TokenType, tokenize
from repro.query.parser import parse_query
from tests.conftest import make_relation


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("select * from t skyline of a max")
        keywords = [t.value for t in tokens if t.type is TokenType.KEYWORD]
        assert keywords == ["SELECT", "FROM", "SKYLINE", "OF", "MAX"]

    def test_numbers_and_operators(self):
        tokens = tokenize("x >= 20.5")
        assert [t.type for t in tokens[:-1]] == [
            TokenType.IDENTIFIER,
            TokenType.OPERATOR,
            TokenType.NUMBER,
        ]
        assert tokens[1].value == ">="

    def test_strings(self):
        tokens = tokenize("label = 'Avatar'")
        assert tokens[2].type is TokenType.STRING
        assert tokens[2].value == "Avatar"

    def test_unterminated_string(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("label = 'oops")

    def test_unexpected_character(self):
        with pytest.raises(QuerySyntaxError):
            tokenize("a ; b")

    def test_end_token_always_present(self):
        assert tokenize("")[-1].type is TokenType.END

    def test_negative_number(self):
        tokens = tokenize("x > -3.5")
        assert tokens[2].value == "-3.5"


class TestParser:
    def test_full_query(self):
        query = parse_query(
            "SELECT * FROM movie_db WHERE year >= 2010 AND year <= 2015 "
            "SKYLINE OF box_office MAX, romantic MAX"
        )
        assert query.table == "movie_db"
        assert len(query.where.conditions) == 2
        assert query.where.conditions[0].op is Comparison.GE
        assert [s.attribute for s in query.skyline] == [
            "box_office",
            "romantic",
        ]
        assert all(s.direction is Direction.MAX for s in query.skyline)

    def test_projection_list(self):
        query = parse_query("SELECT a, b FROM t")
        assert query.projection == ("a", "b")

    def test_min_direction(self):
        query = parse_query("SELECT * FROM t SKYLINE OF price MIN")
        assert query.skyline[0].direction is Direction.MIN

    def test_with_crowd_hint(self):
        query = parse_query("SELECT * FROM t SKYLINE OF a MIN WITH CROWD")
        assert query.crowd_hint

    def test_missing_direction_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t SKYLINE OF a")

    def test_missing_from_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT *")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t extra")

    def test_bad_literal_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_query("SELECT * FROM t WHERE a = =")

    def test_string_literal_condition(self):
        query = parse_query("SELECT * FROM t WHERE label = 'Avatar'")
        assert query.where.conditions[0].literal == "Avatar"


class TestExecutor:
    @pytest.fixture
    def relation(self):
        # known: price (MIN), year (MAX); crowd: quality (MAX).
        return make_relation(
            [(10, 2010), (20, 2012), (30, 2008), (15, 2012)],
            [(3,), (1,), (2,), (4,)],
            directions=[
                Direction.MIN,
                Direction.MAX,
                Direction.MAX,
            ],
        )

    def test_where_filtering(self, relation):
        result = execute_query(
            "SELECT * FROM t WHERE A2 >= 2010", relation
        )
        assert result.indices == [0, 1, 3]

    def test_machine_skyline_when_known_only(self, relation):
        result = execute_query(
            "SELECT * FROM t SKYLINE OF A1 MIN, A2 MAX", relation
        )
        assert not result.used_crowd
        # Tuple 1 (20, 2012) is dominated by tuple 3 (15, 2012).
        assert set(result.indices) == {0, 3}

    def test_crowd_skyline(self, relation):
        result = execute_query(
            "SELECT * FROM t SKYLINE OF A1 MIN, C1 MAX", relation
        )
        assert result.used_crowd
        assert result.stats is not None
        # quality: t1 best (latent MAX 4 -> index 3); price: index 0 best.
        assert set(result.indices) == {0, 3}

    def test_movie_example_matches_paper(self):
        relation = movies_dataset()
        result = execute_query(
            "SELECT * FROM movie_db WHERE release_year >= 2000 "
            "SKYLINE OF box_office MAX, release_year MAX, rating MAX",
            {"movie_db": relation},
        )
        assert result.labels(relation) == PAPER_Q2_SKYLINE

    def test_alternative_algorithm(self, relation):
        result = execute_query(
            "SELECT * FROM t SKYLINE OF A1 MIN, C1 MAX",
            relation,
            algorithm=parallel_sl,
        )
        assert set(result.indices) == {0, 3}
        assert "ParallelSL" in result.algorithm

    def test_unknown_table(self, relation):
        with pytest.raises(QuerySemanticError):
            execute_query("SELECT * FROM nope", {"t": relation})

    def test_where_on_crowd_attribute_rejected(self, relation):
        with pytest.raises(QuerySemanticError):
            execute_query("SELECT * FROM t WHERE C1 >= 1", relation)

    def test_unknown_projection_rejected(self, relation):
        with pytest.raises(QuerySemanticError):
            execute_query("SELECT nope FROM t", relation)

    def test_label_condition(self):
        relation = movies_dataset()
        result = execute_query(
            "SELECT * FROM t WHERE label = 'Avatar'", relation
        )
        assert len(result.indices) == 1
        assert relation.label(result.indices[0]) == "Avatar"

    def test_label_condition_inequality(self):
        relation = movies_dataset()
        result = execute_query(
            "SELECT * FROM t WHERE label != 'Avatar'", relation
        )
        assert len(result.indices) == len(relation) - 1

    def test_label_condition_bad_operator(self):
        relation = movies_dataset()
        with pytest.raises(QuerySemanticError):
            execute_query("SELECT * FROM t WHERE label >= 'A'", relation)

    def test_rows_projection(self, relation):
        result = execute_query(
            "SELECT A1 FROM t WHERE A2 >= 2012", relation
        )
        assert result.rows == [{"A1": 20.0}, {"A1": 15.0}]

    def test_star_projection_includes_label(self, relation):
        result = execute_query("SELECT * FROM t WHERE A1 <= 10", relation)
        assert "label" in result.rows[0]

    def test_no_skyline_clause_returns_filter(self, relation):
        result = execute_query("SELECT * FROM t", relation)
        assert result.indices == [0, 1, 2, 3]
        assert not result.used_crowd

    def test_crowd_hint_forces_crowd(self, relation):
        result = execute_query(
            "SELECT * FROM t SKYLINE OF A1 MIN, A2 MAX WITH CROWD",
            relation,
        )
        # The last attribute (A2) is crowdsourced from its stored values;
        # a perfect crowd reproduces the machine skyline.
        assert result.used_crowd is True
        assert set(result.indices) == {0, 3}

    def test_crowd_hint_single_known_attribute_rejected(self, relation):
        with pytest.raises(QuerySemanticError):
            execute_query(
                "SELECT * FROM t SKYLINE OF A1 MIN WITH CROWD", relation
            )

"""Pipeline regression: smoke-scale experiments against stored fixtures.

Every experiment is fully seeded, so its smoke-scale output is
deterministic bit for bit. The fixture pins the *entire* pipeline —
generators, crowd simulation, algorithms, metrics, report rows — against
accidental behaviour drift. If a change intentionally shifts results,
regenerate with::

    python -m repro.experiments run all --scale smoke \
        --json tests/fixtures/smoke_expected.json

and explain the shift in the commit (see CONTRIBUTING.md).
"""

import json
from pathlib import Path

import pytest

from repro.experiments.registry import run_experiment

FIXTURE = Path(__file__).parent / "fixtures" / "smoke_expected.json"

with FIXTURE.open() as handle:
    _EXPECTED = {entry["id"]: entry for entry in json.load(handle)}


def _approx_equal(a, b):
    if isinstance(a, float) or isinstance(b, float):
        return a == pytest.approx(b, rel=1e-9, abs=1e-12)
    return a == b


@pytest.mark.parametrize("experiment_id", sorted(_EXPECTED))
def test_smoke_output_matches_fixture(experiment_id):
    expected = _EXPECTED[experiment_id]
    result = run_experiment(experiment_id, scale="smoke")
    assert list(result.columns) == expected["columns"]
    assert len(result.rows) == len(expected["rows"])
    for produced, stored in zip(result.rows, expected["rows"]):
        assert set(produced) == set(stored)
        for key in stored:
            assert _approx_equal(produced[key], stored[key]), (
                experiment_id,
                key,
                produced[key],
                stored[key],
            )


def test_fixture_covers_every_registered_experiment():
    from repro.experiments.registry import available_experiments

    assert set(_EXPECTED) == set(available_experiments())

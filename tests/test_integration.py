"""End-to-end integration tests crossing module boundaries."""

import pytest

from repro.core.baseline import baseline_skyline
from repro.core.crowdsky import CrowdSkyConfig, crowdsky, crowdsky_budgeted
from repro.core.parallel import parallel_dset, parallel_sl
from repro.core.unary import unary_skyline
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.voting import DynamicVoting, StaticVoting
from repro.crowd.workers import DifficultyAwareWorker, WorkerPool
from repro.data.mlb import PAPER_Q3_SKYLINE, mlb_dataset
from repro.data.movies import PAPER_Q2_SKYLINE, movies_dataset
from repro.data.rectangles import rectangles_dataset
from repro.metrics.accuracy import ground_truth_skyline, precision_recall
from repro.query.executor import execute_query
from repro.skyline.dominance import dominance_matrix
from repro.skyline.dominating import FrequencyOracle

ALL_ALGORITHMS = [crowdsky, parallel_dset, parallel_sl, baseline_skyline,
                  unary_skyline]


class TestRealDatasetsAcrossAlgorithms:
    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_movies_perfect_crowd(self, algorithm):
        relation = movies_dataset()
        result = algorithm(relation)
        assert result.skyline_labels(relation) == PAPER_Q2_SKYLINE

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_mlb_perfect_crowd(self, algorithm):
        relation = mlb_dataset()
        result = algorithm(relation)
        assert result.skyline_labels(relation) == PAPER_Q3_SKYLINE

    @pytest.mark.parametrize("algorithm", ALL_ALGORITHMS)
    def test_rectangles_perfect_crowd(self, algorithm):
        relation = rectangles_dataset()
        result = algorithm(relation)
        assert result.skyline == ground_truth_skyline(relation)


class TestQueryLanguagePipelines:
    def test_movie_query_with_noisy_masters_crowd(self):
        relation = movies_dataset()

        def crowd_factory(filtered):
            return SimulatedCrowd(
                filtered,
                pool=WorkerPool.uniform(accuracy=0.97),
                voting=StaticVoting(5),
                seed=4,
            )

        result = execute_query(
            "SELECT * FROM movies WHERE release_year >= 2000 "
            "SKYLINE OF box_office MAX, release_year MAX, rating MAX",
            {"movies": relation},
            crowd_factory=crowd_factory,
        )
        report_labels = result.labels(relation)
        # High-accuracy Masters reproduce the paper's skyline.
        assert report_labels == PAPER_Q2_SKYLINE
        assert result.stats.hit_cost() > 0

    def test_query_where_narrows_crowd_work(self):
        relation = movies_dataset()
        narrow = execute_query(
            "SELECT * FROM m WHERE release_year >= 2011 "
            "SKYLINE OF box_office MAX, rating MAX",
            relation,
        )
        wide = execute_query(
            "SELECT * FROM m SKYLINE OF box_office MAX, rating MAX",
            relation,
        )
        assert narrow.stats.questions <= wide.stats.questions

    def test_query_with_parallel_scheduler_and_dynamic_voting(self):
        relation = movies_dataset()

        def crowd_factory(filtered):
            frequency = FrequencyOracle(
                dominance_matrix(filtered.known_matrix())
            )
            return SimulatedCrowd(
                filtered,
                pool=WorkerPool.uniform(accuracy=0.95),
                voting=DynamicVoting.from_frequency(frequency),
                seed=9,
            )

        result = execute_query(
            "SELECT * FROM m SKYLINE OF box_office MAX, release_year MAX, "
            "rating MAX",
            relation,
            crowd_factory=crowd_factory,
            algorithm=parallel_sl,
        )
        assert result.used_crowd
        # Two known attributes leave room for parallel rounds (a single
        # known attribute would make AK a chain and ParallelSL serial).
        assert result.stats.rounds < result.stats.questions


class TestDifficultyAwarePipeline:
    def test_rectangles_with_difficulty_aware_workers(self):
        relation = rectangles_dataset()
        pool = WorkerPool([DifficultyAwareWorker(easiness_scale=0.02)] * 30)
        crowd = SimulatedCrowd(
            relation, pool=pool, voting=StaticVoting(5), seed=3
        )
        result = crowdsky(relation, crowd=crowd)
        report = precision_recall(result.skyline, relation)
        assert report.recall >= 0.75


class TestBudgetWithNoise:
    def test_budgeted_noisy_run_terminates_within_budget(self):
        relation = movies_dataset()
        crowd = SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(accuracy=0.8),
            voting=StaticVoting(3),
            seed=6,
        )
        result = crowdsky_budgeted(relation, 25, crowd=crowd)
        assert result.stats.questions <= 25
        assert result.skyline  # never empty

    def test_multiway_budgeted_combination(self):
        relation = mlb_dataset()
        result = crowdsky_budgeted(
            relation, 20, config=CrowdSkyConfig(multiway=4)
        )
        assert result.stats.questions <= 20

"""Tests for the call-graph builder and the interprocedural rules.

Covers, per docs/static-analysis.md:

* the definition inventory (module-level functions, methods, nested
  defs with runtime ``outer.<locals>.inner`` qualnames, the
  ``<module>`` pseudo-function);
* edge resolution through import aliases, ``self.method`` dispatch,
  conditional-expression aliases, ``pool.submit`` arguments, and
  ``"module:function"`` runner strings (including nested targets);
* per-function sink summaries (wall clock, unseeded RNG, env reads,
  truncating writes) and BFS reachability;
* bad+good fixture pairs for each interprocedural rule RA013-RA016,
  including the nested-function runner RA014 must flag;
* a Hypothesis property: the builder never crashes on arbitrary
  syntactically-valid module sets.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.analysis import AnalysisConfig, SourceModule, analyze_modules
from repro.analysis.callgraph import MODULE_BODY, CallGraph
from tests.strategies import module_names, python_modules

pytestmark = pytest.mark.analysis


def mod(name: str, source: str) -> SourceModule:
    path = name.replace(".", "/") + ".py"
    return SourceModule.parse(name, source, path)


def build(*modules: SourceModule) -> CallGraph:
    return CallGraph.build(list(modules), AnalysisConfig())


def run(*modules: SourceModule, select=None):
    return analyze_modules(list(modules), AnalysisConfig(), select)


def codes(findings):
    return sorted({f.code for f in findings})


# -- definition inventory -----------------------------------------------------


def test_inventory_functions_methods_and_nested_defs():
    graph = build(mod(
        "repro.core.inv",
        "def top():\n"
        "    def inner():\n"
        "        pass\n"
        "    return inner\n"
        "\n"
        "class Engine:\n"
        "    def run(self):\n"
        "        pass\n",
    ))
    quals = {
        info.qualname for info in graph.functions_in("repro.core.inv")
    }
    assert quals == {
        MODULE_BODY, "top", "top.<locals>.inner", "Engine.run",
    }
    inner = graph.function(("repro.core.inv", "top.<locals>.inner"))
    assert inner.is_nested and not inner.is_method
    method = graph.function(("repro.core.inv", "Engine.run"))
    assert method.is_method and not method.is_nested
    top = graph.function(("repro.core.inv", "top"))
    assert top.is_module_level


def test_resolve_dotted_lookup():
    graph = build(mod("repro.core.look", "def f():\n    pass\n"))
    assert graph.resolve_dotted("repro.core.look.f") == (
        "repro.core.look", "f",
    )
    assert graph.resolve_dotted("repro.core.look.g") is None


# -- edge resolution ----------------------------------------------------------


def test_cross_module_edge_through_import_alias():
    caller = mod(
        "repro.core.caller",
        "from repro.data.callee import helper\n"
        "\n"
        "def go():\n"
        "    return helper()\n",
    )
    callee = mod(
        "repro.data.callee",
        "def helper():\n    return 1\n",
    )
    graph = build(caller, callee)
    edges = graph.callees(("repro.core.caller", "go"))
    assert [e.callee for e in edges] == [("repro.data.callee", "helper")]


def test_module_level_calls_owned_by_module_pseudo_function():
    graph = build(mod(
        "repro.core.toplevel",
        "def init():\n    pass\n\ninit()\n",
    ))
    edges = graph.callees(("repro.core.toplevel", MODULE_BODY))
    assert [e.callee for e in edges] == [("repro.core.toplevel", "init")]


def test_self_method_dispatch_resolves_within_class():
    graph = build(mod(
        "repro.core.selfy",
        "class Engine:\n"
        "    def run(self):\n"
        "        return self.step()\n"
        "    def step(self):\n"
        "        return 1\n",
    ))
    edges = graph.callees(("repro.core.selfy", "Engine.run"))
    assert [e.callee for e in edges] == [("repro.core.selfy", "Engine.step")]


def test_conditional_alias_resolves_both_branches():
    graph = build(mod(
        "repro.core.condy",
        "def a():\n    pass\n"
        "def b():\n    pass\n"
        "def pick(flag):\n"
        "    worker = a if flag else b\n"
        "    return worker()\n",
    ))
    targets = {
        e.callee for e in graph.callees(("repro.core.condy", "pick"))
    }
    assert targets == {
        ("repro.core.condy", "a"), ("repro.core.condy", "b"),
    }


def test_bare_name_resolves_to_nested_def_in_caller():
    graph = build(mod(
        "repro.core.nestcall",
        "def outer():\n"
        "    def inner():\n"
        "        pass\n"
        "    return inner()\n",
    ))
    edges = graph.callees(("repro.core.nestcall", "outer"))
    assert [e.callee for e in edges] == [
        ("repro.core.nestcall", "outer.<locals>.inner"),
    ]


def test_runner_string_resolves_to_module_level_function():
    sweep = mod(
        "repro.experiments.sweep",
        'CELLS = ["repro.experiments.cells:cell"]\n',
    )
    cells = mod(
        "repro.experiments.cells",
        "def cell(config, seed):\n    return config\n",
    )
    graph = build(sweep, cells)
    assert len(graph.runner_refs) == 1
    ref = graph.runner_refs[0]
    assert ref.target == ("repro.experiments.cells", "cell")
    kinds = [
        e.kind
        for e in graph.callees(("repro.experiments.sweep", MODULE_BODY))
    ]
    assert kinds == ["runner"]


def test_runner_string_resolves_to_nested_function_by_fallback():
    sweep = mod(
        "repro.experiments.sweep",
        'CELLS = ["repro.experiments.cells:cell"]\n',
    )
    cells = mod(
        "repro.experiments.cells",
        "def make():\n"
        "    def cell(config, seed):\n"
        "        return config\n"
        "    return cell\n",
    )
    graph = build(sweep, cells)
    ref = graph.runner_refs[0]
    assert ref.target == (
        "repro.experiments.cells", "make.<locals>.cell",
    )


def test_submit_sites_classify_lambda_and_resolved_targets():
    graph = build(mod(
        "repro.skyline.sharded",
        "def work(shard):\n    return shard\n"
        "def run(pool, shards):\n"
        "    a = pool.submit(work, shards[0])\n"
        "    b = pool.submit(lambda: 1)\n"
        "    return a, b\n",
    ))
    sites = graph.submit_sites
    assert len(sites) == 2
    resolved = [s for s in sites if s.targets]
    unresolved = [s for s in sites if s.unresolved]
    assert resolved[0].targets == [("repro.skyline.sharded", "work")]
    assert "lambda" in unresolved[0].unresolved


# -- sink summaries and reachability -----------------------------------------


def test_sinks_recorded_per_function():
    graph = build(mod(
        "util.sinks",
        "import os\nimport random\nimport time\n"
        "def clocky():\n    return time.time()\n"
        "def rngy():\n    return random.random()\n"
        "def envy():\n    return os.getenv('HOME')\n"
        "def writey(path):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write('x')\n",
    ))

    def kinds(func):
        return {s.kind for s in graph.sinks_of(("util.sinks", func))}

    assert kinds("clocky") == {"wall_clock"}
    assert kinds("rngy") == {"unseeded_rng"}
    assert kinds("envy") == {"env_read"}
    assert kinds("writey") == {"truncating_write"}


def test_walk_paths_reaches_transitively_and_skips_modules():
    a = mod(
        "repro.core.a",
        "from repro.data.b import middle\n"
        "def entry():\n    return middle()\n",
    )
    b = mod(
        "repro.data.b",
        "from repro.data.c import leaf\n"
        "def middle():\n    return leaf()\n",
    )
    c = mod("repro.data.c", "def leaf():\n    return 1\n")
    graph = build(a, b, c)
    start = ("repro.core.a", "entry")
    assert graph.reachable(start) == {
        ("repro.data.b", "middle"), ("repro.data.c", "leaf"),
    }
    pruned = graph.reachable(
        start, skip_module=lambda name: name == "repro.data.c"
    )
    assert pruned == {("repro.data.b", "middle")}


# -- RA013: RNG/clock taint ---------------------------------------------------

TAINT_HELPER_BAD = (
    "import time\n"
    "def stamp(x):\n"
    "    return (x, time.time())\n"
)


def test_ra013_fires_on_taint_through_helper_call():
    core = mod(
        "repro.core.taints",
        "from repro.data.helpers import stamp\n"
        "def round_step(x):\n"
        "    return stamp(x)\n",
    )
    helper = mod("repro.data.helpers", TAINT_HELPER_BAD)
    findings = run(core, helper, select=["RA013"])
    assert codes(findings) == ["RA013"]
    # reported at the crossing call site, not at the sink
    assert findings[0].path == "repro/core/taints.py"
    assert findings[0].line == 3
    assert "time.time" in findings[0].message


def test_ra013_fires_on_deep_transitive_chain():
    core = mod(
        "repro.core.deep",
        "from repro.data.mid import middle\n"
        "def round_step(x):\n"
        "    return middle(x)\n",
    )
    middle = mod(
        "repro.data.mid",
        "from repro.data.helpers import stamp\n"
        "def middle(x):\n    return stamp(x)\n",
    )
    helper = mod("repro.data.helpers", TAINT_HELPER_BAD)
    findings = run(core, middle, helper, select=["RA013"])
    assert codes(findings) == ["RA013"]
    assert "repro.data.mid.middle -> " in findings[0].message


def test_ra013_quiet_on_pure_helper_and_obs_exempt_sink():
    core = mod(
        "repro.core.cleans",
        "from repro.data.pure import double\n"
        "from repro.obs.perf import utc_stamp\n"
        "def round_step(x):\n"
        "    return double(x) + utc_stamp()\n",
    )
    pure = mod("repro.data.pure", "def double(x):\n    return 2 * x\n")
    obs = mod(
        "repro.obs.perf",
        "import time\ndef utc_stamp():\n    return time.time()\n",
    )
    assert run(core, pure, obs, select=["RA013"]) == []


def test_ra013_quiet_outside_deterministic_scope():
    loose = mod(
        "util.loose",
        "from repro.data.helpers import stamp\n"
        "def go(x):\n    return stamp(x)\n",
    )
    helper = mod("repro.data.helpers", TAINT_HELPER_BAD)
    assert run(loose, helper, select=["RA013"]) == []


# -- RA014: pool pickle-safety ------------------------------------------------


def test_ra014_flags_lambda_and_nested_submissions():
    bad = mod(
        "repro.skyline.sharded",
        "def run(pool, shards):\n"
        "    def work(shard):\n"
        "        return shard\n"
        "    a = pool.submit(work, shards[0])\n"
        "    b = pool.submit(lambda: 1)\n"
        "    return a, b\n",
    )
    findings = run(bad, select=["RA014"])
    assert codes(findings) == ["RA014"]
    messages = " | ".join(f.message for f in findings)
    assert "nested function" in messages
    assert "lambda" in messages


def test_ra014_flags_method_submission():
    bad = mod(
        "repro.skyline.sharded",
        "class Mapper:\n"
        "    def map(self, shard):\n"
        "        return shard\n"
        "def run(pool, shards):\n"
        "    mapper = Mapper()\n"
        "    return pool.submit(Mapper.map, shards[0])\n",
    )
    findings = run(bad, select=["RA014"])
    assert len(findings) == 1
    assert "method" in findings[0].message


def test_ra014_flags_transitive_env_read_in_worker():
    sharded = mod(
        "repro.skyline.sharded",
        "from repro.data.workers import work\n"
        "def run(pool, shards):\n"
        "    return pool.submit(work, shards[0])\n",
    )
    workers = mod(
        "repro.data.workers",
        "import os\n"
        "def work(shard):\n"
        "    return (shard, os.getenv('SHARD_TMP'))\n",
    )
    findings = run(sharded, workers, select=["RA014"])
    assert len(findings) == 1
    assert "os.getenv" in findings[0].message


def test_ra014_flags_nested_function_runner_string():
    # the acceptance fixture: a runner string resolving to a nested def
    sweep = mod(
        "repro.experiments.sweep",
        'CELLS = ["repro.experiments.cells:cell"]\n',
    )
    cells = mod(
        "repro.experiments.cells",
        "def make():\n"
        "    def cell(config, seed):\n"
        "        return config\n"
        "    return cell\n",
    )
    findings = run(sweep, cells, select=["RA014"])
    assert len(findings) == 1
    assert "unpicklable" in findings[0].message
    assert "make.<locals>.cell" in findings[0].message


def test_ra014_quiet_on_module_level_env_free_worker():
    good = mod(
        "repro.skyline.sharded",
        "def work(shard):\n    return sorted(shard)\n"
        "def run(pool, shards):\n"
        "    return [pool.submit(work, s) for s in shards]\n",
    )
    assert run(good, select=["RA014"]) == []


def test_ra014_quiet_outside_pool_modules():
    loose = mod(
        "repro.core.local",
        "def run(pool):\n    return pool.submit(lambda: 1)\n",
    )
    assert run(loose, select=["RA014"]) == []


# -- RA015: transitive persistence --------------------------------------------


def test_ra015_fires_on_laundered_truncating_write():
    journal = mod(
        "repro.crowd.journal",
        "from util.files import rewrite\n"
        "def flush(path, data):\n"
        "    rewrite(path, data)\n",
    )
    files = mod(
        "util.files",
        "def rewrite(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n",
    )
    findings = run(journal, files, select=["RA015"])
    assert codes(findings) == ["RA015"]
    assert findings[0].path == "repro/crowd/journal.py"
    assert "util.files.rewrite" in findings[0].message


def test_ra015_quiet_when_write_routes_through_repro_io():
    journal = mod(
        "repro.crowd.journal",
        "from repro.io.atomic import atomic_write_text\n"
        "def flush(path, data):\n"
        "    atomic_write_text(path, data)\n",
    )
    atomic = mod(
        "repro.io.atomic",
        "def atomic_write_text(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n",
    )
    assert run(journal, atomic, select=["RA015"]) == []


def test_ra015_quiet_outside_persistence_modules():
    core = mod(
        "repro.core.engine2",
        "from util.files import rewrite\n"
        "def flush(path, data):\n    rewrite(path, data)\n",
    )
    files = mod(
        "util.files",
        "def rewrite(path, data):\n"
        "    with open(path, 'w') as fh:\n"
        "        fh.write(data)\n",
    )
    assert run(core, files, select=["RA015"]) == []


# -- RA016: span/transaction balance ------------------------------------------


def test_ra016_flags_bare_span_and_allows_with_managed():
    bad = mod(
        "repro.crowd.spans",
        "def go(tracer):\n    tracer.span('crowd.round')\n",
    )
    good = mod(
        "repro.crowd.spans2",
        "def go(tracer):\n"
        "    with tracer.span('crowd.round'):\n"
        "        pass\n"
        "def make(tracer):\n"
        "    return tracer.span('crowd.round')\n",
    )
    assert codes(run(bad, select=["RA016"])) == ["RA016"]
    assert run(good, select=["RA016"]) == []


def test_ra016_flags_enter_without_exit():
    bad = mod(
        "repro.crowd.manual",
        "def go(cm):\n    cm.__enter__()\n    return cm\n",
    )
    good = mod(
        "repro.crowd.manual2",
        "def go(cm):\n"
        "    cm.__enter__()\n"
        "    try:\n"
        "        return 1\n"
        "    finally:\n"
        "        cm.__exit__(None, None, None)\n",
    )
    findings = run(bad, select=["RA016"])
    assert len(findings) == 1
    assert "__exit__" in findings[0].message
    assert run(good, select=["RA016"]) == []


def test_ra016_flags_uncommitted_posting_group():
    bad = mod(
        "repro.crowd.post1",
        "def flush(self, edges):\n"
        "    self._write('post', edges)\n",
    )
    findings = run(bad, select=["RA016"])
    assert len(findings) == 1
    assert "commit" in findings[0].message


def test_ra016_flags_return_between_post_and_commit():
    bad = mod(
        "repro.crowd.post2",
        "def flush(self, edges, dry):\n"
        "    self._write('post', edges)\n"
        "    if dry:\n"
        "        return None\n"
        "    self._write('commit', edges)\n"
        "    return edges\n",
    )
    good = mod(
        "repro.crowd.post3",
        "def flush(self, edges):\n"
        "    self._write('post', edges)\n"
        "    self._write('commit', edges)\n"
        "    return edges\n",
    )
    findings = run(bad, select=["RA016"])
    assert len(findings) == 1
    assert "uncommitted" in findings[0].message
    assert run(good, select=["RA016"]) == []


def test_ra016_flags_add_answer_loop_in_core_only():
    source = (
        "def ingest(prefs, batch):\n"
        "    for left, right, attribute, answer in batch:\n"
        "        prefs.add_answer(left, right, attribute, answer)\n"
    )
    bad = mod("repro.core.ingest", source)
    owner = mod("repro.core.preference", source)
    crowd = mod("repro.crowd.ingest", source)
    batched = mod(
        "repro.core.batched",
        "def ingest(prefs, batch):\n"
        "    prefs.apply_verdicts(batch)\n",
    )
    assert codes(run(bad, select=["RA016"])) == ["RA016"]
    assert run(owner, select=["RA016"]) == []
    assert run(crowd, select=["RA016"]) == []
    assert run(batched, select=["RA016"]) == []


def test_ra016_skips_obs_and_analysis_modules():
    obs = mod(
        "repro.obs.tracer2",
        "def go(tracer):\n    tracer.span('crowd.round')\n",
    )
    assert run(obs, select=["RA016"]) == []


# -- suppression and reporting ------------------------------------------------


def test_interprocedural_findings_are_noqa_suppressible():
    bad = mod(
        "repro.crowd.spans3",
        "def go(tracer):\n"
        "    tracer.span('x')  # repro: noqa RA016 - fixture\n",
    )
    assert run(bad, select=["RA016"]) == []


def test_interprocedural_findings_carry_position_and_family():
    core = mod(
        "repro.core.taintpos",
        "from repro.data.helpers import stamp\n"
        "def round_step(x):\n"
        "    return stamp(x)\n",
    )
    helper = mod("repro.data.helpers", TAINT_HELPER_BAD)
    finding = run(core, helper, select=["RA013"])[0]
    assert finding.family == "interprocedural"
    assert finding.line == 3 and finding.col > 0
    assert finding.render().startswith("repro/core/taintpos.py:3:")


# -- crash safety -------------------------------------------------------------


@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    source=python_modules(),
    other=python_modules(),
    name=module_names(),
    other_name=module_names(),
)
def test_callgraph_never_crashes_on_valid_modules(
    source, other, name, other_name
):
    modules = [mod(name, source)]
    if other_name != name:
        modules.append(mod(other_name, other))
    graph = CallGraph.build(modules, AnalysisConfig())
    for key in graph.functions:
        for _ in graph.walk_paths(key):
            pass
    run(*modules, select=["RA013", "RA014", "RA015", "RA016"])

"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.relation import (
    Attribute,
    AttributeKind,
    Direction,
    Relation,
    Schema,
    Tuple,
)
from repro.data.synthetic import Distribution, generate_synthetic
from repro.data.toy import figure1_dataset, figure3_dataset


@pytest.fixture
def toy():
    """The paper's Figure 1 toy dataset (fresh copy per test)."""
    return figure1_dataset()


@pytest.fixture
def toy_fig3():
    """The paper's Figure 3 anti-correlated toy dataset."""
    return figure3_dataset()


@pytest.fixture
def small_independent():
    """A small deterministic IND dataset (n=80, |AK|=3, |AC|=1)."""
    return generate_synthetic(
        80, 3, 1, Distribution.INDEPENDENT, seed=42
    )


@pytest.fixture
def small_anti():
    """A small deterministic ANT dataset (n=60, |AK|=2, |AC|=1)."""
    return generate_synthetic(
        60, 2, 1, Distribution.ANTI_CORRELATED, seed=7
    )


@pytest.fixture
def multi_crowd():
    """A dataset with two crowd attributes (n=50, |AK|=2, |AC|=2)."""
    return generate_synthetic(
        50, 2, 2, Distribution.INDEPENDENT, seed=11
    )


def make_relation(known_rows, latent_rows=None, directions=None):
    """Helper to build small relations inline in tests.

    ``known_rows`` is a list of known-value tuples; ``latent_rows`` the
    matching latent tuples (one crowd attribute per element).
    """
    known_rows = [tuple(row) for row in known_rows]
    num_known = len(known_rows[0])
    num_crowd = len(latent_rows[0]) if latent_rows else 0
    directions = directions or [Direction.MIN] * (num_known + num_crowd)
    attrs = [
        Attribute(f"A{i + 1}", AttributeKind.KNOWN, directions[i])
        for i in range(num_known)
    ]
    attrs += [
        Attribute(
            f"C{j + 1}",
            AttributeKind.CROWD,
            directions[num_known + j],
        )
        for j in range(num_crowd)
    ]
    rows = []
    for i, known in enumerate(known_rows):
        latent = tuple(latent_rows[i]) if latent_rows else ()
        rows.append(Tuple(known=known, latent=latent))
    return Relation(Schema(attrs), rows)


@pytest.fixture
def rng():
    """A deterministic random generator."""
    return np.random.default_rng(2024)


# -- determinism sanitizer plugin (--repro-sanitize) -------------------------
#
# Opt-in runtime counterpart of the static determinism rules: each
# test's call phase runs under repro.analysis.sanitize, and any
# wall-clock read, global-RNG use or os.urandom call attributed to
# project or test code fails that test with the recorded stacks.
# Frames inside the obs layer (which owns timestamps by design), the
# sanitizer itself, and the test machinery (pytest/pluggy/hypothesis
# steer the global RNG for their own bookkeeping) are exempt.

SANITIZE_ALLOW = (
    "repro/obs/",
    "_pytest/",
    "pluggy/",
    "hypothesis/",
    "importlib/",
    # stdlib logging stamps every LogRecord with time.time(); log
    # timestamps are presentation metadata, never result data
    "logging/",
)


def pytest_addoption(parser):
    parser.addoption(
        "--repro-sanitize",
        action="store_true",
        default=False,
        help=(
            "run every test under the runtime determinism sanitizer "
            "and fail on wall-clock/global-RNG/os.urandom use"
        ),
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not item.config.getoption("--repro-sanitize"):
        yield
        return
    from repro.analysis.sanitize import DeterminismSanitizer

    with DeterminismSanitizer(allow_modules=SANITIZE_ALLOW) as sanitizer:
        yield
    if sanitizer.violations:
        details = "\n\n".join(
            violation.render_stack()
            for violation in sanitizer.violations
        )
        pytest.fail(
            f"determinism sanitizer caught "
            f"{len(sanitizer.violations)} violation(s):\n{details}",
            pytrace=False,
        )

"""Tests for the preference graph ``T`` and the preference system.

Every test in this module runs once per closure backend (see the
autouse ``pref_backend`` fixture): the behavioural contract is
backend-independent, so the whole suite doubles as a second
differential check on top of ``test_preference_differential.py``.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.preference import (
    BACKEND_ENV_VAR,
    BitsetPreferenceGraph,
    ContradictionPolicy,
    GRAPH_BACKENDS,
    PreferenceGraph,
    PreferenceSystem,
    ReferencePreferenceGraph,
)
from repro.crowd.questions import Preference
from repro.exceptions import PreferenceConflictError

L, R, E = Preference.LEFT, Preference.RIGHT, Preference.EQUAL

pytestmark = pytest.mark.pref


@pytest.fixture(autouse=True, params=sorted(GRAPH_BACKENDS))
def pref_backend(request, monkeypatch):
    """Run every test in this module under each closure backend."""
    monkeypatch.setenv(BACKEND_ENV_VAR, request.param)
    return request.param


class TestPreferenceGraph:
    def test_unknown_initially(self):
        graph = PreferenceGraph(4)
        assert graph.relation(0, 1) is None
        assert not graph.knows(0, 1)

    def test_direct_answer(self):
        graph = PreferenceGraph(4)
        assert graph.add_answer(0, 1, L)
        assert graph.relation(0, 1) is L
        assert graph.relation(1, 0) is R

    def test_right_answer_reverses_edge(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 1, R)
        assert graph.relation(1, 0) is L

    def test_transitivity(self):
        graph = PreferenceGraph(5)
        graph.add_answer(0, 1, L)
        graph.add_answer(1, 2, L)
        assert graph.relation(0, 2) is L
        assert graph.relation(2, 0) is R

    def test_long_chain_transitivity(self):
        graph = PreferenceGraph(50)
        for i in range(49):
            graph.add_answer(i, i + 1, L)
        assert graph.relation(0, 49) is L

    def test_self_relation_is_equal(self):
        graph = PreferenceGraph(3)
        assert graph.relation(1, 1) is E

    def test_ties_merge_classes(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 1, E)
        assert graph.relation(0, 1) is E
        assert graph.class_of(0) == graph.class_of(1)

    def test_ties_inherit_strict_edges(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 2, L)
        graph.add_answer(0, 1, E)
        assert graph.relation(1, 2) is L  # 1 ~ 0 ≺ 2

    def test_tie_merge_preserves_incoming_edges(self):
        graph = PreferenceGraph(4)
        graph.add_answer(2, 0, L)
        graph.add_answer(0, 1, E)
        assert graph.relation(2, 1) is L

    def test_contradiction_rejected_keep_first(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 1, L)
        graph.add_answer(1, 2, L)
        assert not graph.add_answer(2, 0, L)  # would create a cycle
        assert graph.rejected_answers == 1
        assert graph.relation(0, 2) is L  # original knowledge intact

    def test_contradiction_raises_with_raise_policy(self):
        graph = PreferenceGraph(4, policy=ContradictionPolicy.RAISE)
        graph.add_answer(0, 1, L)
        with pytest.raises(PreferenceConflictError):
            graph.add_answer(0, 1, R)

    def test_consistent_repeat_accepted(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 1, L)
        assert graph.add_answer(0, 1, L)
        assert graph.rejected_answers == 0

    def test_tie_contradicting_strict_rejected(self):
        graph = PreferenceGraph(4)
        graph.add_answer(0, 1, L)
        assert not graph.add_answer(0, 1, E)

    def test_edges_exposed(self):
        graph = PreferenceGraph(4)
        graph.add_answer(2, 3, L)
        assert (2, 3) in graph.edges()

    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        st.lists(
            st.tuples(
                st.integers(0, 9), st.integers(0, 9),
                st.sampled_from([L, R, E]),
            ),
            max_size=30,
        )
    )
    def test_never_becomes_cyclic(self, answers):
        """Whatever answers arrive, derived relations stay antisymmetric."""
        graph = PreferenceGraph(10)
        for u, v, answer in answers:
            if u != v:
                graph.add_answer(u, v, answer)
        for u in range(10):
            for v in range(u + 1, 10):
                rel_uv = graph.relation(u, v)
                rel_vu = graph.relation(v, u)
                if rel_uv is None:
                    assert rel_vu is None
                else:
                    assert rel_vu is rel_uv.flipped()


class TestConsistencyWithTotalOrder:
    @settings(
        max_examples=50,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.permutations(list(range(8))), st.data())
    def test_answers_from_total_order_reproduce_it(self, order, data):
        """Feeding answers consistent with a total order never conflicts,
        and derived relations agree with that order."""
        rank = {t: i for i, t in enumerate(order)}
        graph = PreferenceGraph(8)
        pairs = data.draw(
            st.lists(
                st.tuples(st.integers(0, 7), st.integers(0, 7)), max_size=20
            )
        )
        for u, v in pairs:
            if u == v:
                continue
            answer = L if rank[u] < rank[v] else R
            assert graph.add_answer(u, v, answer)
        for u in range(8):
            for v in range(8):
                relation = graph.relation(u, v)
                if u != v and relation is not None:
                    expected = L if rank[u] < rank[v] else R
                    assert relation is expected


class TestPreferenceSystem:
    def test_requires_crowd_attribute(self):
        with pytest.raises(ValueError):
            PreferenceSystem(5, 0)

    def test_unknown_attributes(self):
        system = PreferenceSystem(5, 2)
        system.add_answer(0, 1, 0, L)
        assert system.unknown_attributes(0, 1) == [1]
        assert not system.fully_known(0, 1)
        system.add_answer(0, 1, 1, L)
        assert system.fully_known(0, 1)

    def test_weak_and_strict_dominance_single_attribute(self):
        system = PreferenceSystem(5, 1)
        system.add_answer(0, 1, 0, L)
        assert system.weakly_prefers_all(0, 1)
        assert system.ac_dominates(0, 1)
        assert not system.ac_dominates(1, 0)

    def test_tie_weakly_but_not_strictly_dominates(self):
        system = PreferenceSystem(5, 1)
        system.add_answer(0, 1, 0, E)
        assert system.weakly_prefers_all(0, 1)
        assert not system.ac_dominates(0, 1)
        assert system.ac_equal(0, 1)

    def test_multi_attribute_dominance_needs_all(self):
        system = PreferenceSystem(5, 2)
        system.add_answer(0, 1, 0, L)
        assert not system.ac_dominates(0, 1)  # second attribute unknown
        system.add_answer(0, 1, 1, E)
        assert system.ac_dominates(0, 1)  # weak everywhere, strict on C1

    def test_multi_attribute_incomparable(self):
        system = PreferenceSystem(5, 2)
        system.add_answer(0, 1, 0, L)
        system.add_answer(0, 1, 1, R)
        assert system.fully_known(0, 1)
        assert not system.ac_dominates(0, 1)
        assert not system.ac_dominates(1, 0)

    def test_sky_ac_removes_dominated(self):
        system = PreferenceSystem(5, 1)
        system.add_answer(0, 1, 0, L)  # 0 ≺ 1
        system.add_answer(1, 2, 0, L)  # 1 ≺ 2 (so 0 ≺ 2)
        assert system.sky_ac([0, 1, 2, 3]) == [0, 3]

    def test_sky_ac_dedupes_full_ties(self):
        system = PreferenceSystem(5, 1)
        system.add_answer(1, 3, 0, E)
        assert system.sky_ac([1, 3]) == [1]

    def test_sky_ac_keeps_unknown_members(self):
        system = PreferenceSystem(5, 1)
        assert system.sky_ac([2, 0, 4]) == [2, 0, 4]

    def test_total_rejected_sums_attributes(self):
        system = PreferenceSystem(5, 2)
        system.add_answer(0, 1, 0, L)
        system.add_answer(0, 1, 0, R)
        assert system.total_rejected() == 1

    def test_pair_relations_memo_and_invalidation(self):
        system = PreferenceSystem(5, 2)
        system.add_answer(0, 1, 0, L)
        assert system.pair_relations(0, 1) == (L, None)
        misses = system.cache_misses
        assert system.pair_relations(1, 0) == (R, None)  # flipped: cached
        assert system.cache_misses == misses
        system.add_answer(0, 1, 1, E)  # accepted answer invalidates
        assert system.pair_relations(0, 1) == (L, E)

    def test_resolve_pairs_batches_and_dedupes(self):
        system = PreferenceSystem(5, 1)
        system.add_answer(0, 1, 0, L)
        resolved = system.resolve_pairs([(0, 1), (1, 0), (0, 1), (2, 3)])
        assert resolved[(0, 1)] == (L,)
        assert resolved[(1, 0)] == (R,)
        assert resolved[(2, 3)] == (None,)


class TestBackendFactory:
    def test_factory_respects_env_var(self, pref_backend):
        graph = PreferenceGraph(4)
        assert isinstance(graph, GRAPH_BACKENDS[pref_backend])
        assert graph.backend == pref_backend

    def test_explicit_backend_overrides_env(self):
        assert isinstance(
            PreferenceGraph(4, backend="reference"), ReferencePreferenceGraph
        )
        assert isinstance(
            PreferenceGraph(4, backend="bitset"), BitsetPreferenceGraph
        )

    def test_bitset_exposes_closure_masks(self):
        graph = PreferenceGraph(5, backend="bitset")
        graph.add_answer(0, 1, L)
        graph.add_answer(1, 2, L)
        graph.add_answer(2, 3, E)
        assert graph.descendants_bits(0) == 0b1110
        assert graph.ancestors_bits(3) == 0b0011
        assert graph.tie_class_bits(2) == 0b1100

    def test_reference_exposes_descendant_sets(self):
        graph = PreferenceGraph(5, backend="reference")
        graph.add_answer(0, 1, L)
        graph.add_answer(1, 2, L)
        assert graph.descendants(0) == {1, 2}

"""Pin the cost of *disabled* observability (``make test-perf-obs``).

Every instrumented hot path is guarded by ``current_observation()``
plus one ``.enabled`` read. The claim these tests pin: with
observability off, the guards account for **under 2%** of an
end-to-end run. Rather than diffing two noisy wall-clock runs (whose
difference *is* the noise), the 2% bound is checked constructively —
count how many times a real run consults the guard, measure the
per-consultation cost in isolation, and compare their product against
the run's own wall time.
"""

from __future__ import annotations

import time

import pytest

from repro.core.crowdsky import crowdsky
from repro.crowd.platform import SimulatedCrowd
from repro.data.synthetic import generate_synthetic
from repro.obs import current_observation, install, uninstall

pytestmark = pytest.mark.perf

OVERHEAD_BUDGET = 0.02


class _CountingDisabled:
    """Stand-in observation that is permanently off but counts how many
    times the hot paths consult it. Only ``enabled`` may ever be read
    while disabled — anything else would crash the run, which is
    exactly what we want a test to catch."""

    def __init__(self):
        self.hits = 0

    @property
    def enabled(self):
        self.hits += 1
        return False


def _run_once(relation):
    crowd = SimulatedCrowd(relation, seed=0)
    start = time.perf_counter()
    crowdsky(relation, crowd)
    return time.perf_counter() - start


class TestDisabledOverhead:
    def test_guard_cost_stays_under_two_percent(self):
        relation = generate_synthetic(200, 2, 2, seed=7)

        # Wall time of the real run (default observation: disabled).
        wall = min(_run_once(relation) for _ in range(3))

        # Guard consultations of the identical run.
        counting = _CountingDisabled()
        install(counting)
        try:
            _run_once(relation)
            guard_hits = counting.hits
        finally:
            uninstall(counting)
        assert guard_hits > 0  # the instrumentation is actually wired

        # Per-consultation cost of the *real* disabled observation.
        samples = 200_000
        observation = current_observation()
        assert not observation.enabled
        start = time.perf_counter()
        for _ in range(samples):
            if current_observation().enabled:  # pragma: no cover
                raise AssertionError("observation unexpectedly enabled")
        per_guard = (time.perf_counter() - start) / samples

        overhead = guard_hits * per_guard
        assert overhead < OVERHEAD_BUDGET * wall, (
            f"{guard_hits} guards x {per_guard * 1e9:.0f}ns = "
            f"{overhead * 1e3:.2f}ms vs {OVERHEAD_BUDGET:.0%} of "
            f"{wall * 1e3:.1f}ms"
        )

    def test_disabled_run_emits_nothing(self):
        """The new instrumentation sites (engine sub-phases, crowd
        postings, preference resolution) must leave zero residue when
        observability is off."""
        relation = generate_synthetic(120, 2, 2, seed=3)
        crowdsky(relation)
        observation = current_observation()
        assert not observation.enabled
        assert observation.tracer.events == []
        assert observation.metrics is None

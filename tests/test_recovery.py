"""Crash-injection differential suite: resume is byte-identical.

The durability contract (docs/durability.md): for a fixed
``(config, seed)``, killing a journaled run at *every* journaled
write point and resuming must yield a ``CrowdSkylineResult`` equal to
the uninterrupted run's in every field, and a journal whose bytes are
identical to the uninterrupted journal. The suite simulates the kill
by truncating a completed run's journal at each record boundary (plus
torn mid-record cuts) and resuming from the prefix — exactly the disk
state an ill-timed ``kill -9`` leaves behind, since the writer fsyncs
record groups in order.

Also covered: pure replay (zero fresh questions, enforced by
raising), the relation fingerprint guard, header-less journals, and
hand-built crowds that need an explicit equivalent platform.
"""

from __future__ import annotations

import pytest

from repro.core.crowdsky import CrowdSkyConfig, crowdsky, crowdsky_budgeted
from repro.core.parallel import parallel_dset
from repro.core.resume import replay_run, resume_run
from repro.core.result import CrowdSkylineResult
from repro.crowd.hits import HitLedger
from repro.crowd.faults import FaultPlan
from repro.crowd.journal import recover_journal, segment_paths
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.retry import RetryPolicy
from repro.crowd.workers import BernoulliWorker, WorkerPool
from repro.data.synthetic import generate_synthetic
from repro.data.toy import figure1_dataset
from repro.exceptions import JournalError, JournalReplayError

pytestmark = pytest.mark.recovery


def _relation():
    return generate_synthetic(24, 2, 1, seed=5)


def _noisy_crowd(relation, journal):
    """Workers, faults and retries all active: the richest journal."""
    return SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(size=25, accuracy=0.85),
        seed=9,
        journal=journal,
        faults=FaultPlan(
            abandonment_rate=0.05,
            hit_timeout_rate=0.04,
            transient_error_rate=0.04,
            spam_burst_rate=0.03,
            seed=13,
        ),
        retry=RetryPolicy(max_attempts=4),
    )


SCENARIOS = {
    "noisy": (
        _relation,
        _noisy_crowd,
        lambda relation, crowd: crowdsky(relation, crowd),
    ),
    "budgeted": (
        _relation,
        lambda relation, journal: SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(size=25, accuracy=0.85),
            seed=9,
            journal=journal,
            strict=False,
        ),
        lambda relation, crowd: crowdsky_budgeted(relation, 40, crowd),
    ),
    "multiway": (
        _relation,
        lambda relation, journal: SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(size=25, accuracy=0.9),
            seed=3,
            journal=journal,
        ),
        lambda relation, crowd: crowdsky(
            relation, crowd, CrowdSkyConfig(multiway=4)
        ),
    ),
    "parallel_dset": (
        _relation,
        lambda relation, journal: SimulatedCrowd(
            relation,
            pool=WorkerPool.uniform(size=25, accuracy=0.9),
            seed=7,
            journal=journal,
            ledger=HitLedger(seed=8),
        ),
        lambda relation, crowd: parallel_dset(relation, crowd),
    ),
}


def run_scenario(name, journal):
    make_relation, make_crowd, run = SCENARIOS[name]
    relation = make_relation()
    crowd = make_crowd(relation, journal)
    result = run(relation, crowd)
    if crowd.journal is not None:
        crowd.journal.close()
    return relation, result


def journal_bytes(journal):
    return b"".join(p.read_bytes() for p in segment_paths(journal))


def record_boundaries(raw):
    """Byte offsets just after each record write, in order."""
    points, offset = [], 0
    while True:
        newline = raw.find(b"\n", offset)
        if newline < 0:
            return points
        offset = newline + 1
        points.append(offset)


def crash_at(tmp_path, name, raw, cut):
    """The journal directory an ill-timed kill leaves: ``raw[:cut]``."""
    crashed = tmp_path / name
    crashed.mkdir()
    (crashed / "wal-000001.jsonl").write_bytes(raw[:cut])
    return crashed


def assert_same_result(
    resumed: CrowdSkylineResult, baseline: CrowdSkylineResult
) -> None:
    assert resumed.skyline == baseline.skyline
    assert resumed.algorithm == baseline.algorithm
    assert resumed.question_log == baseline.question_log
    assert resumed.stats == baseline.stats
    assert resumed.rejected_answers == baseline.rejected_answers
    assert resumed.degraded == baseline.degraded
    assert resumed.unresolved_pairs == baseline.unresolved_pairs
    assert resumed.budget_exhausted == baseline.budget_exhausted
    assert resumed.complete_tuples == baseline.complete_tuples
    assert resumed.fault_stats == baseline.fault_stats


# -- the differential harness ------------------------------------------------


def test_crash_at_every_write_point_resumes_byte_identical(tmp_path):
    """The tentpole proof, at full resolution for the richest run:
    a kill after *any* journaled write resumes to the identical run."""
    relation, baseline = run_scenario("noisy", tmp_path / "base")
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    assert len(boundaries) > 50
    for index, cut in enumerate(boundaries):
        crashed = crash_at(tmp_path, f"cut{index}", raw, cut)
        resumed = resume_run(crashed, relation)
        assert_same_result(resumed, baseline)
        assert journal_bytes(crashed) == raw, f"cut after record {index}"


@pytest.mark.parametrize(
    "scenario", ["budgeted", "multiway", "parallel_dset"]
)
def test_crash_resume_differential_per_scenario(tmp_path, scenario):
    """Sampled write points for every other scheduler/crowd shape."""
    relation, baseline = run_scenario(scenario, tmp_path / "base")
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    samples = sorted(
        {boundaries[0], boundaries[len(boundaries) // 3],
         boundaries[2 * len(boundaries) // 3], boundaries[-1]}
    )
    for index, cut in enumerate(samples):
        crashed = crash_at(tmp_path, f"cut{index}", raw, cut)
        resumed = resume_run(crashed, relation)
        assert_same_result(resumed, baseline)
        assert journal_bytes(crashed) == raw


def test_torn_mid_record_crashes_resume_byte_identical(tmp_path):
    """A kill *during* a write leaves a torn half-record; healing
    drops it and the resume still converges to the identical run."""
    relation, baseline = run_scenario("noisy", tmp_path / "base")
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    for index, boundary in enumerate(
        [boundaries[0], boundaries[len(boundaries) // 2], boundaries[-2]]
    ):
        crashed = crash_at(tmp_path, f"torn{index}", raw, boundary + 11)
        resumed = resume_run(crashed, relation)
        assert_same_result(resumed, baseline)
        assert journal_bytes(crashed) == raw


# -- pure replay -------------------------------------------------------------


def test_replay_is_free_and_identical(tmp_path):
    relation, baseline = run_scenario("noisy", tmp_path / "base")
    raw = journal_bytes(tmp_path / "base")
    replayed = replay_run(tmp_path / "base", relation)
    assert_same_result(replayed, baseline)
    # No writer is attached in replay mode: not a byte changed.
    assert journal_bytes(tmp_path / "base") == raw


def test_replay_of_a_truncated_journal_refuses_fresh_questions(tmp_path):
    """Replay mode has no live crowd: a journal missing its tail
    forces a fresh question, which must raise instead of spending."""
    relation, _ = run_scenario("noisy", tmp_path / "base")
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    crashed = crash_at(
        tmp_path, "partial", raw, boundaries[len(boundaries) // 2]
    )
    with pytest.raises(JournalReplayError):
        replay_run(crashed, relation)


# -- guards ------------------------------------------------------------------


def test_resume_rejects_a_different_relation(tmp_path):
    _, _ = run_scenario("noisy", tmp_path / "base")
    with pytest.raises(JournalReplayError, match="fingerprint"):
        resume_run(tmp_path / "base", figure1_dataset())


def test_resume_requires_a_header(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(JournalError, match="no header"):
        resume_run(empty, _relation())


def test_handbuilt_crowd_requires_explicit_equivalent(tmp_path):
    """A pool without a construction recipe journals ``spec: null``;
    resume then needs the caller to supply the equivalent platform."""
    relation = _relation()

    def handbuilt(journal):
        return SimulatedCrowd(
            relation,
            pool=WorkerPool([BernoulliWorker(accuracy=0.9)]),
            seed=4,
            journal=journal,
        )

    crowd = handbuilt(tmp_path / "base")
    baseline = crowdsky(relation, crowd)
    crowd.journal.close()
    raw = journal_bytes(tmp_path / "base")
    boundaries = record_boundaries(raw)
    crashed = crash_at(
        tmp_path, "cut", raw, boundaries[len(boundaries) // 2]
    )
    with pytest.raises(JournalError, match="no crowd recipe"):
        resume_run(crashed, relation)
    resumed = resume_run(crashed, relation, crowd=handbuilt(None))
    assert_same_result(resumed, baseline)
    assert journal_bytes(crashed) == raw


def test_recovered_journal_object_is_accepted_directly(tmp_path):
    relation, baseline = run_scenario("noisy", tmp_path / "base")
    recovered = recover_journal(tmp_path / "base")
    assert_same_result(replay_run(recovered, relation), baseline)

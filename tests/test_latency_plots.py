"""Tests for the latency model, ASCII charts and new CLI subcommands."""

import json

import pytest

from repro.core.baseline import baseline_skyline
from repro.core.parallel import parallel_sl
from repro.crowd.latency import (
    DEFAULT_ROUND_OVERHEAD,
    SECONDS_PER_HIT_Q1,
    SECONDS_PER_HIT_Q3,
    LatencyEstimate,
    estimate_latency,
)
from repro.crowd.platform import CrowdStats
from repro.data.rectangles import rectangles_dataset
from repro.experiments.cli import main
from repro.experiments.plots import ascii_chart, chart_for_experiment
from repro.experiments.registry import run_experiment


class TestLatencyModel:
    def test_estimate_scales_with_rounds(self):
        stats = CrowdStats()
        for _ in range(10):
            stats.record_round(3, 15)
        estimate = estimate_latency(stats, seconds_per_hit=22.0)
        assert estimate.rounds == 10
        assert estimate.seconds == 10 * (22.0 + DEFAULT_ROUND_OVERHEAD)

    def test_negative_parameters_rejected(self):
        with pytest.raises(ValueError):
            estimate_latency(CrowdStats(), seconds_per_hit=-1.0)

    def test_hours_property(self):
        estimate = LatencyEstimate(rounds=1, seconds=7200.0)
        assert estimate.hours == 2.0

    def test_string_formats(self):
        assert str(LatencyEstimate(1, 45.0)) == "45s"
        assert "min" in str(LatencyEstimate(1, 600.0))
        assert "h" in str(LatencyEstimate(1, 30000.0))

    def test_parallel_sl_latency_dwarfs_baseline(self):
        """§6.2's practical payoff: hours vs minutes on Q1."""
        slow = baseline_skyline(rectangles_dataset())
        fast = parallel_sl(rectangles_dataset())
        slow_estimate = estimate_latency(slow.stats, SECONDS_PER_HIT_Q1)
        fast_estimate = estimate_latency(fast.stats, SECONDS_PER_HIT_Q1)
        assert fast_estimate.seconds < slow_estimate.seconds / 4

    def test_q3_constant_largest(self):
        assert SECONDS_PER_HIT_Q3 > SECONDS_PER_HIT_Q1


class TestAsciiChart:
    def test_renders_markers_and_legend(self):
        rows = [{"n": 1, "a": 10, "b": 100}, {"n": 2, "a": 20, "b": 50}]
        chart = ascii_chart(rows, "n", ["a", "b"])
        assert "o a" in chart and "x b" in chart
        assert "n: 1 .. 2" in chart

    def test_log_scale_label(self):
        rows = [{"n": 1, "a": 10}, {"n": 2, "a": 10000}]
        chart = ascii_chart(rows, "n", ["a"], log_y=True)
        assert "[log y]" in chart
        assert "10,000" in chart

    def test_empty_data(self):
        assert "no numeric data" in ascii_chart([], "n", ["a"])

    def test_constant_series(self):
        rows = [{"n": 1, "a": 5}, {"n": 2, "a": 5}]
        chart = ascii_chart(rows, "n", ["a"])
        assert "o" in chart

    def test_chart_for_experiment_rounds_uses_log(self):
        result = run_experiment("fig8", scale="smoke")
        chart = chart_for_experiment(result)
        assert "[log y]" in chart
        assert "ParallelSL" in chart

    def test_chart_for_accuracy_linear(self):
        result = run_experiment("fig10", scale="smoke")
        chart = chart_for_experiment(result)
        assert "[log y]" not in chart


class TestCliAdditions:
    def test_plot_subcommand(self, capsys):
        assert main(["plot", "fig8", "--scale", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out and "|" in out

    def test_json_to_stdout(self, capsys):
        assert main(["run", "table1", "--scale", "smoke", "--json", "-"]) == 0
        out = capsys.readouterr().out
        payload = json.loads(out[out.index("["):])
        assert payload[0]["id"] == "table1"
        assert payload[0]["rows"]

    def test_json_to_file(self, tmp_path, capsys):
        target = tmp_path / "out.json"
        assert main(
            ["run", "table2", "--scale", "smoke", "--json", str(target)]
        ) == 0
        payload = json.loads(target.read_text())
        assert payload[0]["id"] == "table2"

"""Coverage for small helpers: results, reports, AST ops, exceptions."""

import math

import pytest

from repro.core.crowdsky import crowdsky
from repro.core.result import CrowdSkylineResult
from repro.crowd.platform import CrowdStats
from repro.data.toy import figure1_dataset
from repro.exceptions import (
    BudgetExhaustedError,
    CrowdPlatformError,
    CrowdSkyError,
    DataError,
    ExperimentError,
    PreferenceConflictError,
    QuerySemanticError,
    QuerySyntaxError,
    SchemaError,
    UnknownAttributeError,
)
from repro.experiments.report import format_rows
from repro.query.ast import Comparison


class TestExceptionHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            SchemaError,
            UnknownAttributeError,
            DataError,
            CrowdPlatformError,
            BudgetExhaustedError,
            PreferenceConflictError,
            QuerySyntaxError,
            QuerySemanticError,
            ExperimentError,
        ],
    )
    def test_all_derive_from_base(self, exc):
        assert issubclass(exc, CrowdSkyError)

    def test_budget_is_platform_error(self):
        assert issubclass(BudgetExhaustedError, CrowdPlatformError)

    def test_unknown_attribute_is_schema_error(self):
        assert issubclass(UnknownAttributeError, SchemaError)


class TestComparison:
    @pytest.mark.parametrize(
        "op, left, right, expected",
        [
            (Comparison.EQ, 1.0, 1.0, True),
            (Comparison.EQ, 1.0, 2.0, False),
            (Comparison.NE, 1.0, 2.0, True),
            (Comparison.LT, 1.0, 2.0, True),
            (Comparison.LT, 2.0, 2.0, False),
            (Comparison.LE, 2.0, 2.0, True),
            (Comparison.GT, 3.0, 2.0, True),
            (Comparison.GE, 2.0, 2.0, True),
            (Comparison.GE, 1.0, 2.0, False),
        ],
    )
    def test_evaluate(self, op, left, right, expected):
        assert op.evaluate(left, right) is expected


class TestResultHelpers:
    def test_asked_pairs_merges_attributes(self, toy):
        result = crowdsky(figure1_dataset())
        pairs = result.asked_pairs()
        assert len(pairs) == 12  # one entry per pair, attributes merged

    def test_summary_contains_key_numbers(self, toy):
        result = crowdsky(figure1_dataset())
        text = result.summary(toy)
        assert "questions=12" in text
        assert "{" in text  # labels included when relation passed

    def test_summary_without_relation(self):
        result = CrowdSkylineResult(skyline={1, 2}, stats=CrowdStats())
        text = result.summary()
        assert "|skyline|=2" in text
        assert "{" not in text


class TestReportFormatting:
    def test_nan_rendered_as_dash(self):
        text = format_rows(["x"], [{"x": float("nan")}])
        assert "-" in text.splitlines()[-1]

    def test_large_floats_comma_grouped(self):
        text = format_rows(["x"], [{"x": 1234567.0}])
        assert "1,234,567" in text

    def test_missing_cells_blank(self):
        text = format_rows(["a", "b"], [{"a": 1}])
        assert text.splitlines()[-1].strip().startswith("1")

    def test_empty_rows(self):
        text = format_rows(["a"], [])
        assert "a" in text


class TestRoundTable:
    def test_round_table_labels(self, toy):
        from repro.core.parallel import parallel_sl

        result = parallel_sl(figure1_dataset())
        rows = result.round_table(toy)
        assert len(rows) == 6
        assert "(a, b)" in rows[0]["questions"]

    def test_round_table_without_relation_uses_indices(self, toy):
        result = crowdsky(figure1_dataset())
        rows = result.round_table()
        assert len(rows) == 12
        assert rows[0]["questions"].startswith("(")


class TestDemoCommand:
    def test_demo_prints_walkthrough(self, capsys):
        from repro.experiments.cli import main

        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "12 questions" in out
        assert "6 rounds" in out
        assert "{b, e, f, h, i, k, l}" in out

"""Corruption-robustness suite for the write-ahead vote journal.

Per the durability contract (docs/durability.md): every corruption
shape — torn tail, interior checksum flip, duplicated posting epoch,
zero-byte interior segment, uncommitted group — recovers to the
longest valid prefix, surfaces a ``journal.recovered`` trace event,
and never raises. Plus writer mechanics: fresh-directory guard,
header-once, segment rotation, and the resumed-writer event dedupe.
"""

from __future__ import annotations

import json

import pytest

from repro.core.crowdsky import crowdsky
from repro.crowd.journal import (
    JournalWriter,
    _crc,
    recover_journal,
    segment_paths,
)
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.workers import WorkerPool
from repro.data.synthetic import generate_synthetic
from repro.exceptions import JournalError, JournalReplayError
from repro.obs import observe, read_trace_jsonl

pytestmark = pytest.mark.recovery


def journaled_run(tmp_path, name="wal", segment_bytes=4 * 1024 * 1024):
    """A complete noisy journaled run; returns (relation, dir, result)."""
    relation = generate_synthetic(24, 2, 1, seed=5)
    journal = tmp_path / name
    crowd = SimulatedCrowd(
        relation,
        pool=WorkerPool.uniform(size=25, accuracy=0.85),
        seed=9,
        journal=JournalWriter(journal, segment_bytes=segment_bytes),
    )
    result = crowdsky(relation, crowd)
    crowd.journal.close()
    return relation, journal, result


def record_lines(journal):
    """All record lines across segments, in journal order."""
    lines = []
    for segment in segment_paths(journal):
        lines.extend(segment.read_bytes().splitlines(keepends=True))
    return lines


# -- clean journals ----------------------------------------------------------


def test_clean_journal_recovers_fully(tmp_path):
    _, journal, result = journaled_run(tmp_path)
    recovered = recover_journal(journal)
    assert not recovered.truncated
    assert recovered.problems == []
    assert recovered.header is not None
    assert recovered.header["algorithm"] == "crowdsky"
    assert recovered.postings
    assert recovered.last_epoch == len(recovered.postings)
    assert recovered.dropped_records == 0


def test_segment_rotation_preserves_the_journal(tmp_path):
    _, journal, _ = journaled_run(tmp_path, segment_bytes=700)
    segments = segment_paths(journal)
    assert len(segments) > 2
    recovered = recover_journal(journal)
    assert not recovered.truncated
    baseline = recover_journal(journaled_run(tmp_path, name="ref")[1])
    assert recovered.postings == baseline.postings


def test_fresh_writer_refuses_nonempty_directory(tmp_path):
    _, journal, _ = journaled_run(tmp_path)
    with pytest.raises(JournalError, match="recover and resume"):
        JournalWriter(journal)


def test_header_is_write_once(tmp_path):
    with JournalWriter(tmp_path / "wal") as writer:
        writer.write_header({"algorithm": "x"})
        with pytest.raises(JournalError, match="already written"):
            writer.write_header({"algorithm": "x"})
        with pytest.raises(JournalError, match="standalone"):
            writer.append_event("post", {})


# -- corruption matrix -------------------------------------------------------


def test_torn_tail_recovers_longest_prefix(tmp_path):
    _, journal, _ = journaled_run(tmp_path)
    whole = recover_journal(journal)
    segment = segment_paths(journal)[-1]
    segment.write_bytes(segment.read_bytes()[:-7])
    recovered = recover_journal(journal, heal=True)
    assert recovered.truncated
    assert any("torn" in p or "uncommitted" in p for p in recovered.problems)
    assert len(recovered.postings) < len(whole.postings)
    assert recovered.postings == whole.postings[: len(recovered.postings)]
    # Healing makes the prefix physical: a re-scan is clean again.
    healed = recover_journal(journal)
    assert not healed.truncated
    assert healed.postings == recovered.postings


def test_interior_checksum_flip_stops_the_scan(tmp_path):
    _, journal, _ = journaled_run(tmp_path)
    whole = recover_journal(journal)
    segment = segment_paths(journal)[0]
    lines = segment.read_bytes().splitlines(keepends=True)
    victim = len(lines) // 2
    corrupt = lines[victim].replace(b'"crc":', b'"crx":', 1)
    segment.write_bytes(b"".join(lines[:victim] + [corrupt] + lines[victim + 1:]))
    recovered = recover_journal(journal, heal=False)
    assert recovered.truncated
    assert any("checksum" in p or "malformed" in p for p in recovered.problems)
    assert len(recovered.postings) < len(whole.postings)
    assert recovered.postings == whole.postings[: len(recovered.postings)]


def test_duplicated_posting_epoch_is_rejected(tmp_path):
    _, journal, _ = journaled_run(tmp_path)
    segment = segment_paths(journal)[0]
    lines = segment.read_bytes().splitlines(keepends=True)
    records = [json.loads(line) for line in lines]
    posts = [i for i, r in enumerate(records) if r["type"] == "post"]
    assert len(posts) >= 2
    # Rewind the second posting's epoch with a *valid* checksum, so
    # only the monotonic-epoch rule can catch it.
    clone = records[posts[1]]
    clone["epoch"] = records[posts[0]]["epoch"]
    clone["crc"] = _crc(
        clone["seq"], clone["epoch"], clone["type"], clone["data"]
    )
    lines[posts[1]] = (
        json.dumps(clone, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode()
    segment.write_bytes(b"".join(lines))
    recovered = recover_journal(journal, heal=False)
    assert recovered.truncated
    assert any("epoch" in p for p in recovered.problems)
    assert len(recovered.postings) == 1


def test_zero_byte_interior_segment_ends_the_prefix(tmp_path):
    _, journal, _ = journaled_run(tmp_path, segment_bytes=700)
    segments = segment_paths(journal)
    assert len(segments) >= 3
    before = recover_journal(journal)
    segments[1].write_bytes(b"")
    recovered = recover_journal(journal, heal=True)
    assert recovered.truncated
    assert any("empty segment" in p for p in recovered.problems)
    assert 0 < len(recovered.postings) < len(before.postings)
    # Heal removed the empty segment and everything after it.
    healed = recover_journal(journal)
    assert not healed.truncated
    assert healed.postings == recovered.postings


def test_empty_journal_directory_is_not_an_error(tmp_path):
    empty = tmp_path / "nothing"
    empty.mkdir()
    recovered = recover_journal(empty)
    assert not recovered.truncated
    assert recovered.header is None
    assert recovered.postings == []


def test_recovery_emits_journal_recovered_event(tmp_path):
    _, journal, _ = journaled_run(tmp_path)
    segment = segment_paths(journal)[-1]
    segment.write_bytes(segment.read_bytes()[:-5])
    trace = tmp_path / "trace.jsonl"
    with observe(trace_path=str(trace)):
        recover_journal(journal)
    events = [
        e for e in read_trace_jsonl(str(trace))
        if e.get("name") == "journal.recovered"
    ]
    assert len(events) == 1
    attrs = events[0]["attrs"]
    assert attrs["epochs"] >= 1
    assert attrs["dropped"] >= 1
    assert attrs["records"] >= 1
    assert "reason" in attrs


# -- resumed-writer mechanics ------------------------------------------------


def test_resumed_writer_dedupes_replayed_events(tmp_path):
    journal = tmp_path / "wal"
    with JournalWriter(journal) as writer:
        writer.write_header({"algorithm": "x"})
        assert writer.append_event("note", {"k": 1}) == 1

    resumed = JournalWriter.resume(recover_journal(journal))
    # The re-execution re-emits the already-durable event: no write.
    assert resumed.append_event("note", {"k": 1}) == 0
    # Past the recovered prefix, events are fresh again.
    assert resumed.append_event("note", {"k": 2}) == 1
    resumed.close()
    recovered = recover_journal(journal)
    assert [e["data"] for e in recovered.events] == [{"k": 1}, {"k": 2}]


def test_resumed_writer_rejects_diverging_events(tmp_path):
    journal = tmp_path / "wal"
    with JournalWriter(journal) as writer:
        writer.write_header({"algorithm": "x"})
        writer.append_event("note", {"k": 1})
    resumed = JournalWriter.resume(recover_journal(journal))
    with pytest.raises(JournalReplayError, match="diverged"):
        resumed.append_event("note", {"k": 999})
    resumed.close()

"""Differential suite: the three preference backends, pinned pairwise.

The bitset backend (:class:`repro.core.preference.BitsetPreferenceGraph`)
and the numpy backend (:class:`repro.core.preference.NumpyPreferenceGraph`)
are optimizations of the reference implementation, not reinterpretations
— every observable they expose must match the reference bit for bit.
These properties replay random answer histories (edges, ties,
contradictions under both :class:`ContradictionPolicy` values) into all
three backends and compare the complete derivable state, pin the
round-shaped closure transactions (:meth:`PreferenceSystem.
apply_verdicts`) and the numpy bulk kernels against the scalar queries,
then pin full CrowdSky runs — all four schedulers — to identical
question order, round tables, skylines and journal bytes under any
backend.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CrowdSkyConfig, crowdsky, parallel_dset, parallel_sl
from repro.core.crowdsky import crowdsky_budgeted
from repro.core.preference import (
    BACKEND_NAMES,
    BitsetPreferenceGraph,
    ContradictionPolicy,
    NumpyPreferenceGraph,
    PreferenceGraph,
    PreferenceSystem,
    ReferencePreferenceGraph,
    default_backend,
)
from repro.crowd.journal import segment_paths
from repro.crowd.platform import SimulatedCrowd
from repro.crowd.questions import Preference
from repro.crowd.workers import WorkerPool
from repro.data.synthetic import Distribution, generate_synthetic
from repro.exceptions import CrowdSkyError, PreferenceConflictError
from tests.strategies import (
    DIFFERENTIAL_SETTINGS,
    ROBUSTNESS_SETTINGS,
    answer_sequences,
    consistent_answer_sequences,
    pair_query_batches,
    small_relations,
    verdict_rounds,
)

pytestmark = pytest.mark.pref

BACKENDS = BACKEND_NAMES  # ("numpy", "bitset", "reference")

#: The four schedulers of the end-to-end pin — name → runner.
SCHEDULERS = {
    "crowdsky": lambda relation, crowd, config: crowdsky(
        relation, crowd, config=config
    ),
    "crowdsky_budgeted": lambda relation, crowd, config: crowdsky_budgeted(
        relation, 40, crowd, config=config
    ),
    "parallel_dset": lambda relation, crowd, config: parallel_dset(
        relation, crowd, config=config
    ),
    "parallel_sl": lambda relation, crowd, config: parallel_sl(
        relation, crowd, config=config
    ),
}


def graph_state(graph, n):
    """Every observable of a preference graph, as comparable data."""
    return {
        "relations": [
            [graph.relation(u, v) for v in range(n)] for u in range(n)
        ],
        "classes": [graph.class_of(u) for u in range(n)],
        "edges": sorted(graph.edges()),
        "rejected": graph.rejected_answers,
        "version": graph.version,
    }


def replay(graph, events):
    """Replay an answer history; returns the acceptance bitmap."""
    return [graph.add_answer(u, v, answer) for u, v, _, answer in events]


def round_table(result):
    """The per-round question table: round → ordered (question, answer)."""
    table = {}
    for round_no, question, answer in result.question_log:
        table.setdefault(round_no, []).append((question.key(), answer))
    return table


def result_digest(result):
    """Every cross-backend observable of one scheduler run."""
    return {
        "skyline": result.skyline,
        "questions": result.stats.questions,
        "rounds": result.stats.rounds,
        "worker_assignments": result.stats.worker_assignments,
        "round_sizes": result.stats.round_sizes,
        "cached_hits": result.stats.cached_hits,
        "rejected": result.rejected_answers,
        "question_log": result.question_log,
        "round_table": round_table(result),
    }


def assert_backends_agree(by_backend):
    """Compare each optimized backend's value against the reference."""
    reference = by_backend["reference"]
    for backend, value in by_backend.items():
        assert value == reference, f"{backend} diverges from reference"


def assert_closure_counts_mirror(graphs):
    """The numpy backend's closure-update accounting mirrors the bitset
    backend exactly (one update per representative row swept) — the
    invariant the deterministic pseudo-benchmarks rely on. The reference
    backend counts invalidations instead, so it is excluded."""
    assert graphs["numpy"].closure_updates == graphs["bitset"].closure_updates


class TestGraphDifferential:
    @settings(
        parent=DIFFERENTIAL_SETTINGS,
    )
    @given(answer_sequences(max_attributes=1))
    def test_keep_first_state_identical(self, sequence):
        """Random histories (contradictions included) yield identical
        acceptance decisions and identical derivable state."""
        n, _, events = sequence
        graphs = {
            backend: PreferenceGraph(n, backend=backend)
            for backend in BACKENDS
        }
        assert_backends_agree(
            {b: replay(g, events) for b, g in graphs.items()}
        )
        assert_backends_agree(
            {b: graph_state(g, n) for b, g in graphs.items()}
        )
        assert_closure_counts_mirror(graphs)

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(answer_sequences(max_attributes=1))
    def test_raise_policy_rejects_at_same_event(self, sequence):
        """Under RAISE all backends throw on exactly the same event,
        leaving identical pre-conflict state behind."""
        n, _, events = sequence
        graphs = {
            backend: PreferenceGraph(
                n, policy=ContradictionPolicy.RAISE, backend=backend
            )
            for backend in BACKENDS
        }
        failed_at = {}
        for name, graph in graphs.items():
            for index, (u, v, _, answer) in enumerate(events):
                try:
                    graph.add_answer(u, v, answer)
                except PreferenceConflictError:
                    failed_at[name] = index
                    break
        assert_backends_agree(
            {b: failed_at.get(b) for b in BACKENDS}
        )
        assert_backends_agree(
            {b: graph_state(g, n) for b, g in graphs.items()}
        )

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(consistent_answer_sequences())
    def test_consistent_histories_never_reject(self, sequence):
        """Histories drawn from a latent weak order are accepted whole
        by every backend, which then agrees with the latent order."""
        n, _, events, ranks = sequence
        for backend in BACKENDS:
            graph = PreferenceGraph(
                n, policy=ContradictionPolicy.RAISE, backend=backend
            )
            for u, v, _, answer in events:
                assert graph.add_answer(u, v, answer)
            assert graph.rejected_answers == 0
            for u in range(n):
                for v in range(n):
                    rel = graph.relation(u, v)
                    if u != v and rel is Preference.LEFT:
                        assert ranks[u] < ranks[v]
                    elif u != v and rel is Preference.RIGHT:
                        assert ranks[u] > ranks[v]
                    elif u != v and rel is Preference.EQUAL:
                        assert ranks[u] == ranks[v]

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(answer_sequences(max_attributes=2))
    def test_system_predicates_identical(self, sequence):
        """AC-level predicates (the pruning machinery's inputs) agree on
        every ordered pair, as does the batched resolve_pairs view."""
        n, num_attributes, events = sequence
        systems = {
            backend: PreferenceSystem(n, num_attributes, backend=backend)
            for backend in BACKENDS
        }
        for u, v, attribute, answer in events:
            assert_backends_agree({
                backend: system.add_answer(u, v, attribute, answer)
                for backend, system in systems.items()
            })
        pairs = [(u, v) for u in range(n) for v in range(n) if u != v]
        assert_backends_agree({
            b: s.resolve_pairs(pairs) for b, s in systems.items()
        })
        for predicate in (
            "ac_dominates",
            "ac_equal",
            "weakly_prefers_all",
            "cannot_dominate",
            "unknown_attributes",
        ):
            assert_backends_agree({
                b: [getattr(s, predicate)(u, v) for u, v in pairs]
                for b, s in systems.items()
            })
        assert_backends_agree({
            b: s.total_rejected() for b, s in systems.items()
        })
        members = list(range(0, n, 2)) + list(range(1, n, 2))
        assert_backends_agree({
            b: s.sky_ac(members) for b, s in systems.items()
        })
        assert_backends_agree({
            b: s.sky_ac(list(range(n))) for b, s in systems.items()
        })

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(verdict_rounds())
    def test_apply_verdicts_matches_scalar_ingestion(self, sequence):
        """Round-shaped closure transactions accept exactly the answers
        the scalar path accepts, in the same order, on every backend.

        KEEP_FIRST makes acceptance order-sensitive, so this is the pin
        that a transaction must never reorder or dedupe its batch."""
        n, num_attributes, rounds = sequence
        scalar = PreferenceSystem(n, num_attributes, backend="reference")
        scalar_accepted = [
            sum(
                scalar.add_answer(u, v, attribute, answer)
                for u, v, attribute, answer in batch
            )
            for batch in rounds
        ]
        states = {}
        systems = {}
        for backend in BACKENDS:
            system = PreferenceSystem(n, num_attributes, backend=backend)
            accepted = [system.apply_verdicts(batch) for batch in rounds]
            assert accepted == scalar_accepted
            systems[backend] = system
            states[backend] = [
                graph_state(graph, n) for graph in system.graphs
            ]
        states["reference-scalar"] = [
            graph_state(graph, n) for graph in scalar.graphs
        ]
        assert_backends_agree(states)
        assert (
            systems["numpy"].closure_updates()
            == systems["bitset"].closure_updates()
        )

    @settings(parent=DIFFERENTIAL_SETTINGS, max_examples=60)
    @given(sequence=answer_sequences(max_n=10, max_attributes=1), data=st.data())
    def test_numpy_bulk_kernels_match_scalar_queries(self, sequence, data):
        """The numpy bulk kernels answer exactly like the scalar API."""
        n, _, events = sequence
        graph = NumpyPreferenceGraph(n)
        replay(graph, events)
        pairs = data.draw(pair_query_batches(n))
        us = [u for u, _ in pairs]
        vs = [v for _, v in pairs]
        codes = list(graph.relations_batch(us, vs))
        expected = [
            {None: 0, Preference.LEFT: 1, Preference.RIGHT: 2,
             Preference.EQUAL: 3}[graph.relation(u, v)]
            for u, v in pairs
        ]
        assert codes == expected
        reachable = list(graph.reachable_pairs(us, vs))
        assert reachable == [
            graph.class_of(u) != graph.class_of(v)
            and graph.relation(u, v) is Preference.LEFT
            for u, v in pairs
        ]
        mask = graph.undominated_mask()
        assert list(mask) == [
            not any(
                graph.relation(u, v) is Preference.LEFT
                for u in range(n)
                if graph.class_of(u) != graph.class_of(v)
            )
            for v in range(n)
        ]
        assert list(graph.find_roots(list(range(n)))) == [
            graph.class_of(v) for v in range(n)
        ]


class TestEndToEndDifferential:
    """Full CrowdSky runs must be bit-identical across backends."""

    @settings(parent=ROBUSTNESS_SETTINGS)
    @given(
        seed=st.integers(0, 10_000),
        distribution=st.sampled_from(list(Distribution)),
        num_crowd=st.integers(1, 2),
    )
    def test_seeded_instances_identical(self, seed, distribution, num_crowd):
        relation = generate_synthetic(
            28, 2, num_crowd, distribution, seed=seed
        )
        for scheduler in SCHEDULERS.values():
            assert_backends_agree({
                backend: result_digest(
                    scheduler(
                        relation, None, CrowdSkyConfig(backend=backend)
                    )
                )
                for backend in BACKENDS
            })

    @settings(parent=ROBUSTNESS_SETTINGS, max_examples=15)
    @given(relation=small_relations())
    def test_arbitrary_relations_identical(self, relation):
        """Grid relations with ties/duplicates — the degenerate-case
        preprocessing and tie-merge paths — agree end to end."""
        assert_backends_agree({
            backend: result_digest(
                crowdsky(relation, config=CrowdSkyConfig(backend=backend))
            )
            for backend in BACKENDS
        })

    @pytest.mark.parametrize("scheduler", sorted(SCHEDULERS))
    def test_journal_bytes_identical(self, scheduler, tmp_path, monkeypatch):
        """The write-ahead journal is byte-for-byte independent of the
        backend, noisy crowd included.

        The backend is selected through ``REPRO_PREF_BACKEND`` (config
        ``backend=None``) so the run-header payload — which embeds the
        config — is identical too; only then is byte equality possible.
        """
        relation = generate_synthetic(24, 2, 2, seed=11)
        blobs = {}
        for backend in BACKENDS:
            monkeypatch.setenv("REPRO_PREF_BACKEND", backend)
            journal = tmp_path / backend
            crowd = SimulatedCrowd(
                relation,
                pool=WorkerPool.uniform(size=25, accuracy=0.9),
                seed=9,
                journal=journal,
            )
            SCHEDULERS[scheduler](relation, crowd, None)
            blobs[backend] = b"".join(
                path.read_bytes() for path in segment_paths(journal)
            )
        assert_backends_agree(blobs)


class TestBackendSelection:
    def test_default_is_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_PREF_BACKEND", raising=False)
        assert default_backend() == "numpy"
        assert isinstance(PreferenceGraph(4), NumpyPreferenceGraph)

    @pytest.mark.parametrize(
        "backend, cls",
        [
            ("numpy", NumpyPreferenceGraph),
            ("bitset", BitsetPreferenceGraph),
            ("reference", ReferencePreferenceGraph),
        ],
    )
    def test_env_var_selects_backend(self, backend, cls, monkeypatch):
        monkeypatch.setenv("REPRO_PREF_BACKEND", backend)
        assert default_backend() == backend
        assert isinstance(PreferenceGraph(4), cls)
        system = PreferenceSystem(4, 1)
        assert system.backend == backend
        assert isinstance(system.graphs[0], cls)

    def test_constructor_flag_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_PREF_BACKEND", "reference")
        assert isinstance(
            PreferenceGraph(4, backend="bitset"), BitsetPreferenceGraph
        )

    def test_unknown_backend_rejected(self, monkeypatch):
        with pytest.raises(CrowdSkyError):
            PreferenceGraph(4, backend="quantum")
        monkeypatch.setenv("REPRO_PREF_BACKEND", "quantum")
        with pytest.raises(CrowdSkyError):
            default_backend()

    def test_config_backend_threads_through(self, small_independent):
        results = {
            backend: crowdsky(
                small_independent, config=CrowdSkyConfig(backend=backend)
            )
            for backend in BACKENDS
        }
        assert_backends_agree(
            {b: r.skyline for b, r in results.items()}
        )
        assert_backends_agree(
            {b: r.stats.questions for b, r in results.items()}
        )
